//! # divtopk — diversified top-k search (facade crate)
//!
//! Re-exports [`divtopk_core`] (the algorithms and framework) and
//! [`divtopk_text`] (the text-search evaluation substrate).

pub use divtopk_core as core;
pub use divtopk_text as text;

pub use divtopk_core::prelude::*;

/// One-stop imports spanning both crates.
pub mod prelude {
    pub use divtopk_core::prelude::*;
    pub use divtopk_text::prelude::*;
}
