//! # divtopk — diversified top-k search (facade crate)
//!
//! Re-exports [`divtopk_core`] (the algorithms and framework),
//! [`divtopk_text`] (the text-search evaluation substrate), and
//! [`divtopk_engine`] (the sharded concurrent serving tier).

pub use divtopk_core as core;
pub use divtopk_engine as engine;
pub use divtopk_text as text;

pub use divtopk_core::prelude::*;

/// One-stop imports spanning all three crates.
pub mod prelude {
    pub use divtopk_core::prelude::*;
    pub use divtopk_engine::prelude::*;
    pub use divtopk_text::prelude::*;
}
