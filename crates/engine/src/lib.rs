//! # divtopk-engine — live-updatable concurrent serving for diversified top-k
//!
//! The paper's `div-search` framework (Algorithm 3) needs exactly one thing
//! from its retrieval tier: a [`divtopk_core::ResultSource`] with a valid
//! unseen-score bound. That contract **composes across disjoint document
//! partitions** — the max of per-partition bounds is a sound global bound
//! (see [`divtopk_core::merge`]) — and it **survives deletion** — removing
//! candidates only shrinks the unseen set, so an unchanged bound stays
//! valid. This crate leans on both halves to scale the single-machine
//! searcher into a serving engine over a *mutating* corpus without
//! touching the exactness proofs (Lemmas 1–3):
//!
//! * [`divtopk_text::segments::SegmentedIndex`] — an append-only sequence
//!   of immutable index segments with tombstoned deletes and size-tiered
//!   compaction, pinned to a from-scratch rebuild by a property suite
//!   (DESIGN.md §9); the base corpus is partitioned round-robin into
//!   `shards` segments exactly as PR 3's [`shard::ShardedCorpus`] did.
//! * [`divtopk_core::MergedSource`] — a binary-heap k-way merge of one
//!   [`divtopk_text::ScanSource`] / [`divtopk_text::TaSource`] per
//!   segment, with tombstones filtered at the merge; the framework
//!   consumes it unchanged.
//! * [`engine::Engine`] — owns an `Arc`-swapped copy-on-write snapshot:
//!   writers ([`engine::Engine::add_docs`] /
//!   [`engine::Engine::delete_docs`] / [`engine::Engine::compact`])
//!   publish a new generation while in-flight queries finish on their
//!   pinned epoch; the LRU result cache ([`cache::LruCache`]) keys on
//!   `(generation, normalized query, k, τ quantized, algorithm)`, so a
//!   mutation instantly orphans every stale entry.
//!
//! ```
//! use divtopk_engine::prelude::*;
//! use divtopk_text::prelude::*;
//!
//! let corpus = generate(&SynthConfig::tiny());
//! let engine = Engine::new(corpus, EngineConfig::new(4));
//! // Busiest term in the synthetic vocabulary.
//! let term = (0..engine.corpus().num_terms() as TermId)
//!     .max_by_key(|&t| engine.corpus().doc_freq(t))
//!     .unwrap();
//! let options = SearchOptions::new(3).with_tau(0.5);
//! let out = engine.search(&Query::Scan(term), &options).unwrap();
//! assert!(out.hits.len() <= 3);
//! // Same query again: served from the cache, bit-identical.
//! let again = engine.search(&Query::Scan(term), &options).unwrap();
//! assert_eq!(out, again);
//! assert_eq!(engine.stats().cache_hits, 1);
//! // Live update: delete the top hit — the next query (a new snapshot
//! // generation, so no stale cache entry can answer it) moves on.
//! let top = out.hits[0].doc;
//! engine.delete_docs(&[top]);
//! let fresh = engine.search(&Query::Scan(term), &options).unwrap();
//! assert!(fresh.hits.iter().all(|h| h.doc != top));
//! assert_eq!(engine.stats().generation, 1);
//! ```

// This crate is pure safe Rust; keep it that way. The workspace's only
// unsafe lives in divtopk-core's scoped pool and the bench allocator,
// each behind a SAFETY argument checked by divtopk-lint.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod engine;
pub mod histogram;
pub mod proto;
pub mod server;
pub mod shard;

/// One-stop imports.
pub mod prelude {
    pub use crate::cache::{CacheStats, LruCache};
    pub use crate::engine::{Engine, EngineConfig, EngineStats, Query};
    pub use crate::histogram::LatencyHistogram;
    pub use crate::proto::{ProtoError, Request, Response, StatsReport, WireHits};
    pub use crate::server::{Server, ServerConfig, ServerMetrics};
    pub use crate::shard::ShardedCorpus;
    pub use divtopk_text::persist::SnapshotError;
    pub use divtopk_text::segments::SegmentedIndex;
}

pub use prelude::*;
