//! # divtopk-engine — sharded concurrent serving for diversified top-k
//!
//! The paper's `div-search` framework (Algorithm 3) needs exactly one thing
//! from its retrieval tier: a [`divtopk_core::ResultSource`] with a valid
//! unseen bound. That contract **composes across shards** — the max of
//! per-shard bounds is a sound global bound (see [`divtopk_core::merge`]) —
//! so this crate scales the single-machine searcher into a serving engine
//! without touching the exactness proofs (Lemmas 1–3):
//!
//! * [`shard::ShardedCorpus`] — the corpus and inverted index partitioned
//!   into `S` independent shards with stable doc-id remapping; per-shard
//!   posting lists are exact subsequences of the global ones, with
//!   bit-identical scores (global IDF / length statistics).
//! * [`divtopk_core::MergedSource`] — a binary-heap k-way merge of one
//!   [`divtopk_text::ScanSource`] / [`divtopk_text::TaSource`] per shard;
//!   the framework consumes it unchanged, so sharded answers are exactly
//!   the single-shard answers (property-tested in `tests/engine.rs`).
//! * [`engine::Engine`] — owns the shards, validates
//!   [`divtopk_text::SearchOptions`] once at admission, executes query
//!   batches on a scoped `std::thread` pool, and keeps a capacity-bounded
//!   LRU result cache ([`cache::LruCache`]) keyed on
//!   `(normalized query, k, τ quantized, algorithm)` with hit / miss /
//!   eviction counters.
//!
//! ```
//! use divtopk_engine::prelude::*;
//! use divtopk_text::prelude::*;
//!
//! let corpus = generate(&SynthConfig::tiny());
//! let engine = Engine::new(corpus, EngineConfig::new(4));
//! // Busiest term in the synthetic vocabulary.
//! let term = (0..engine.corpus().num_terms() as TermId)
//!     .max_by_key(|&t| engine.corpus().doc_freq(t))
//!     .unwrap();
//! let out = engine
//!     .search(&Query::Scan(term), &SearchOptions::new(3).with_tau(0.5))
//!     .unwrap();
//! assert!(out.hits.len() <= 3);
//! // Same query again: served from the cache, bit-identical.
//! let again = engine
//!     .search(&Query::Scan(term), &SearchOptions::new(3).with_tau(0.5))
//!     .unwrap();
//! assert_eq!(out, again);
//! assert_eq!(engine.stats().cache_hits, 1);
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod engine;
pub mod shard;

/// One-stop imports.
pub mod prelude {
    pub use crate::cache::{CacheStats, LruCache};
    pub use crate::engine::{Engine, EngineConfig, EngineStats, Query};
    pub use crate::shard::ShardedCorpus;
}

pub use prelude::*;
