//! The serving tier's dependency-free wire protocol: length-prefixed
//! frames over any byte stream, with a fully typed, allocation-bounded
//! decoder (DESIGN.md §11).
//!
//! ## Frame layout
//!
//! ```text
//! ┌────────────────┬──────────────────────────┐
//! │ u32 LE length  │  payload (length bytes)  │
//! └────────────────┴──────────────────────────┘
//! ```
//!
//! The length covers the payload only, must be ≥ 1 (the tag byte) and
//! ≤ [`MAX_FRAME_LEN`] — checked **before** any allocation, so a hostile
//! length prefix can never size a buffer. Payloads are little-endian
//! throughout; floats travel as IEEE-754 bit patterns
//! ([`f64::to_bits`]), so a served score is bit-identical to the
//! engine's.
//!
//! ## Robustness contract
//!
//! Every malformed input — truncation at *any* byte offset, an oversized
//! or zero length prefix, an unknown tag, counts that disagree with the
//! payload size, trailing garbage — decodes to a typed [`ProtoError`],
//! never a panic and never an unbounded allocation (element counts are
//! validated against the remaining payload bytes before any `Vec` is
//! sized). `tests/serving.rs` sweeps every truncation offset at the
//! frame layer, mirroring PR 5's persistence sweep.

use crate::engine::Query;
use divtopk_text::mode::{DiversifyMode, KnnConfig, WindowConfig};
use divtopk_text::query::KeywordQuery;
use std::io::{Read, Write};

/// Hard ceiling on a frame's payload size (1 MiB). Generous for every
/// real message (a 10k-hit response is ~120 KiB) and small enough that a
/// hostile prefix cannot matter.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Most terms a keyword query may carry on the wire.
pub const MAX_QUERY_TERMS: usize = 256;

/// Longest snapshot path a reload request may carry.
pub const MAX_RELOAD_PATH: usize = 4096;

/// Typed protocol failure. `Truncated`/`Oversized`/`EmptyFrame` mean the
/// stream itself lost framing (the connection cannot be resynchronized);
/// the rest are per-frame and leave the stream usable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The stream ended mid-frame (header or payload).
    Truncated {
        /// Bytes the decoder still needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The advertised payload length.
        len: u32,
    },
    /// A zero-length frame (no room for even the tag byte).
    EmptyFrame,
    /// The first payload byte is not a known message tag.
    UnknownTag(u8),
    /// The diversify-mode selector byte is not a known mode (see
    /// [`MODE_EXACT_ASTAR`] and friends). Per-frame: a newer client
    /// feature, not stream corruption.
    UnknownSelector(u8),
    /// A mode parameter decoded to an out-of-range value (NaN λ, zero
    /// window, …). Rejected at decode so a hostile frame cannot smuggle
    /// a degenerate configuration past admission.
    BadValue(&'static str),
    /// A structurally invalid payload (reason attached).
    Malformed(&'static str),
    /// Well-formed message followed by garbage bytes.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The underlying transport failed.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, had {available}")
            }
            ProtoError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes (max {MAX_FRAME_LEN})")
            }
            ProtoError::EmptyFrame => write!(f, "zero-length frame"),
            ProtoError::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            ProtoError::UnknownSelector(selector) => {
                write!(f, "unknown diversify-mode selector {selector:#04x}")
            }
            ProtoError::BadValue(why) => write!(f, "bad mode parameter: {why}"),
            ProtoError::Malformed(why) => write!(f, "malformed payload: {why}"),
            ProtoError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message")
            }
            ProtoError::Io(kind) => write!(f, "transport error: {kind:?}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl ProtoError {
    /// True when the stream can no longer be re-framed and the
    /// connection should be closed after reporting the error.
    pub fn breaks_framing(&self) -> bool {
        matches!(
            self,
            ProtoError::Truncated { .. }
                | ProtoError::Oversized { .. }
                | ProtoError::EmptyFrame
                | ProtoError::Io(_)
        )
    }
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// One diversified top-k search.
    Search {
        /// Scan (single term) or keyword (multi-term) query.
        query: Query,
        /// Result count `k` (validated by engine admission).
        k: u32,
        /// Similarity threshold `τ` (bit-exact over the wire).
        tau: f64,
        /// Bound decay for the framework's necessary-condition check.
        bound_decay: f64,
        /// Diversification mode, carried in full (selector byte +
        /// mode-specific parameters; see [`MODE_EXACT_ASTAR`] and
        /// friends). `MmrConfig::k` does not cross the wire — the
        /// request's own `k` governs — so it decodes as the placeholder
        /// `0` (the [`DiversifyMode::mmr`] convention).
        mode: DiversifyMode,
    },
    /// Serving counters + latency quantiles.
    Stats,
    /// Graceful snapshot-swap reload from a path on the server.
    Reload {
        /// Snapshot path, UTF-8, ≤ [`MAX_RELOAD_PATH`] bytes.
        path: String,
    },
}

/// Diversify-mode wire selectors. The first three are byte-identical to
/// the old plain `ExactAlgorithm` selector (0 = div-astar, 1 = div-dp,
/// 2 = div-cut) and carry no parameter bytes, so frames from pre-mode
/// clients decode unchanged to the equivalent exact modes.
pub const MODE_EXACT_ASTAR: u8 = 0;
/// Exact mode, div-dp inner algorithm (legacy-compatible selector).
pub const MODE_EXACT_DP: u8 = 1;
/// Exact mode, div-cut inner algorithm (legacy-compatible selector).
/// `CutConfigured` also encodes to this selector — custom cut knobs are
/// a server-side concern and do not cross the wire.
pub const MODE_EXACT_CUT: u8 = 2;
/// Diversity off (plain relevance top-k). No parameter bytes.
pub const MODE_NONE: u8 = 3;
/// MMR rerank. Followed by one `f64`: λ.
pub const MODE_MMR: u8 = 4;
/// Sliding-window spread. Followed by `u32` window, `u32`
/// max-per-source, `f64` min-score-ratio.
pub const MODE_WINDOW: u8 = 5;
/// DisC dissimilarity + coverage. No parameter bytes.
pub const MODE_DISC: u8 = 6;
/// KNN-diversity. Followed by one `u32`: neighbor count.
pub const MODE_KNN: u8 = 7;

/// Appends a mode's selector byte plus its parameter bytes.
fn put_mode(out: &mut Vec<u8>, mode: &DiversifyMode) {
    use divtopk_core::ExactAlgorithm::*;
    match mode {
        DiversifyMode::Exact(AStar) => out.push(MODE_EXACT_ASTAR),
        DiversifyMode::Exact(Dp) => out.push(MODE_EXACT_DP),
        DiversifyMode::Exact(Cut) | DiversifyMode::Exact(CutConfigured(_)) => {
            out.push(MODE_EXACT_CUT)
        }
        DiversifyMode::None => out.push(MODE_NONE),
        DiversifyMode::Mmr(config) => {
            out.push(MODE_MMR);
            put_f64(out, config.lambda);
        }
        DiversifyMode::Window(config) => {
            out.push(MODE_WINDOW);
            put_u32(out, config.window as u32);
            put_u32(out, config.max_per_source as u32);
            put_f64(out, config.min_score_ratio);
        }
        DiversifyMode::Disc => out.push(MODE_DISC),
        DiversifyMode::Knn(config) => {
            out.push(MODE_KNN);
            put_u32(out, config.neighbors as u32);
        }
    }
}

/// Reads a mode selector plus parameters. Unknown selectors are
/// [`ProtoError::UnknownSelector`]; parameters outside their legal range
/// are [`ProtoError::BadValue`] — both per-frame errors that leave the
/// stream usable.
fn read_mode(cur: &mut Cursor<'_>) -> Result<DiversifyMode, ProtoError> {
    use divtopk_core::ExactAlgorithm::*;
    let mode = match cur.u8()? {
        MODE_EXACT_ASTAR => DiversifyMode::Exact(AStar),
        MODE_EXACT_DP => DiversifyMode::Exact(Dp),
        MODE_EXACT_CUT => DiversifyMode::Exact(Cut),
        MODE_NONE => DiversifyMode::None,
        MODE_MMR => {
            let lambda = cur.f64()?;
            if !lambda.is_finite() || !(0.0..=1.0).contains(&lambda) {
                return Err(ProtoError::BadValue("mmr λ must be in [0, 1]"));
            }
            DiversifyMode::mmr(lambda)
        }
        MODE_WINDOW => {
            let window = cur.u32()? as usize;
            let max_per_source = cur.u32()? as usize;
            let min_score_ratio = cur.f64()?;
            if window == 0 {
                return Err(ProtoError::BadValue("window size must be ≥ 1"));
            }
            if max_per_source == 0 {
                return Err(ProtoError::BadValue("window max-per-source must be ≥ 1"));
            }
            if !min_score_ratio.is_finite() || !(0.0..=1.0).contains(&min_score_ratio) {
                return Err(ProtoError::BadValue(
                    "window min-score-ratio must be in [0, 1]",
                ));
            }
            DiversifyMode::Window(WindowConfig {
                window,
                max_per_source,
                min_score_ratio,
            })
        }
        MODE_DISC => DiversifyMode::Disc,
        MODE_KNN => {
            let neighbors = cur.u32()? as usize;
            if neighbors == 0 {
                return Err(ProtoError::BadValue("knn neighbor count must be ≥ 1"));
            }
            DiversifyMode::Knn(KnnConfig { neighbors })
        }
        selector => return Err(ProtoError::UnknownSelector(selector)),
    };
    Ok(mode)
}

/// Server-side failure class carried in an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request itself was malformed (decode failure).
    Protocol,
    /// The engine rejected the search (typed admission/search error).
    Search,
}

/// A search answer on the wire — the served subset of
/// [`divtopk_text::search::SearchOutput`], scores bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct WireHits {
    /// Snapshot generation the query ran against.
    pub generation: u64,
    /// `(doc id, score)` pairs in serving order.
    pub hits: Vec<(u32, f64)>,
    /// Total diversified score.
    pub total_score: f64,
    /// Results the framework pulled before stopping.
    pub results_generated: u64,
    /// True when Lemma-3 early stopping fired.
    pub early_stopped: bool,
}

/// Serving counters + latency quantiles returned by a stats request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsReport {
    /// Current snapshot generation.
    pub generation: u64,
    /// Segments in the current snapshot.
    pub segments: u32,
    /// Shard count the operator *requested* in [`EngineConfig`].
    ///
    /// [`EngineConfig`]: crate::engine::EngineConfig
    pub configured_shards: u32,
    /// True when the serving layout came from a snapshot rather than
    /// from partitioning by `configured_shards` — the two fields
    /// together make the layout-precedence rule observable remotely.
    pub layout_from_snapshot: bool,
    /// Documents in the corpus view (live + tombstoned).
    pub num_docs: u64,
    /// Frozen vocabulary size — what a load generator needs to
    /// synthesize valid queries.
    pub num_terms: u32,
    /// Engine queries admitted.
    pub queries: u64,
    /// Engine queries rejected at admission.
    pub rejected: u64,
    /// Result-cache hits / misses.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Tombstoned documents.
    pub tombstones: u64,
    /// Queries whose shard pulls ran on the parallel-pull pool.
    pub parallel_pulls: u64,
    /// Frames the server accepted (all endpoints).
    pub requests: u64,
    /// Search requests rejected by backpressure.
    pub overloaded: u64,
    /// Frames that failed to decode.
    pub protocol_errors: u64,
    /// Search responses measured by the latency histogram.
    pub search_count: u64,
    /// Search latency p50, nanoseconds.
    pub search_p50_ns: u64,
    /// Search latency p95, nanoseconds.
    pub search_p95_ns: u64,
    /// Search latency p99, nanoseconds.
    pub search_p99_ns: u64,
    /// Search latency mean, nanoseconds.
    pub search_mean_ns: u64,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// A served search.
    Hits(WireHits),
    /// Typed failure (the connection stays usable unless the *transport*
    /// lost framing).
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Backpressure rejection: the admission queue was full. Retry later.
    Overloaded {
        /// The queue capacity that was exhausted.
        queue_capacity: u32,
    },
    /// Stats answer.
    Stats(StatsReport),
    /// Reload answer: the new serving generation.
    Reloaded {
        /// Generation after the snapshot swap.
        generation: u64,
    },
}

const TAG_PING: u8 = 0x01;
const TAG_SEARCH: u8 = 0x02;
const TAG_STATS: u8 = 0x03;
const TAG_RELOAD: u8 = 0x04;
const TAG_PONG: u8 = 0x81;
const TAG_HITS: u8 = 0x82;
const TAG_ERROR: u8 = 0x83;
const TAG_OVERLOADED: u8 = 0x84;
const TAG_STATS_REPORT: u8 = 0x85;
const TAG_RELOADED: u8 = 0x86;

const QUERY_SCAN: u8 = 0;
const QUERY_KEYWORDS: u8 = 1;

// ---------------------------------------------------------------- frames

/// Reads one frame. `Ok(None)` is a clean close (EOF before the first
/// header byte); EOF anywhere later is [`ProtoError::Truncated`]. The
/// length prefix is validated against [`MAX_FRAME_LEN`] **before** the
/// payload buffer is sized.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < header.len() {
        match reader.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(ProtoError::Truncated {
                    needed: header.len() - got,
                    available: got,
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtoError::Io(e.kind())),
        }
    }
    let len = u32::from_le_bytes(header);
    if len == 0 {
        return Err(ProtoError::EmptyFrame);
    }
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    let mut got = 0usize;
    while got < payload.len() {
        match reader.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(ProtoError::Truncated {
                    needed: payload.len() - got,
                    available: got,
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtoError::Io(e.kind())),
        }
    }
    Ok(Some(payload))
}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    debug_assert!(!payload.is_empty() && payload.len() <= MAX_FRAME_LEN as usize);
    let map = |e: std::io::Error| ProtoError::Io(e.kind());
    writer
        .write_all(&(payload.len() as u32).to_le_bytes())
        .map_err(map)?;
    writer.write_all(payload).map_err(map)?;
    writer.flush().map_err(map)
}

// --------------------------------------------------------------- cursors

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(bytes)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        // LINT-ALLOW(panic): take(2) returned exactly 2 bytes, so the
        // slice-to-array conversion is infallible (same for u32/u64).
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        // LINT-ALLOW(panic): infallible — see `u16`.
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        // LINT-ALLOW(panic): infallible — see `u16`.
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.remaining() > 0 {
            return Err(ProtoError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

// -------------------------------------------------------------- requests

/// Encodes a request payload (frame header **not** included — pair with
/// [`write_frame`]).
pub fn encode_request(request: &Request) -> Result<Vec<u8>, ProtoError> {
    let mut out = Vec::new();
    match request {
        Request::Ping => out.push(TAG_PING),
        Request::Search {
            query,
            k,
            tau,
            bound_decay,
            mode,
        } => {
            out.push(TAG_SEARCH);
            match query {
                Query::Scan(term) => {
                    out.push(QUERY_SCAN);
                    put_u32(&mut out, *term);
                }
                Query::Keywords(q) => {
                    if q.terms.len() > MAX_QUERY_TERMS {
                        return Err(ProtoError::Malformed("too many query terms"));
                    }
                    out.push(QUERY_KEYWORDS);
                    put_u16(&mut out, q.terms.len() as u16);
                    for &term in &q.terms {
                        put_u32(&mut out, term);
                    }
                }
            }
            put_u32(&mut out, *k);
            put_f64(&mut out, *tau);
            put_f64(&mut out, *bound_decay);
            put_mode(&mut out, mode);
        }
        Request::Stats => out.push(TAG_STATS),
        Request::Reload { path } => {
            if path.len() > MAX_RELOAD_PATH {
                return Err(ProtoError::Malformed("reload path too long"));
            }
            out.push(TAG_RELOAD);
            put_u16(&mut out, path.len() as u16);
            out.extend_from_slice(path.as_bytes());
        }
    }
    Ok(out)
}

/// Decodes a request payload. Every failure is a typed [`ProtoError`];
/// element counts are checked against the remaining bytes before any
/// allocation.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut cur = Cursor::new(payload);
    let request = match cur.u8()? {
        TAG_PING => Request::Ping,
        TAG_SEARCH => {
            let query = match cur.u8()? {
                QUERY_SCAN => Query::Scan(cur.u32()?),
                QUERY_KEYWORDS => {
                    let count = cur.u16()? as usize;
                    if count > MAX_QUERY_TERMS {
                        return Err(ProtoError::Malformed("too many query terms"));
                    }
                    if cur.remaining() < count * 4 {
                        return Err(ProtoError::Truncated {
                            needed: count * 4,
                            available: cur.remaining(),
                        });
                    }
                    let terms = (0..count).map(|_| cur.u32()).collect::<Result<_, _>>()?;
                    Query::Keywords(KeywordQuery { terms })
                }
                _ => return Err(ProtoError::Malformed("unknown query kind")),
            };
            Request::Search {
                query,
                k: cur.u32()?,
                tau: cur.f64()?,
                bound_decay: cur.f64()?,
                mode: read_mode(&mut cur)?,
            }
        }
        TAG_STATS => Request::Stats,
        TAG_RELOAD => {
            let len = cur.u16()? as usize;
            if len > MAX_RELOAD_PATH {
                return Err(ProtoError::Malformed("reload path too long"));
            }
            let bytes = cur.take(len)?;
            let path = std::str::from_utf8(bytes)
                .map_err(|_| ProtoError::Malformed("reload path is not UTF-8"))?
                .to_owned();
            Request::Reload { path }
        }
        tag => return Err(ProtoError::UnknownTag(tag)),
    };
    cur.finish()?;
    Ok(request)
}

// ------------------------------------------------------------- responses

/// Encodes a response payload (frame header **not** included).
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match response {
        Response::Pong => out.push(TAG_PONG),
        Response::Hits(hits) => {
            out.push(TAG_HITS);
            put_u64(&mut out, hits.generation);
            put_u32(&mut out, hits.hits.len() as u32);
            for &(doc, score) in &hits.hits {
                put_u32(&mut out, doc);
                put_f64(&mut out, score);
            }
            put_f64(&mut out, hits.total_score);
            put_u64(&mut out, hits.results_generated);
            out.push(hits.early_stopped as u8);
        }
        Response::Error { code, message } => {
            out.push(TAG_ERROR);
            out.push(match code {
                ErrorCode::Protocol => 1,
                ErrorCode::Search => 2,
            });
            let bytes = message.as_bytes();
            let len = bytes.len().min(u16::MAX as usize);
            put_u16(&mut out, len as u16);
            out.extend_from_slice(&bytes[..len]);
        }
        Response::Overloaded { queue_capacity } => {
            out.push(TAG_OVERLOADED);
            put_u32(&mut out, *queue_capacity);
        }
        Response::Stats(s) => {
            out.push(TAG_STATS_REPORT);
            put_u64(&mut out, s.generation);
            put_u32(&mut out, s.segments);
            put_u32(&mut out, s.configured_shards);
            out.push(u8::from(s.layout_from_snapshot));
            put_u64(&mut out, s.num_docs);
            put_u32(&mut out, s.num_terms);
            put_u64(&mut out, s.queries);
            put_u64(&mut out, s.rejected);
            put_u64(&mut out, s.cache_hits);
            put_u64(&mut out, s.cache_misses);
            put_u64(&mut out, s.tombstones);
            put_u64(&mut out, s.parallel_pulls);
            put_u64(&mut out, s.requests);
            put_u64(&mut out, s.overloaded);
            put_u64(&mut out, s.protocol_errors);
            put_u64(&mut out, s.search_count);
            put_u64(&mut out, s.search_p50_ns);
            put_u64(&mut out, s.search_p95_ns);
            put_u64(&mut out, s.search_p99_ns);
            put_u64(&mut out, s.search_mean_ns);
        }
        Response::Reloaded { generation } => {
            out.push(TAG_RELOADED);
            put_u64(&mut out, *generation);
        }
    }
    out
}

/// Decodes a response payload with the same typed-and-bounded guarantees
/// as [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut cur = Cursor::new(payload);
    let response = match cur.u8()? {
        TAG_PONG => Response::Pong,
        TAG_HITS => {
            let generation = cur.u64()?;
            let count = cur.u32()? as usize;
            if cur.remaining() < count * 12 {
                return Err(ProtoError::Truncated {
                    needed: count * 12,
                    available: cur.remaining(),
                });
            }
            let hits = (0..count)
                .map(|_| Ok((cur.u32()?, cur.f64()?)))
                .collect::<Result<_, ProtoError>>()?;
            Response::Hits(WireHits {
                generation,
                hits,
                total_score: cur.f64()?,
                results_generated: cur.u64()?,
                early_stopped: match cur.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(ProtoError::Malformed("early_stopped is not a bool")),
                },
            })
        }
        TAG_ERROR => {
            let code = match cur.u8()? {
                1 => ErrorCode::Protocol,
                2 => ErrorCode::Search,
                _ => return Err(ProtoError::Malformed("unknown error code")),
            };
            let len = cur.u16()? as usize;
            let message = String::from_utf8_lossy(cur.take(len)?).into_owned();
            Response::Error { code, message }
        }
        TAG_OVERLOADED => Response::Overloaded {
            queue_capacity: cur.u32()?,
        },
        TAG_STATS_REPORT => Response::Stats(StatsReport {
            generation: cur.u64()?,
            segments: cur.u32()?,
            configured_shards: cur.u32()?,
            layout_from_snapshot: match cur.u8()? {
                0 => false,
                1 => true,
                _ => return Err(ProtoError::Malformed("layout_from_snapshot is not a bool")),
            },
            num_docs: cur.u64()?,
            num_terms: cur.u32()?,
            queries: cur.u64()?,
            rejected: cur.u64()?,
            cache_hits: cur.u64()?,
            cache_misses: cur.u64()?,
            tombstones: cur.u64()?,
            parallel_pulls: cur.u64()?,
            requests: cur.u64()?,
            overloaded: cur.u64()?,
            protocol_errors: cur.u64()?,
            search_count: cur.u64()?,
            search_p50_ns: cur.u64()?,
            search_p95_ns: cur.u64()?,
            search_p99_ns: cur.u64()?,
            search_mean_ns: cur.u64()?,
        }),
        TAG_RELOADED => Response::Reloaded {
            generation: cur.u64()?,
        },
        tag => return Err(ProtoError::UnknownTag(tag)),
    };
    cur.finish()?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(request: Request) {
        let payload = encode_request(&request).unwrap();
        assert_eq!(decode_request(&payload).unwrap(), request);
    }

    fn roundtrip_response(response: Response) {
        let payload = encode_response(&response);
        assert_eq!(decode_response(&payload).unwrap(), response);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Reload {
            path: "/tmp/snap.divtopk".to_owned(),
        });
        roundtrip_request(Request::Search {
            query: Query::Scan(42),
            k: 5,
            tau: 0.4,
            bound_decay: 0.005,
            mode: DiversifyMode::exact(),
        });
        roundtrip_request(Request::Search {
            query: Query::Keywords(KeywordQuery {
                terms: vec![1, 7, 1999],
            }),
            k: 10,
            tau: 0.61803398875,
            bound_decay: 0.0,
            mode: DiversifyMode::Exact(divtopk_core::ExactAlgorithm::AStar),
        });
        // Every mode round-trips with its parameters bit-exact.
        for mode in [
            DiversifyMode::Exact(divtopk_core::ExactAlgorithm::Dp),
            DiversifyMode::None,
            DiversifyMode::mmr(0.31837250619),
            DiversifyMode::Window(WindowConfig {
                window: 7,
                max_per_source: 3,
                min_score_ratio: 0.25,
            }),
            DiversifyMode::Disc,
            DiversifyMode::Knn(KnnConfig { neighbors: 5 }),
        ] {
            roundtrip_request(Request::Search {
                query: Query::Scan(9),
                k: 4,
                tau: 0.6,
                bound_decay: 0.0,
                mode,
            });
        }
    }

    /// Byte-level frame of a search request as pre-mode clients sent it:
    /// scan query, then k/τ/decay, then the single selector byte.
    fn legacy_search_payload(selector: u8) -> Vec<u8> {
        let mut out = vec![TAG_SEARCH, QUERY_SCAN];
        put_u32(&mut out, 42);
        put_u32(&mut out, 5);
        put_f64(&mut out, 0.4);
        put_f64(&mut out, 0.005);
        out.push(selector);
        out
    }

    #[test]
    fn legacy_plain_selectors_decode_to_equivalent_modes() {
        use divtopk_core::ExactAlgorithm::*;
        for (selector, algorithm) in [(0u8, AStar), (1, Dp), (2, Cut)] {
            let request = decode_request(&legacy_search_payload(selector)).unwrap();
            let Request::Search { mode, .. } = request else {
                panic!("expected a search request");
            };
            assert_eq!(mode, DiversifyMode::Exact(algorithm));
        }
    }

    #[test]
    fn unknown_mode_selector_is_typed_and_nonfatal() {
        for selector in [8u8, 42, 255] {
            let err = decode_request(&legacy_search_payload(selector)).unwrap_err();
            assert_eq!(err, ProtoError::UnknownSelector(selector));
            assert!(!err.breaks_framing());
        }
    }

    #[test]
    fn out_of_range_mode_parameters_are_bad_values() {
        let base = |mode: &DiversifyMode| {
            encode_request(&Request::Search {
                query: Query::Scan(1),
                k: 3,
                tau: 0.5,
                bound_decay: 0.0,
                mode: mode.clone(),
            })
            .unwrap()
        };
        // λ out of range / NaN: patch the trailing f64 in place.
        for bad in [f64::NAN, -0.25, 1.5, f64::INFINITY] {
            let mut payload = base(&DiversifyMode::mmr(0.5));
            let at = payload.len() - 8;
            payload[at..].copy_from_slice(&bad.to_bits().to_le_bytes());
            let err = decode_request(&payload).unwrap_err();
            assert!(matches!(err, ProtoError::BadValue(_)), "λ={bad}: {err:?}");
            assert!(!err.breaks_framing());
        }
        // Zero window / max-per-source, bad ratio.
        let window_mode = DiversifyMode::Window(WindowConfig {
            window: 7,
            max_per_source: 3,
            min_score_ratio: 0.25,
        });
        let good = base(&window_mode);
        let params_at = good.len() - 16;
        let mut zero_window = good.clone();
        zero_window[params_at..params_at + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_request(&zero_window).unwrap_err(),
            ProtoError::BadValue(_)
        ));
        let mut zero_cap = good.clone();
        zero_cap[params_at + 4..params_at + 8].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_request(&zero_cap).unwrap_err(),
            ProtoError::BadValue(_)
        ));
        let mut bad_ratio = good.clone();
        bad_ratio[params_at + 8..].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            decode_request(&bad_ratio).unwrap_err(),
            ProtoError::BadValue(_)
        ));
        // Zero knn neighbors.
        let mut knn = base(&DiversifyMode::Knn(KnnConfig { neighbors: 2 }));
        let at = knn.len() - 4;
        knn[at..].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_request(&knn).unwrap_err(),
            ProtoError::BadValue(_)
        ));
    }

    #[test]
    fn responses_roundtrip_bit_exactly() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Overloaded { queue_capacity: 64 });
        roundtrip_response(Response::Reloaded { generation: 17 });
        roundtrip_response(Response::Error {
            code: ErrorCode::Search,
            message: "unknown term 9".to_owned(),
        });
        roundtrip_response(Response::Hits(WireHits {
            generation: 3,
            hits: vec![(7, f64::from_bits(1.25f64.to_bits() + 1)), (2, 0.1 + 0.2)],
            total_score: f64::from_bits(0.3f64.to_bits() - 1),
            results_generated: 121,
            early_stopped: true,
        }));
        roundtrip_response(Response::Stats(StatsReport {
            generation: 1,
            segments: 4,
            configured_shards: 2,
            layout_from_snapshot: true,
            num_docs: 4000,
            num_terms: 900,
            queries: 10,
            rejected: 1,
            cache_hits: 3,
            cache_misses: 7,
            tombstones: 2,
            parallel_pulls: 6,
            requests: 15,
            overloaded: 0,
            protocol_errors: 2,
            search_count: 10,
            search_p50_ns: 1_500_000,
            search_p95_ns: 4_000_000,
            search_p99_ns: 9_000_000,
            search_mean_ns: 2_000_000,
        }));
    }

    #[test]
    fn every_payload_truncation_offset_is_a_typed_error() {
        let payloads = [
            encode_request(&Request::Search {
                query: Query::Keywords(KeywordQuery {
                    terms: vec![3, 1, 4, 1, 5],
                }),
                k: 8,
                tau: 0.5,
                bound_decay: 0.005,
                mode: DiversifyMode::Exact(divtopk_core::ExactAlgorithm::Dp),
            })
            .unwrap(),
            // The longest parameterized mode: truncation inside window /
            // max-per-source / ratio bytes must all be typed errors.
            encode_request(&Request::Search {
                query: Query::Scan(3),
                k: 8,
                tau: 0.5,
                bound_decay: 0.005,
                mode: DiversifyMode::Window(WindowConfig::default()),
            })
            .unwrap(),
            encode_request(&Request::Search {
                query: Query::Scan(3),
                k: 8,
                tau: 0.5,
                bound_decay: 0.005,
                mode: DiversifyMode::mmr(0.7),
            })
            .unwrap(),
            encode_response(&Response::Hits(WireHits {
                generation: 9,
                hits: vec![(1, 2.0), (3, 4.0)],
                total_score: 6.0,
                results_generated: 11,
                early_stopped: false,
            })),
        ];
        for (which, payload) in payloads.iter().enumerate() {
            for cut in 0..payload.len() {
                let sliced = &payload[..cut];
                let result = if which < 3 {
                    decode_request(sliced).map(|_| ())
                } else {
                    decode_response(sliced).map(|_| ())
                };
                assert!(
                    result.is_err(),
                    "payload {which} truncated at {cut} decoded"
                );
            }
        }
    }

    #[test]
    fn hostile_counts_cannot_size_allocations() {
        // A keywords request claiming 65535 terms in a 10-byte payload.
        let mut payload = vec![TAG_SEARCH, QUERY_KEYWORDS];
        put_u16(&mut payload, u16::MAX);
        payload.extend_from_slice(&[0u8; 6]);
        assert!(decode_request(&payload).is_err());
        // A hits response claiming u32::MAX entries.
        let mut payload = vec![TAG_HITS];
        put_u64(&mut payload, 1);
        put_u32(&mut payload, u32::MAX);
        assert!(matches!(
            decode_response(&payload),
            Err(ProtoError::Truncated { .. })
        ));
    }

    #[test]
    fn frame_layer_rejects_bad_lengths_before_allocating() {
        let mut cursor = std::io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert_eq!(
            read_frame(&mut cursor),
            Err(ProtoError::Oversized { len: u32::MAX })
        );
        let mut cursor = std::io::Cursor::new(0u32.to_le_bytes().to_vec());
        assert_eq!(read_frame(&mut cursor), Err(ProtoError::EmptyFrame));
        // Clean EOF before any header byte is a clean close.
        let mut cursor = std::io::Cursor::new(Vec::new());
        assert_eq!(read_frame(&mut cursor), Ok(None));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut payload = encode_request(&Request::Ping).unwrap();
        payload.push(0xEE);
        assert_eq!(
            decode_request(&payload),
            Err(ProtoError::TrailingBytes { extra: 1 })
        );
    }
}
