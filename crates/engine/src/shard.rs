//! Corpus sharding with stable doc-id remapping.
//!
//! A [`ShardedCorpus`] partitions a corpus's documents round-robin into `S`
//! shards (`doc → shard doc mod S`) and builds one inverted index per shard
//! via [`InvertedIndex::build_where`]. Three properties make the partition
//! safe for *exact* serving:
//!
//! 1. **Global statistics.** Shard postings keep global doc ids, global IDF
//!    weights, and global length normalization — a document scores
//!    bit-identically whether served from a shard or from the full index.
//! 2. **Subsequence posting lists.** Every shard list uses the same
//!    `(partial desc, doc asc)` comparator over a subset of the full
//!    list's totally ordered postings, so it is an exact subsequence; a
//!    k-way merge with the same tie-break reproduces the unsharded scan
//!    order exactly.
//! 3. **Stable remapping.** `shard_of`/`local_id`/`global_id` are pure
//!    closed-form functions of the doc id — no lookup tables to drift.
//!
//! The shard count is a serving-layout choice, not a semantic one: the
//! engine's property tests assert identical output for `S ∈ {1, …, 8}`.

use divtopk_text::corpus::Corpus;
use divtopk_text::document::{DocId, TermId};
use divtopk_text::index::InvertedIndex;
use divtopk_text::query::KeywordQuery;
use divtopk_text::scan::ScanSource;
use divtopk_text::search::doc_weights;
use divtopk_text::ta::TaSource;

/// A corpus partitioned into `S` independent shards (see module docs).
#[derive(Debug)]
pub struct ShardedCorpus {
    corpus: Corpus,
    /// Per-document total IDF weight, shared by every query's similarity
    /// prefilter (computed once — the engine is long-lived).
    weights: Vec<f64>,
    /// One inverted index per shard, restricted to that shard's documents.
    shards: Vec<InvertedIndex>,
}

impl ShardedCorpus {
    /// Partitions `corpus` into `num_shards` round-robin shards and builds
    /// the per-shard indexes.
    ///
    /// # Panics
    /// Panics if `num_shards == 0` (a serving tier needs at least one
    /// partition; this is a deployment configuration error, not a query
    /// admission error).
    pub fn build(corpus: Corpus, num_shards: usize) -> ShardedCorpus {
        assert!(num_shards >= 1, "shard count must be at least 1");
        let shards = (0..num_shards)
            .map(|s| {
                InvertedIndex::build_where(&corpus, |d| {
                    ShardedCorpus::shard_of_with(num_shards, d) == s
                })
            })
            .collect();
        let weights = doc_weights(&corpus);
        ShardedCorpus {
            corpus,
            weights,
            shards,
        }
    }

    /// The shard owning `doc` for a given shard count (`doc mod S`).
    #[inline]
    pub fn shard_of_with(num_shards: usize, doc: DocId) -> usize {
        doc as usize % num_shards
    }

    /// The shard owning `doc`.
    #[inline]
    pub fn shard_of(&self, doc: DocId) -> usize {
        ShardedCorpus::shard_of_with(self.num_shards(), doc)
    }

    /// `doc`'s dense id *within its shard* (`doc div S`): the `i`-th
    /// smallest global id owned by that shard.
    #[inline]
    pub fn local_id(&self, doc: DocId) -> DocId {
        doc / self.num_shards() as DocId
    }

    /// Inverse of ([`shard_of`](ShardedCorpus::shard_of),
    /// [`local_id`](ShardedCorpus::local_id)): the global doc id.
    #[inline]
    pub fn global_id(&self, shard: usize, local: DocId) -> DocId {
        local * self.num_shards() as DocId + shard as DocId
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The (global) corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Per-document total IDF weights (see [`doc_weights`]).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The inverted index of one shard.
    pub fn shard_index(&self, shard: usize) -> &InvertedIndex {
        &self.shards[shard]
    }

    /// One incremental posting-list scan per shard for a single keyword.
    pub fn scan_sources(&self, term: TermId) -> Vec<ScanSource<'_>> {
        self.shards
            .iter()
            .map(|index| ScanSource::new(index, term))
            .collect()
    }

    /// One bounding threshold-algorithm source per shard for a
    /// multi-keyword query.
    pub fn ta_sources(&self, query: &KeywordQuery) -> Vec<TaSource<'_>> {
        self.shards
            .iter()
            .map(|index| TaSource::new(&self.corpus, index, &query.terms))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divtopk_text::synth::{SynthConfig, generate};

    fn tiny() -> Corpus {
        generate(&SynthConfig {
            num_docs: 150,
            ..SynthConfig::tiny()
        })
    }

    #[test]
    fn remapping_round_trips_and_balances() {
        let sharded = ShardedCorpus::build(tiny(), 4);
        let mut per_shard = [0usize; 4];
        for d in 0..sharded.corpus().num_docs() as DocId {
            let s = sharded.shard_of(d);
            let l = sharded.local_id(d);
            assert_eq!(sharded.global_id(s, l), d);
            per_shard[s] += 1;
        }
        // Round-robin: shard loads differ by at most one document.
        let (min, max) = (
            per_shard.iter().min().unwrap(),
            per_shard.iter().max().unwrap(),
        );
        assert!(max - min <= 1, "unbalanced shards: {per_shard:?}");
    }

    #[test]
    fn shard_postings_partition_the_full_index() {
        let corpus = tiny();
        let full = InvertedIndex::build(&corpus);
        let sharded = ShardedCorpus::build(corpus, 3);
        for t in 0..sharded.corpus().num_terms() as TermId {
            let total: usize = (0..3)
                .map(|s| sharded.shard_index(s).postings(t).len())
                .sum();
            assert_eq!(total, full.postings(t).len(), "term {t}");
            for s in 0..3 {
                for p in sharded.shard_index(s).postings(t) {
                    assert_eq!(sharded.shard_of(p.doc), s, "doc in wrong shard");
                }
            }
        }
    }

    #[test]
    fn single_shard_index_equals_full_index() {
        let corpus = tiny();
        let full = InvertedIndex::build(&corpus);
        let sharded = ShardedCorpus::build(corpus, 1);
        for t in 0..sharded.corpus().num_terms() as TermId {
            let a = sharded.shard_index(0).postings(t);
            let b = full.postings(t);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.doc, y.doc);
                assert_eq!(x.partial.to_bits(), y.partial.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_shards_is_a_configuration_error() {
        let _ = ShardedCorpus::build(tiny(), 0);
    }

    #[test]
    fn more_shards_than_docs_is_fine() {
        let mut b = Corpus::builder();
        b.add_text("d0", "alpha beta");
        b.add_text("d1", "alpha gamma");
        let sharded = ShardedCorpus::build(b.build(), 8);
        assert_eq!(sharded.num_shards(), 8);
        // Shards 2..8 are empty but valid.
        let alpha = sharded.corpus().term_id("alpha").unwrap();
        let total: usize = (0..8)
            .map(|s| sharded.shard_index(s).postings(alpha).len())
            .sum();
        assert_eq!(total, 2);
    }
}
