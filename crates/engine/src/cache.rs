//! A capacity-bounded LRU cache with hit/miss/eviction counters.
//!
//! Dependency-free (the container is offline): a slab of entries threaded
//! into an intrusive doubly-linked recency list, plus a `HashMap` from key
//! to slab slot. All operations are O(1) expected. The counters feed the
//! engine's [`crate::engine::EngineStats`] — production serving needs its
//! hit rate observable, not guessed.
//!
//! A capacity of `0` disables caching entirely (every lookup is a miss,
//! inserts are dropped); the throughput suite uses that to measure the
//! uncached path.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

/// Counters describing cache effectiveness ([`FrameworkMetrics`]-style:
/// plain `Copy` data, absorbed into engine-level stats).
///
/// [`FrameworkMetrics`]: divtopk_core::FrameworkMetrics
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced to make room at capacity.
    pub evictions: u64,
    /// Entries ever inserted.
    pub insertions: u64,
}

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// The LRU cache (see module docs).
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used (next eviction victim).
    tail: usize,
    stats: CacheStats,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (0 disables).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            capacity,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Unlinks slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    /// Links slot `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks `key` up, refreshing its recency on a hit. Counts the lookup.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.stats.hits += 1;
                self.unlink(i);
                self.link_front(i);
                Some(&self.slab[i].value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) `key → value`, evicting the least recently
    /// used entry when at capacity. No-op when the capacity is 0.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            self.unlink(i);
            self.link_front(i);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "capacity > 0 but no tail");
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
            self.stats.evictions += 1;
        }
        let entry = Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(i) => {
                self.slab[i] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.link_front(slot);
        self.stats.insertions += 1;
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction_order() {
        let mut cache: LruCache<u32, &str> = LruCache::new(2);
        assert!(cache.get(&1).is_none());
        cache.insert(1, "one");
        cache.insert(2, "two");
        assert_eq!(cache.get(&1), Some(&"one")); // 1 is now MRU
        cache.insert(3, "three"); // evicts 2 (LRU), not 1
        assert!(cache.get(&2).is_none());
        assert_eq!(cache.get(&1), Some(&"one"));
        assert_eq!(cache.get(&3), Some(&"three"));
        let s = cache.stats();
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.insertions, 3);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn replacement_refreshes_value_and_recency() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11); // replace, 1 becomes MRU
        cache.insert(3, 30); // evicts 2
        assert_eq!(cache.get(&1), Some(&11));
        assert!(cache.get(&2).is_none());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache: LruCache<u32, u32> = LruCache::new(0);
        cache.insert(1, 10);
        assert!(cache.get(&1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().insertions, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn capacity_one_churns_correctly() {
        let mut cache: LruCache<u32, u32> = LruCache::new(1);
        for i in 0..10 {
            cache.insert(i, i * 2);
            assert_eq!(cache.get(&i), Some(&(i * 2)));
            assert_eq!(cache.len(), 1);
        }
        assert_eq!(cache.stats().evictions, 9);
    }

    /// Randomized equivalence against a naive reference implementation.
    #[test]
    fn matches_naive_reference_model() {
        use divtopk_core::rng::Pcg;
        let mut rng = Pcg::new(99);
        for capacity in [1usize, 2, 3, 7] {
            let mut cache: LruCache<u32, u32> = LruCache::new(capacity);
            // Reference: vec of (key, value), front = MRU.
            let mut model: Vec<(u32, u32)> = Vec::new();
            for step in 0..2000u32 {
                let key = rng.below(10);
                if rng.chance(0.5) {
                    let got = cache.get(&key).copied();
                    let want = model.iter().position(|&(k, _)| k == key).map(|i| {
                        let entry = model.remove(i);
                        model.insert(0, entry);
                        entry.1
                    });
                    assert_eq!(got, want, "cap {capacity} step {step} get({key})");
                } else {
                    let value = step;
                    cache.insert(key, value);
                    if let Some(i) = model.iter().position(|&(k, _)| k == key) {
                        model.remove(i);
                    } else if model.len() >= capacity {
                        model.pop();
                    }
                    model.insert(0, (key, value));
                }
                assert_eq!(cache.len(), model.len());
            }
        }
    }
}
