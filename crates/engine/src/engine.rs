//! The serving engine: admission → cache → sharded merged search.
//!
//! [`Engine`] owns a [`ShardedCorpus`] and serves diversified top-k
//! queries through the exact same [`divtopk_text::search::search_with_source`]
//! path as the single-machine [`divtopk_text::DiversifiedSearcher`], with a
//! [`MergedSource`] recombining one per-shard source per query:
//!
//! * single-keyword queries merge per-shard posting-list scans in
//!   **incremental** mode — the merged emission order and bound sequence
//!   are *identical* to the unsharded scan's, so the whole framework run
//!   (hits, metrics, early-stop point) is bit-for-bit reproduced;
//! * multi-keyword queries merge per-shard threshold algorithms in
//!   **bounding** mode — `max` of per-shard thresholds, which is never
//!   looser than needed (and often tighter than the global threshold,
//!   since one shard's lists decay independently of another's).
//!
//! Admission validates [`SearchOptions`] once (`k ≥ 1`, `τ ∈ [0, 1]`,
//! satellite bugfixes of this PR) before any shard is touched. Results are
//! cached in an [`LruCache`] keyed on the *normalized* query (sorted,
//! deduplicated terms), `k`, `τ` quantized to 1e-9, and the algorithm
//! configuration fingerprint — so `"b a"` and `"a b"` at an equal τ share
//! an entry, and the DisC-style "many (k, τ) operating points" workload
//! pays for each point once.
//!
//! Batches run on a scoped `std::thread` pool (no external dependencies):
//! workers claim queries off an atomic cursor, so a slow query never
//! convoys the rest of the batch behind it.

use crate::cache::{CacheStats, LruCache};
use crate::shard::ShardedCorpus;
use divtopk_core::{MergedSource, SearchError};
use divtopk_text::corpus::Corpus;
use divtopk_text::document::TermId;
use divtopk_text::query::KeywordQuery;
use divtopk_text::search::{SearchOptions, SearchOutput, search_with_source, validate_terms};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Engine deployment configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of corpus shards (≥ 1).
    pub shards: usize,
    /// LRU result-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Worker threads for [`Engine::search_batch`]; 0 means "one per
    /// available CPU" (`std::thread::available_parallelism`).
    pub threads: usize,
}

impl EngineConfig {
    /// A configuration with `shards` shards, a 4096-entry cache, and
    /// auto-sized batch workers.
    pub fn new(shards: usize) -> EngineConfig {
        EngineConfig {
            shards,
            cache_capacity: 4096,
            threads: 0,
        }
    }

    /// Overrides the result-cache capacity (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> EngineConfig {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the batch worker-thread count (0 = auto).
    pub fn with_threads(mut self, threads: usize) -> EngineConfig {
        self.threads = threads;
        self
    }
}

impl Default for EngineConfig {
    /// One shard, 4096-entry cache, auto-sized workers.
    fn default() -> EngineConfig {
        EngineConfig::new(1)
    }
}

/// One query for the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Single-keyword query served by merged posting-list scans
    /// (incremental framework).
    Scan(TermId),
    /// Multi-keyword query served by merged threshold algorithms
    /// (bounding framework).
    Keywords(KeywordQuery),
}

/// Normalized cache key: `(query, k, τ quantized, algorithm fingerprint)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    query: QueryKey,
    k: usize,
    /// `τ` quantized to 1e-9 steps — float keys need a stable identity,
    /// and operating points closer than 1e-9 in τ are indistinguishable
    /// for any realistic similarity function.
    tau_q: u64,
    /// `Debug` fingerprint of (algorithm, limits, bound decay): every
    /// knob that can change the output (including its metrics) must key
    /// the cache, or "bit-identical cache hits" would be a lie.
    algo: String,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum QueryKey {
    Scan(TermId),
    /// Sorted, deduplicated terms.
    Keywords(Vec<TermId>),
}

impl CacheKey {
    fn new(query: &Query, options: &SearchOptions) -> CacheKey {
        let query = match query {
            Query::Scan(term) => QueryKey::Scan(*term),
            Query::Keywords(q) => {
                let mut terms = q.terms.clone();
                terms.sort_unstable();
                terms.dedup();
                QueryKey::Keywords(terms)
            }
        };
        CacheKey {
            query,
            k: options.k,
            tau_q: (options.tau * 1e9).round() as u64,
            algo: format!(
                "{:?}|{:?}|{}",
                options.algorithm, options.limits, options.bound_decay
            ),
        }
    }
}

/// Aggregate serving counters ([`divtopk_core::FrameworkMetrics`]-style:
/// plain `Copy` data, snapshotted by [`Engine::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries admitted (cache hits included; rejected options excluded).
    pub queries: u64,
    /// Queries rejected at admission ([`SearchOptions::validate`]).
    pub rejected: u64,
    /// Batches executed via [`Engine::search_batch`].
    pub batches: u64,
    /// Result-cache lookups that hit.
    pub cache_hits: u64,
    /// Result-cache lookups that missed.
    pub cache_misses: u64,
    /// Results computed and stored (single-flighted: W concurrent
    /// duplicates of one query produce exactly one insertion).
    pub cache_insertions: u64,
    /// Result-cache evictions.
    pub cache_evictions: u64,
    /// Live result-cache entries.
    pub cache_entries: usize,
}

/// The sharded, cached, concurrent serving engine (see module docs and
/// the crate-level example).
#[derive(Debug)]
pub struct Engine {
    sharded: ShardedCorpus,
    cache: Mutex<LruCache<CacheKey, SearchOutput>>,
    cache_capacity: usize,
    /// Keys currently being computed by some caller (single-flight).
    inflight: Mutex<HashSet<CacheKey>>,
    /// Signalled whenever an in-flight computation finishes.
    inflight_done: Condvar,
    threads: usize,
    queries: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
}

impl Engine {
    /// Builds the engine: shards the corpus, sizes the cache and pool.
    ///
    /// # Panics
    /// Panics if `config.shards == 0` (deployment configuration error).
    pub fn new(corpus: Corpus, config: EngineConfig) -> Engine {
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.threads
        };
        Engine {
            sharded: ShardedCorpus::build(corpus, config.shards),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            cache_capacity: config.cache_capacity,
            inflight: Mutex::new(HashSet::new()),
            inflight_done: Condvar::new(),
            threads,
            queries: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        }
    }

    /// The global corpus behind the shards.
    pub fn corpus(&self) -> &Corpus {
        self.sharded.corpus()
    }

    /// The shard layout.
    pub fn sharded(&self) -> &ShardedCorpus {
        &self.sharded
    }

    /// Worker threads used by [`Engine::search_batch`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Serves one query: admission validation (options *and* query terms
    /// — malformed input is a typed error, never a worker panic), cache
    /// lookup, then the sharded merged search on a miss. Cache hits
    /// return a clone of the original [`SearchOutput`], bit-identical
    /// metrics included. Concurrent misses on the same key are
    /// **single-flighted**: one caller computes, the rest wait and serve
    /// the cached result (the expensive search never runs W times for W
    /// duplicate queries in a batch).
    pub fn search(
        &self,
        query: &Query,
        options: &SearchOptions,
    ) -> Result<SearchOutput, SearchError> {
        let admission = options.validate().and_then(|()| {
            let terms: &[TermId] = match query {
                Query::Scan(term) => std::slice::from_ref(term),
                Query::Keywords(q) => &q.terms,
            };
            validate_terms(terms, self.sharded.shard_index(0))
        });
        if let Err(e) = admission {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        if self.cache_capacity == 0 {
            // Caching disabled: no store to single-flight against (and no
            // point paying for key normalization on the uncached path).
            return self.execute(query, options);
        }
        let key = CacheKey::new(query, options);
        loop {
            // The cache lookup happens *under* the inflight lock: a
            // computer inserts into the cache before removing its
            // inflight key, so "key absent from both" race-freely means
            // this caller should compute. (Lock order is always
            // inflight→cache; the insert/remove paths hold one at a
            // time, so there is no inversion.)
            let mut inflight = self.inflight.lock().unwrap();
            if let Some(hit) = self.cache.lock().unwrap().get(&key) {
                return Ok(hit.clone());
            }
            if !inflight.contains(&key) {
                inflight.insert(key.clone());
                break; // this caller computes
            }
            // Another caller is computing this key: wait for it to finish
            // (it inserts into the cache before waking us), then re-check.
            drop(self.inflight_done.wait(inflight).unwrap());
        }
        // Releases the inflight claim and wakes waiters on every exit
        // path — including a panic inside `execute` (a leaked key would
        // park every waiter on the condvar forever, and `thread::scope`
        // would then hang joining them instead of propagating the panic).
        struct InflightClaim<'a> {
            inflight: &'a Mutex<HashSet<CacheKey>>,
            done: &'a Condvar,
            key: &'a CacheKey,
        }
        impl Drop for InflightClaim<'_> {
            fn drop(&mut self) {
                let mut inflight = self
                    .inflight
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                inflight.remove(self.key);
                self.done.notify_all();
            }
        }
        let claim = InflightClaim {
            inflight: &self.inflight,
            done: &self.inflight_done,
            key: &key,
        };
        // Compute outside every lock: a slow query must serialize neither
        // the serving tier (cache mutex) nor unrelated misses (inflight).
        let result = self.execute(query, options);
        if let Ok(out) = &result {
            self.cache.lock().unwrap().insert(key.clone(), out.clone());
        }
        // The claim drops here — strictly after the cache insert, so a
        // woken waiter always finds the entry.
        drop(claim);
        result
    }

    /// Executes a batch concurrently on the scoped worker pool; results
    /// come back in input order. Each query is admitted/cached exactly as
    /// in [`Engine::search`].
    pub fn search_batch(
        &self,
        batch: &[(Query, SearchOptions)],
    ) -> Vec<Result<SearchOutput, SearchError>> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let workers = self.threads.min(batch.len()).max(1);
        if workers == 1 {
            return batch
                .iter()
                .map(|(query, options)| self.search(query, options))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<SearchOutput, SearchError>>>> =
            batch.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some((query, options)) = batch.get(i) else {
                            break;
                        };
                        *slots[i].lock().unwrap() = Some(self.search(query, options));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every batch slot is filled by a worker")
            })
            .collect()
    }

    /// Counter snapshot (queries, rejections, batches, cache behaviour).
    pub fn stats(&self) -> EngineStats {
        let cache = self.cache.lock().unwrap();
        let cache_stats: CacheStats = cache.stats();
        EngineStats {
            queries: self.queries.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            cache_hits: cache_stats.hits,
            cache_misses: cache_stats.misses,
            cache_insertions: cache_stats.insertions,
            cache_evictions: cache_stats.evictions,
            cache_entries: cache.len(),
        }
    }

    fn execute(&self, query: &Query, options: &SearchOptions) -> Result<SearchOutput, SearchError> {
        let corpus = self.sharded.corpus();
        let weights = self.sharded.weights();
        match query {
            Query::Scan(term) => {
                let merged = MergedSource::incremental(self.sharded.scan_sources(*term));
                search_with_source(corpus, weights, merged, options)
            }
            Query::Keywords(q) => {
                let merged = MergedSource::bounding(self.sharded.ta_sources(q));
                search_with_source(corpus, weights, merged, options)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divtopk_text::synth::{SynthConfig, generate};

    fn engine(shards: usize) -> Engine {
        let corpus = generate(&SynthConfig {
            num_docs: 200,
            ..SynthConfig::tiny()
        });
        Engine::new(corpus, EngineConfig::new(shards).with_threads(2))
    }

    fn popular_term(e: &Engine) -> TermId {
        let index = e.sharded().shard_index(0);
        (0..e.corpus().num_terms() as TermId)
            .max_by_key(|&t| index.postings(t).len())
            .unwrap()
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_both<T: Send + Sync>() {}
        assert_both::<Engine>();
    }

    #[test]
    fn cache_hits_are_bit_identical_and_counted() {
        let e = engine(4);
        let term = popular_term(&e);
        let options = SearchOptions::new(3).with_tau(0.5);
        let first = e.search(&Query::Scan(term), &options).unwrap();
        let second = e.search(&Query::Scan(term), &options).unwrap();
        assert_eq!(first, second);
        let stats = e.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_entries, 1);
    }

    #[test]
    fn cache_key_normalizes_term_order_but_not_operating_point() {
        let e = engine(2);
        let t1 = popular_term(&e);
        let t2 = (0..e.corpus().num_terms() as TermId)
            .filter(|&t| t != t1)
            .max_by_key(|&t| e.sharded().shard_index(0).postings(t).len())
            .unwrap();
        let options = SearchOptions::new(3).with_tau(0.5);
        let ab = KeywordQuery {
            terms: vec![t1, t2],
        };
        let ba = KeywordQuery {
            terms: vec![t2, t1],
        };
        let out1 = e.search(&Query::Keywords(ab), &options).unwrap();
        let out2 = e.search(&Query::Keywords(ba), &options).unwrap();
        assert_eq!(out1, out2);
        assert_eq!(e.stats().cache_hits, 1, "term order must normalize away");
        // A different (k, τ) operating point is a different entry.
        let _ = e
            .search(&Query::Scan(t1), &SearchOptions::new(3).with_tau(0.5))
            .unwrap();
        let _ = e
            .search(&Query::Scan(t1), &SearchOptions::new(3).with_tau(0.6))
            .unwrap();
        let stats = e.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_entries, 3);
    }

    #[test]
    fn admission_rejects_and_counts_invalid_options() {
        let e = engine(2);
        let term = popular_term(&e);
        assert!(matches!(
            e.search(&Query::Scan(term), &SearchOptions::new(0)),
            Err(SearchError::InvalidK { k: 0 })
        ));
        assert!(matches!(
            e.search(
                &Query::Scan(term),
                &SearchOptions::new(3).with_tau(f64::NAN)
            ),
            Err(SearchError::InvalidTau { .. })
        ));
        let stats = e.stats();
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.queries, 0);
        assert_eq!(
            stats.cache_misses, 0,
            "rejected queries never reach the cache"
        );
    }

    #[test]
    fn batch_results_come_back_in_input_order() {
        let e = engine(4);
        let term = popular_term(&e);
        let batch: Vec<(Query, SearchOptions)> = (1..=6)
            .map(|k| (Query::Scan(term), SearchOptions::new(k).with_tau(0.7)))
            .collect();
        let outs = e.search_batch(&batch);
        assert_eq!(outs.len(), 6);
        for (i, out) in outs.iter().enumerate() {
            let out = out.as_ref().unwrap();
            assert!(
                out.hits.len() <= i + 1,
                "slot {i} answered with k > {}",
                i + 1
            );
        }
        // Batch answers equal sequential answers.
        for ((query, options), got) in batch.iter().zip(&outs) {
            let want = e.search(query, options).unwrap();
            assert_eq!(&want, got.as_ref().unwrap());
        }
        assert_eq!(e.stats().batches, 1);
    }

    #[test]
    fn batch_propagates_per_query_errors_without_poisoning_others() {
        let e = engine(2);
        let term = popular_term(&e);
        let bogus = e.corpus().num_terms() as TermId + 7;
        let batch = vec![
            (Query::Scan(term), SearchOptions::new(3).with_tau(0.7)),
            (Query::Scan(term), SearchOptions::new(0)),
            // Out-of-vocabulary term ids must come back as typed errors,
            // not panic a scoped worker and abort the whole batch.
            (Query::Scan(bogus), SearchOptions::new(3).with_tau(0.7)),
            (
                Query::Keywords(KeywordQuery {
                    terms: vec![term, bogus],
                }),
                SearchOptions::new(3).with_tau(0.7),
            ),
            (Query::Scan(term), SearchOptions::new(2).with_tau(0.7)),
        ];
        let outs = e.search_batch(&batch);
        assert!(outs[0].is_ok());
        assert!(matches!(outs[1], Err(SearchError::InvalidK { k: 0 })));
        assert!(matches!(outs[2], Err(SearchError::UnknownTerm { term }) if term == bogus));
        assert!(matches!(outs[3], Err(SearchError::UnknownTerm { term }) if term == bogus));
        assert!(outs[4].is_ok());
        assert_eq!(e.stats().rejected, 3);
    }

    #[test]
    fn concurrent_duplicate_misses_are_single_flighted() {
        let e = engine(4); // 2 worker threads
        let term = popular_term(&e);
        let batch: Vec<(Query, SearchOptions)> = (0..8)
            .map(|_| (Query::Scan(term), SearchOptions::new(4).with_tau(0.5)))
            .collect();
        let outs = e.search_batch(&batch);
        let first = outs[0].as_ref().unwrap();
        for out in &outs {
            assert_eq!(first, out.as_ref().unwrap());
        }
        // Exactly one computation happened; every other caller either hit
        // the cache or waited on the in-flight one and then hit it.
        let stats = e.stats();
        assert_eq!(stats.cache_insertions, 1);
        assert_eq!(stats.queries, 8);
    }
}
