//! The serving engine: admission → generation-scoped cache → segmented
//! merged search, with live updates behind copy-on-write snapshots.
//!
//! [`Engine`] owns an [`Arc`]-swapped [`SegmentedIndex`] snapshot and
//! serves diversified top-k queries through the exact same
//! [`divtopk_text::search::search_with_source`] path as the single-machine
//! [`divtopk_text::DiversifiedSearcher`], with one
//! [`divtopk_core::MergedSource`] recombining one per-segment source per
//! query (tombstones filtered at the merge — DESIGN.md §9):
//!
//! * single-keyword queries merge per-segment posting-list scans in
//!   **incremental** mode — emission and bound sequence *identical* to a
//!   scan of the from-scratch rebuild of the surviving docs, so the whole
//!   framework run (hits, metrics, early-stop point) is bit-for-bit that
//!   of the rebuild;
//! * multi-keyword queries merge per-segment threshold algorithms in
//!   **bounding** mode — same exact optimum over the live set, reached
//!   down a (often cheaper) different pull sequence.
//!
//! ## Snapshots and epochs
//!
//! Mutations ([`Engine::add_docs`], [`Engine::delete_docs`],
//! [`Engine::compact`]) never touch state a reader can see: a writer
//! clones the current [`SegmentedIndex`] (cheap — segments are `Arc`s;
//! only what the mutation touches is deep-copied), applies the change, and
//! swaps a fresh `Arc<Snapshot>` with a bumped **generation** counter.
//! Every query pins one snapshot at admission and runs entirely against
//! it, so in-flight queries are never torn across generations — they
//! simply finish on the epoch they started on.
//!
//! The LRU cache key embeds the pinned generation, re-resolved **per
//! query at cache-probe time** (also inside [`Engine::search_batch`], so a
//! mutation mid-batch can never serve one query another generation's
//! result). Entries of older generations become unreachable the instant a
//! mutation lands — dead on arrival, reclaimed lazily by LRU eviction.
//!
//! Batches run on a scoped `std::thread` pool (no external dependencies):
//! workers claim queries off an atomic cursor, so a slow query never
//! convoys the rest of the batch behind it.

use crate::cache::{CacheStats, LruCache};
use divtopk_core::sync::{
    self, lock_unpoisoned, read_unpoisoned, wait_unpoisoned, write_unpoisoned,
};
use divtopk_core::{SearchError, WorkerPool};
use divtopk_text::corpus::Corpus;
use divtopk_text::document::{DocId, Document, TermId};
use divtopk_text::persist::{self, SaveReport, SnapshotError};
use divtopk_text::query::KeywordQuery;
use divtopk_text::search::{SearchOptions, SearchOutput};
use divtopk_text::segments::SegmentedIndex;
use std::collections::HashSet;
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Engine deployment configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of base segments the initial corpus is partitioned into
    /// (round-robin, ≥ 1) — the serving-parallelism axis; live additions
    /// append further segments on top.
    pub shards: usize,
    /// LRU result-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Worker threads for [`Engine::search_batch`]; 0 means "one per
    /// available CPU" (`std::thread::available_parallelism`).
    pub threads: usize,
    /// Worker threads for the parallel-pull pool that pumps per-segment
    /// sources concurrently inside one query
    /// ([`divtopk_core::prefetch`]). `None` (the default) auto-sizes: a
    /// pool of `min(available_parallelism, 8)` threads on a multi-core
    /// host, disabled on a single core (where pumping threads could only
    /// add context switches). `Some(0)` forces the sequential pull path;
    /// `Some(n)` forces a pool of `n`. Either way the *answers* are
    /// byte-identical — this knob only moves where the pulls run.
    pub pull_workers: Option<usize>,
}

impl EngineConfig {
    /// A configuration with `shards` base segments, a 4096-entry cache,
    /// and auto-sized batch workers.
    pub fn new(shards: usize) -> EngineConfig {
        EngineConfig {
            shards,
            cache_capacity: 4096,
            threads: 0,
            pull_workers: None,
        }
    }

    /// Overrides the result-cache capacity (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> EngineConfig {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the batch worker-thread count (0 = auto).
    pub fn with_threads(mut self, threads: usize) -> EngineConfig {
        self.threads = threads;
        self
    }

    /// Overrides the parallel-pull pool size (0 = sequential pulls; see
    /// [`EngineConfig::pull_workers`]).
    pub fn with_pull_workers(mut self, workers: usize) -> EngineConfig {
        self.pull_workers = Some(workers);
        self
    }
}

impl Default for EngineConfig {
    /// One base segment, 4096-entry cache, auto-sized workers.
    fn default() -> EngineConfig {
        EngineConfig::new(1)
    }
}

/// One query for the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Single-keyword query served by merged posting-list scans
    /// (incremental framework).
    Scan(TermId),
    /// Multi-keyword query served by merged threshold algorithms
    /// (bounding framework).
    Keywords(KeywordQuery),
}

/// Normalized cache key:
/// `(generation, query, k, τ quantized, algorithm fingerprint)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// The snapshot generation the probing query pinned. Any mutation
    /// bumps the engine's generation, so entries computed against an
    /// older epoch can never be served to a younger query (and vice
    /// versa) — the stale entries are simply unreachable and age out.
    generation: u64,
    query: QueryKey,
    k: usize,
    /// `τ` quantized to 1e-9 steps — float keys need a stable identity,
    /// and operating points closer than 1e-9 in τ are indistinguishable
    /// for any realistic similarity function.
    tau_q: u64,
    /// `Debug` fingerprint of (algorithm, limits, bound decay): every
    /// knob that can change the output (including its metrics) must key
    /// the cache, or "bit-identical cache hits" would be a lie.
    algo: String,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum QueryKey {
    Scan(TermId),
    /// Sorted, deduplicated terms.
    Keywords(Vec<TermId>),
}

impl CacheKey {
    fn new(query: &Query, options: &SearchOptions, generation: u64) -> CacheKey {
        let query = match query {
            Query::Scan(term) => QueryKey::Scan(*term),
            Query::Keywords(q) => {
                let mut terms = q.terms.clone();
                terms.sort_unstable();
                terms.dedup();
                QueryKey::Keywords(terms)
            }
        };
        CacheKey {
            generation,
            query,
            k: options.k,
            tau_q: (options.tau * 1e9).round() as u64,
            // The mode's Debug form spells out every mode parameter (λ,
            // window knobs, neighbor count, cut configuration) at full
            // precision, so no two distinct configurations can collide —
            // the cross-mode/cross-λ isolation regression tests pin this.
            algo: format!(
                "{:?}|{:?}|{}",
                options.mode, options.limits, options.bound_decay
            ),
        }
    }
}

/// Aggregate serving counters ([`divtopk_core::FrameworkMetrics`]-style:
/// plain `Copy` data, snapshotted by [`Engine::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries admitted (cache hits included; rejected options excluded).
    pub queries: u64,
    /// Queries rejected at admission ([`SearchOptions::validate`]).
    pub rejected: u64,
    /// Batches executed via [`Engine::search_batch`].
    pub batches: u64,
    /// Result-cache lookups that hit.
    pub cache_hits: u64,
    /// Result-cache lookups that missed.
    pub cache_misses: u64,
    /// Results computed and stored (single-flighted: W concurrent
    /// duplicates of one query produce exactly one insertion).
    pub cache_insertions: u64,
    /// Result-cache evictions.
    pub cache_evictions: u64,
    /// Live result-cache entries (stale generations included until LRU
    /// eviction reclaims them).
    pub cache_entries: usize,
    /// Snapshot generation: 0 at build, +1 per effective mutation.
    pub generation: u64,
    /// Segments in the current snapshot (base partitions + live adds,
    /// minus compactions).
    pub segments: usize,
    /// Tombstoned documents in the current snapshot.
    pub tombstones: usize,
    /// Compaction merges performed over the engine's lifetime.
    pub compactions: u64,
    /// Queries whose per-segment pulls ran concurrently on the
    /// parallel-pull pool (multi-segment snapshots with a pool
    /// configured; single-segment queries take the sequential path —
    /// there is nothing to overlap).
    pub parallel_pulls: u64,
    /// What [`EngineConfig::shards`] asked for at construction time.
    /// Compare with [`EngineStats::segments`] and
    /// [`EngineStats::layout_from_snapshot`] to see whether the request
    /// took effect: a snapshot's layout always wins (see
    /// [`Engine::load_snapshot`]).
    pub configured_shards: usize,
    /// True when the serving segment layout came from a snapshot
    /// ([`Engine::load_snapshot`] or [`Engine::reload_snapshot`]) rather
    /// than from partitioning a corpus by `config.shards`.
    pub layout_from_snapshot: bool,
}

/// One immutable serving epoch: a generation number and the segmented
/// index state queries of that epoch run against.
#[derive(Debug)]
struct Snapshot {
    generation: u64,
    index: SegmentedIndex,
}

/// The segmented, cached, concurrent, live-updatable serving engine (see
/// module docs and the crate-level example).
#[derive(Debug)]
pub struct Engine {
    /// The copy-on-write swap point: readers clone the `Arc` (pinning an
    /// epoch), writers replace it.
    snapshot: RwLock<Arc<Snapshot>>,
    /// Serializes writers; readers never take it.
    writer: Mutex<()>,
    cache: Mutex<LruCache<CacheKey, SearchOutput>>,
    cache_capacity: usize,
    /// Keys currently being computed by some caller (single-flight).
    inflight: Mutex<HashSet<CacheKey>>,
    /// Signalled whenever an in-flight computation finishes.
    inflight_done: Condvar,
    threads: usize,
    /// The parallel-pull pool ([`divtopk_core::WorkerPool`]); `None`
    /// means per-segment pulls run sequentially on the query thread.
    pool: Option<WorkerPool>,
    queries: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    parallel_pulls: AtomicU64,
    /// What `config.shards` asked for — surfaced via [`Engine::stats`]
    /// so a snapshot-loaded engine can't silently masquerade as a
    /// `config.shards`-partitioned one.
    configured_shards: usize,
    /// True once the serving layout came from a snapshot (construction
    /// via [`Engine::load_snapshot`], or any later
    /// [`Engine::reload_snapshot`]).
    layout_from_snapshot: AtomicBool,
}

impl Engine {
    /// Builds the engine: partitions the corpus into the base segments,
    /// sizes the cache and pool.
    ///
    /// # Panics
    /// Panics if `config.shards == 0` (deployment configuration error).
    pub fn new(corpus: Corpus, config: EngineConfig) -> Engine {
        Engine::from_state(
            SegmentedIndex::build_partitioned(corpus, config.shards),
            0,
            &config,
            false,
        )
    }

    /// Assembles an engine around an existing serving state at a given
    /// generation — the shared path behind [`Engine::new`] and
    /// [`Engine::load_snapshot`]. `layout_from_snapshot` records where
    /// the segment layout came from (surfaced in [`EngineStats`]).
    fn from_state(
        index: SegmentedIndex,
        generation: u64,
        config: &EngineConfig,
        layout_from_snapshot: bool,
    ) -> Engine {
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.threads
        };
        let pull_workers = config.pull_workers.unwrap_or_else(|| {
            // Auto: parallel pulls buy nothing on a single core (the
            // pumps would just time-slice against the merge), so the
            // pool only spins up when there is real parallelism.
            match std::thread::available_parallelism().map_or(1, |n| n.get()) {
                1 => 0,
                cores => cores.min(8),
            }
        });
        let pool = (pull_workers > 0).then(|| WorkerPool::new(pull_workers));
        Engine {
            snapshot: RwLock::new(Arc::new(Snapshot { generation, index })),
            writer: Mutex::new(()),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            cache_capacity: config.cache_capacity,
            inflight: Mutex::new(HashSet::new()),
            inflight_done: Condvar::new(),
            threads,
            pool,
            queries: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            parallel_pulls: AtomicU64::new(0),
            configured_shards: config.shards,
            layout_from_snapshot: AtomicBool::new(layout_from_snapshot),
        }
    }

    /// Pins the current snapshot: the returned epoch stays fully readable
    /// (and internally consistent) no matter how many mutations land
    /// afterwards.
    fn pin(&self) -> Arc<Snapshot> {
        Arc::clone(&read_unpoisoned(&self.snapshot))
    }

    /// The corpus view of the current snapshot (all documents ever added,
    /// frozen statistics epoch). A shared handle: it reflects the
    /// generation current at call time and stays valid after mutations.
    pub fn corpus(&self) -> Arc<Corpus> {
        self.pin().index.shared_corpus()
    }

    /// The current snapshot generation (0 until the first mutation).
    pub fn generation(&self) -> u64 {
        self.pin().generation
    }

    /// Worker threads used by [`Engine::search_batch`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Parallel-pull pool size (0 = sequential pulls).
    pub fn pull_workers(&self) -> usize {
        self.pool.as_ref().map_or(0, WorkerPool::threads)
    }

    /// Installs a mutated index as the next generation. Callers must hold
    /// the writer lock.
    fn install(&self, generation: u64, index: SegmentedIndex) {
        *write_unpoisoned(&self.snapshot) = Arc::new(Snapshot { generation, index });
    }

    /// Appends `docs` as one new immutable segment and publishes a new
    /// snapshot generation. In-flight queries keep reading their pinned
    /// epoch; queries admitted afterwards see the new documents. Returns
    /// the assigned doc-id range (empty batches are no-ops that do not
    /// bump the generation).
    ///
    /// # Panics
    /// Panics if a document references a term outside the frozen
    /// vocabulary (the statistics epoch cannot grow mid-flight).
    pub fn add_docs(&self, docs: Vec<Document>) -> Range<DocId> {
        let _writer = lock_unpoisoned(&self.writer);
        let current = self.pin();
        if docs.is_empty() {
            let n = current.index.num_docs() as DocId;
            return n..n;
        }
        let mut index = current.index.clone();
        let range = index.add_docs(docs);
        self.install(current.generation + 1, index);
        range
    }

    /// Tokenizes `text` against the frozen vocabulary (stop words and
    /// out-of-vocabulary terms dropped) and adds it as a one-document
    /// segment. Returns the new doc id.
    pub fn add_text(&self, title: &str, text: &str) -> DocId {
        let _writer = lock_unpoisoned(&self.writer);
        let current = self.pin();
        let mut index = current.index.clone();
        let id = index.add_text(title, text);
        self.install(current.generation + 1, index);
        id
    }

    /// Tombstones the given documents and publishes a new snapshot
    /// generation (unless nothing was newly deleted). Returns how many
    /// documents were newly deleted.
    ///
    /// # Panics
    /// Panics on a doc id that was never allocated.
    pub fn delete_docs(&self, docs: &[DocId]) -> usize {
        let _writer = lock_unpoisoned(&self.writer);
        let current = self.pin();
        let mut index = current.index.clone();
        let deleted = index.delete_docs(docs);
        if deleted > 0 {
            self.install(current.generation + 1, index);
        }
        deleted
    }

    /// Runs one size-tiered compaction step (merging the smallest tier of
    /// segments, purging tombstoned postings) and publishes a new
    /// generation if anything merged. Returns the number of segments
    /// merged away (0 = nothing to do).
    pub fn compact(&self) -> usize {
        let _writer = lock_unpoisoned(&self.writer);
        let current = self.pin();
        let mut index = current.index.clone();
        let merged = index.compact();
        if merged > 0 {
            self.install(current.generation + 1, index);
        }
        merged
    }

    /// Persists the current serving state — corpus epoch, weight table,
    /// every segment's posting lists (bit-exact via [`f64::to_bits`]),
    /// tombstones, compaction counter, and the snapshot generation — to
    /// the snapshot **directory** `dir` in the segment-granular layout of
    /// [`divtopk_text::persist`] (DESIGN.md §14). The save is
    /// incremental: files the directory's previous checkpoint already
    /// holds (unchanged segments, sealed document chunks, the epoch) are
    /// reused, so a steady-state checkpoint writes O(what changed) bytes.
    /// Caches and serving counters are deliberately not part of the
    /// durable state. Returns the [`SaveReport`] describing the work.
    ///
    /// The save pins one snapshot, so a concurrent mutation can never
    /// tear the directory: what lands on disk is exactly one generation.
    pub fn save_snapshot(&self, dir: impl AsRef<Path>) -> Result<SaveReport, SnapshotError> {
        let snap = self.pin();
        persist::save_segmented(dir, &snap.index, snap.generation)
    }

    /// Restores an engine from a snapshot written by
    /// [`Engine::save_snapshot`]: the loaded serving state is
    /// byte-identical to the saved one (scan outputs, metrics, early-stop
    /// points, TA optima — `tests/persistence.rs` pins this), and the
    /// generation counter resumes where the saved engine stood. The
    /// result cache starts empty and the serving counters start at zero —
    /// they are process state, not index state.
    ///
    /// **Precedence:** the snapshot's segment layout always wins over
    /// `config.shards` — the saved segments are restored as-is and the
    /// corpus is never re-partitioned (cache capacity and worker threads
    /// apply as usual). The override is not silent: [`Engine::stats`]
    /// reports both the requested `configured_shards` and
    /// `layout_from_snapshot = true`, so operators can see that the
    /// serving layout came from the snapshot directory.
    /// Corrupt input returns a typed [`SnapshotError`], never a panic.
    pub fn load_snapshot(
        path: impl AsRef<Path>,
        config: &EngineConfig,
    ) -> Result<Engine, SnapshotError> {
        let (index, generation) = persist::load_segmented(path)?;
        Ok(Engine::from_state(index, generation, config, true))
    }

    /// Swaps the serving state to the snapshot at `path` **without
    /// restarting the engine** — the serving tier's graceful reload.
    /// In-flight queries finish on their pinned epoch; queries admitted
    /// after the swap see the loaded state. Returns the new generation.
    ///
    /// The published generation is `max(loaded, current + 1)`: strictly
    /// greater than every generation this engine has ever served, so no
    /// pre-reload cache entry (keyed on generation) can ever answer a
    /// post-reload query, even when the snapshot on disk carries an older
    /// counter than the live engine. A corrupt or unreadable snapshot is
    /// a typed [`SnapshotError`] and leaves the serving state untouched.
    pub fn reload_snapshot(&self, path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
        let _writer = lock_unpoisoned(&self.writer);
        let (index, loaded) = persist::load_segmented(path)?;
        let generation = loaded.max(self.pin().generation + 1);
        self.install(generation, index);
        // RELAXED: provenance flag — monotonic bool read only by
        // `stats()`, no ordering with the snapshot swap required.
        self.layout_from_snapshot.store(true, Ordering::Relaxed);
        Ok(generation)
    }

    /// Diagnostic: verifies the current snapshot's rebuild-equivalence
    /// invariant directly on the data (see
    /// [`SegmentedIndex::verify_rebuild_equivalence`]). The `live_update`
    /// perfbase suite runs this on every benchmark run.
    pub fn verify_rebuild_equivalence(&self) -> Result<(), String> {
        self.pin().index.verify_rebuild_equivalence()
    }

    /// Serves one query: admission validation (options *and* query terms
    /// — malformed input is a typed error, never a worker panic), a
    /// snapshot pin, cache lookup under the pinned generation, then the
    /// segmented merged search on a miss. Cache hits return a clone of
    /// the original [`SearchOutput`], bit-identical metrics included.
    /// Concurrent misses on the same key are **single-flighted**: one
    /// caller computes, the rest wait and serve the cached result.
    pub fn search(
        &self,
        query: &Query,
        options: &SearchOptions,
    ) -> Result<SearchOutput, SearchError> {
        // Pin one epoch for the query's whole lifetime: admission, cache
        // probe, and execution all see the same generation, so a mutation
        // landing mid-query can never tear the answer.
        let snap = self.pin();
        let admission = options.validate().and_then(|()| {
            let terms: &[TermId] = match query {
                Query::Scan(term) => std::slice::from_ref(term),
                Query::Keywords(q) => &q.terms,
            };
            snap.index.validate_terms(terms)
        });
        if let Err(e) = admission {
            // RELAXED: monotonic stats counters — read only by `stats()`
            // snapshots, which tolerate any interleaving; nothing is
            // published or acquired through them.
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        // RELAXED: same — monotonic stats counter.
        self.queries.fetch_add(1, Ordering::Relaxed);
        if self.cache_capacity == 0 {
            // Caching disabled: no store to single-flight against (and no
            // point paying for key normalization on the uncached path).
            return self.execute(&snap, query, options);
        }
        let key = CacheKey::new(query, options, snap.generation);
        loop {
            // The cache lookup happens *under* the inflight lock: a
            // computer inserts into the cache before removing its
            // inflight key, so "key absent from both" race-freely means
            // this caller should compute. (Lock order is always
            // inflight→cache; the insert/remove paths hold one at a
            // time, so there is no inversion.)
            let mut inflight = lock_unpoisoned(&self.inflight);
            if let Some(hit) = lock_unpoisoned(&self.cache).get(&key) {
                return Ok(hit.clone());
            }
            if !inflight.contains(&key) {
                inflight.insert(key.clone());
                break; // this caller computes
            }
            // Another caller is computing this key: wait for it to finish
            // (it inserts into the cache before waking us), then re-check.
            drop(wait_unpoisoned(&self.inflight_done, inflight));
        }
        // Releases the inflight claim and wakes waiters on every exit
        // path — including a panic inside `execute` (a leaked key would
        // park every waiter on the condvar forever, and `thread::scope`
        // would then hang joining them instead of propagating the panic).
        struct InflightClaim<'a> {
            inflight: &'a Mutex<HashSet<CacheKey>>,
            done: &'a Condvar,
            key: &'a CacheKey,
        }
        impl Drop for InflightClaim<'_> {
            fn drop(&mut self) {
                let mut inflight = lock_unpoisoned(self.inflight);
                inflight.remove(self.key);
                self.done.notify_all();
            }
        }
        let claim = InflightClaim {
            inflight: &self.inflight,
            done: &self.inflight_done,
            key: &key,
        };
        // Compute outside every lock: a slow query must serialize neither
        // the serving tier (cache mutex) nor unrelated misses (inflight).
        let result = self.execute(&snap, query, options);
        if let Ok(out) = &result {
            lock_unpoisoned(&self.cache).insert(key.clone(), out.clone());
        }
        // The claim drops here — strictly after the cache insert, so a
        // woken waiter always finds the entry.
        drop(claim);
        result
    }

    /// Serves one query **bypassing the result cache**: same admission,
    /// same snapshot pin, same segmented execution as [`Engine::search`],
    /// but the cache is neither probed nor populated. For measurement
    /// paths that must observe real execution cost every time — the
    /// quality harness's cold-cache sweeps — without disturbing the
    /// cache's contents or hit/miss counters for production traffic.
    pub fn search_uncached(
        &self,
        query: &Query,
        options: &SearchOptions,
    ) -> Result<SearchOutput, SearchError> {
        let snap = self.pin();
        let admission = options.validate().and_then(|()| {
            let terms: &[TermId] = match query {
                Query::Scan(term) => std::slice::from_ref(term),
                Query::Keywords(q) => &q.terms,
            };
            snap.index.validate_terms(terms)
        });
        if let Err(e) = admission {
            // RELAXED: monotonic stats counters — read only by `stats()`
            // snapshots, which tolerate any interleaving; nothing is
            // published or acquired through them.
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        // RELAXED: same — monotonic stats counter.
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.execute(&snap, query, options)
    }

    /// Executes a batch concurrently on the scoped worker pool; results
    /// come back in input order. Each query is admitted, **snapshot-
    /// pinned, and generation-checked at its own cache probe** exactly as
    /// in [`Engine::search`] — a mutation landing mid-batch moves later
    /// queries to the new generation but can never serve them another
    /// epoch's cached result.
    pub fn search_batch(
        &self,
        batch: &[(Query, SearchOptions)],
    ) -> Vec<Result<SearchOutput, SearchError>> {
        // RELAXED: monotonic stats counter (see `stats()`).
        self.batches.fetch_add(1, Ordering::Relaxed);
        let workers = self.threads.min(batch.len()).max(1);
        if workers == 1 {
            return batch
                .iter()
                .map(|(query, options)| self.search(query, options))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<SearchOutput, SearchError>>>> =
            batch.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    loop {
                        // RELAXED: the counter only claims distinct
                        // indices; slot writes are ordered by each slot's
                        // own mutex, and scope join publishes everything.
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some((query, options)) = batch.get(i) else {
                            break;
                        };
                        *lock_unpoisoned(&slots[i]) = Some(self.search(query, options));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                // LINT-ALLOW(panic): the scope above joins every worker, and
                // the cursor hands each index to exactly one of them — an
                // empty slot here is a structural bug, not a runtime state.
                sync::unpoisoned(slot.into_inner()).expect("every batch slot is filled by a worker")
            })
            .collect()
    }

    /// Counter snapshot (queries, rejections, batches, cache behaviour,
    /// plus the live-update state: generation, segments, tombstones,
    /// compactions).
    pub fn stats(&self) -> EngineStats {
        let snap = self.pin();
        let cache = lock_unpoisoned(&self.cache);
        let cache_stats: CacheStats = cache.stats();
        EngineStats {
            // RELAXED: stats snapshot — each counter is independently
            // monotonic; a torn multi-counter view is acceptable by the
            // method's contract (diagnostics, not invariants).
            queries: self.queries.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            cache_hits: cache_stats.hits,
            cache_misses: cache_stats.misses,
            cache_insertions: cache_stats.insertions,
            cache_evictions: cache_stats.evictions,
            cache_entries: cache.len(),
            generation: snap.generation,
            segments: snap.index.num_segments(),
            tombstones: snap.index.tombstones(),
            compactions: snap.index.compactions(),
            // RELAXED: as above — diagnostics-only counter snapshot.
            parallel_pulls: self.parallel_pulls.load(Ordering::Relaxed),
            configured_shards: self.configured_shards,
            // RELAXED: provenance flag — monotonic bool, diagnostics.
            layout_from_snapshot: self.layout_from_snapshot.load(Ordering::Relaxed),
        }
    }

    fn execute(
        &self,
        snap: &Snapshot,
        query: &Query,
        options: &SearchOptions,
    ) -> Result<SearchOutput, SearchError> {
        // The pooled and sequential paths return byte-identical outputs
        // (tests/parallel_merge.rs pins this), so routing is purely a
        // performance decision: overlap per-segment pulls when there are
        // segments to overlap and a pool to run them on.
        if let Some(pool) = &self.pool {
            if snap.index.num_segments() > 1 {
                // RELAXED: monotonic stats counter (see `stats()`).
                self.parallel_pulls.fetch_add(1, Ordering::Relaxed);
                return match query {
                    Query::Scan(term) => snap.index.search_scan_pooled(*term, options, pool),
                    Query::Keywords(q) => snap.index.search_ta_pooled(q, options, pool),
                };
            }
        }
        match query {
            Query::Scan(term) => snap.index.search_scan(*term, options),
            Query::Keywords(q) => snap.index.search_ta(q, options),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divtopk_text::mode::DiversifyMode;
    use divtopk_text::synth::{SynthConfig, generate};

    fn engine(shards: usize) -> Engine {
        let corpus = generate(&SynthConfig {
            num_docs: 200,
            ..SynthConfig::tiny()
        });
        Engine::new(corpus, EngineConfig::new(shards).with_threads(2))
    }

    fn popular_term(e: &Engine) -> TermId {
        let corpus = e.corpus();
        (0..corpus.num_terms() as TermId)
            .max_by_key(|&t| corpus.doc_freq(t))
            .unwrap()
    }

    fn donor_docs(range: std::ops::Range<u32>) -> Vec<Document> {
        let donor = generate(&SynthConfig {
            num_docs: range.end as usize,
            ..SynthConfig::tiny()
        });
        range.map(|d| donor.doc(d).clone()).collect()
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_both<T: Send + Sync>() {}
        assert_both::<Engine>();
    }

    #[test]
    fn cache_hits_are_bit_identical_and_counted() {
        let e = engine(4);
        let term = popular_term(&e);
        let options = SearchOptions::new(3).with_tau(0.5);
        let first = e.search(&Query::Scan(term), &options).unwrap();
        let second = e.search(&Query::Scan(term), &options).unwrap();
        assert_eq!(first, second);
        let stats = e.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_entries, 1);
    }

    #[test]
    fn cache_key_normalizes_term_order_but_not_operating_point() {
        let e = engine(2);
        let t1 = popular_term(&e);
        let corpus = e.corpus();
        let t2 = (0..corpus.num_terms() as TermId)
            .filter(|&t| t != t1)
            .max_by_key(|&t| corpus.doc_freq(t))
            .unwrap();
        let options = SearchOptions::new(3).with_tau(0.5);
        let ab = KeywordQuery {
            terms: vec![t1, t2],
        };
        let ba = KeywordQuery {
            terms: vec![t2, t1],
        };
        let out1 = e.search(&Query::Keywords(ab), &options).unwrap();
        let out2 = e.search(&Query::Keywords(ba), &options).unwrap();
        assert_eq!(out1, out2);
        assert_eq!(e.stats().cache_hits, 1, "term order must normalize away");
        // A different (k, τ) operating point is a different entry.
        let _ = e
            .search(&Query::Scan(t1), &SearchOptions::new(3).with_tau(0.5))
            .unwrap();
        let _ = e
            .search(&Query::Scan(t1), &SearchOptions::new(3).with_tau(0.6))
            .unwrap();
        let stats = e.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_entries, 3);
    }

    #[test]
    fn admission_rejects_and_counts_invalid_options() {
        let e = engine(2);
        let term = popular_term(&e);
        assert!(matches!(
            e.search(&Query::Scan(term), &SearchOptions::new(0)),
            Err(SearchError::InvalidK { k: 0 })
        ));
        assert!(matches!(
            e.search(
                &Query::Scan(term),
                &SearchOptions::new(3).with_tau(f64::NAN)
            ),
            Err(SearchError::InvalidTau { .. })
        ));
        let stats = e.stats();
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.queries, 0);
        assert_eq!(
            stats.cache_misses, 0,
            "rejected queries never reach the cache"
        );
    }

    #[test]
    fn batch_results_come_back_in_input_order() {
        let e = engine(4);
        let term = popular_term(&e);
        let batch: Vec<(Query, SearchOptions)> = (1..=6)
            .map(|k| (Query::Scan(term), SearchOptions::new(k).with_tau(0.7)))
            .collect();
        let outs = e.search_batch(&batch);
        assert_eq!(outs.len(), 6);
        for (i, out) in outs.iter().enumerate() {
            let out = out.as_ref().unwrap();
            assert!(
                out.hits.len() <= i + 1,
                "slot {i} answered with k > {}",
                i + 1
            );
        }
        // Batch answers equal sequential answers.
        for ((query, options), got) in batch.iter().zip(&outs) {
            let want = e.search(query, options).unwrap();
            assert_eq!(&want, got.as_ref().unwrap());
        }
        assert_eq!(e.stats().batches, 1);
    }

    #[test]
    fn batch_propagates_per_query_errors_without_poisoning_others() {
        let e = engine(2);
        let term = popular_term(&e);
        let bogus = e.corpus().num_terms() as TermId + 7;
        let batch = vec![
            (Query::Scan(term), SearchOptions::new(3).with_tau(0.7)),
            (Query::Scan(term), SearchOptions::new(0)),
            // Out-of-vocabulary term ids must come back as typed errors,
            // not panic a scoped worker and abort the whole batch.
            (Query::Scan(bogus), SearchOptions::new(3).with_tau(0.7)),
            (
                Query::Keywords(KeywordQuery {
                    terms: vec![term, bogus],
                }),
                SearchOptions::new(3).with_tau(0.7),
            ),
            (Query::Scan(term), SearchOptions::new(2).with_tau(0.7)),
        ];
        let outs = e.search_batch(&batch);
        assert!(outs[0].is_ok());
        assert!(matches!(outs[1], Err(SearchError::InvalidK { k: 0 })));
        assert!(matches!(outs[2], Err(SearchError::UnknownTerm { term }) if term == bogus));
        assert!(matches!(outs[3], Err(SearchError::UnknownTerm { term }) if term == bogus));
        assert!(outs[4].is_ok());
        assert_eq!(e.stats().rejected, 3);
    }

    #[test]
    fn concurrent_duplicate_misses_are_single_flighted() {
        let e = engine(4); // 2 worker threads
        let term = popular_term(&e);
        let batch: Vec<(Query, SearchOptions)> = (0..8)
            .map(|_| (Query::Scan(term), SearchOptions::new(4).with_tau(0.5)))
            .collect();
        let outs = e.search_batch(&batch);
        let first = outs[0].as_ref().unwrap();
        for out in &outs {
            assert_eq!(first, out.as_ref().unwrap());
        }
        // Exactly one computation happened; every other caller either hit
        // the cache or waited on the in-flight one and then hit it.
        let stats = e.stats();
        assert_eq!(stats.cache_insertions, 1);
        assert_eq!(stats.queries, 8);
    }

    #[test]
    fn mutations_bump_generation_and_surface_in_stats() {
        let e = engine(2);
        assert_eq!(e.generation(), 0);
        let stats = e.stats();
        assert_eq!((stats.generation, stats.segments), (0, 2));
        assert_eq!((stats.tombstones, stats.compactions), (0, 0));

        let range = e.add_docs(donor_docs(200..212));
        assert_eq!(range, 200..212);
        assert_eq!(e.generation(), 1);
        assert_eq!(e.stats().segments, 3);

        assert_eq!(e.delete_docs(&[201, 202]), 2);
        assert_eq!(e.generation(), 2);
        assert_eq!(e.stats().tombstones, 2);
        // Deleting nothing new does not publish a generation.
        assert_eq!(e.delete_docs(&[201]), 0);
        assert_eq!(e.generation(), 2);

        // Add two more small segments, then compact the small tier away.
        e.add_docs(donor_docs(212..220));
        e.add_docs(donor_docs(220..228));
        assert_eq!(e.stats().segments, 5);
        assert!(e.compact() >= 2);
        let stats = e.stats();
        assert_eq!(stats.compactions, 1);
        assert!(stats.segments < 5);
        e.verify_rebuild_equivalence().unwrap();
        // Empty add is a no-op.
        let g = e.generation();
        let n = e.corpus().num_docs() as DocId;
        assert_eq!(e.add_docs(Vec::new()), n..n);
        assert_eq!(e.generation(), g);
    }

    #[test]
    fn added_docs_become_searchable_and_deleted_docs_vanish() {
        let e = engine(2);
        let term = popular_term(&e);
        let options = SearchOptions::new(4).with_tau(0.5);
        let before = e.search(&Query::Scan(term), &options).unwrap();
        assert!(!before.hits.is_empty());
        let top = before.hits[0].doc;
        e.delete_docs(&[top]);
        let after = e.search(&Query::Scan(term), &options).unwrap();
        assert!(
            after.hits.iter().all(|h| h.doc != top),
            "deleted doc still served"
        );
        // Re-adding a fresh copy of the deleted doc's content brings an
        // equally scored hit back under a new id.
        let copy = e.corpus().doc(top).clone();
        let range = e.add_docs(vec![copy]);
        let readded = e.search(&Query::Scan(term), &options).unwrap();
        assert!(
            readded.hits.iter().any(|h| h.doc == range.start),
            "re-added doc not served"
        );
    }

    #[test]
    fn diversify_flag_keys_the_cache_separately() {
        let e = engine(2);
        let term = popular_term(&e);
        let on = SearchOptions::new(4).with_tau(0.3);
        let off = on.clone().with_mode(DiversifyMode::None);
        let out_on = e.search(&Query::Scan(term), &on).unwrap();
        let out_off = e.search(&Query::Scan(term), &off).unwrap();
        let stats = e.stats();
        assert_eq!(
            stats.cache_entries, 2,
            "diversify on/off must be distinct cache entries"
        );
        assert_eq!(stats.cache_hits, 0);
        // The off path is plain top-k: total score is an upper bound on
        // the diversified total for the same query.
        assert!(out_off.total_score.get() >= out_on.total_score.get() - 1e-9);
        // Repeats of each variant hit their own entry with the right bits.
        assert_eq!(e.search(&Query::Scan(term), &on).unwrap(), out_on);
        assert_eq!(e.search(&Query::Scan(term), &off).unwrap(), out_off);
        assert_eq!(e.stats().cache_hits, 2);
    }

    #[test]
    fn every_mode_parameter_keys_the_cache_separately() {
        // Regression for the mode redesign: two modes — and two λ values
        // of the *same* mode — must never serve each other's cached
        // entry, across both `search` and `search_batch`.
        let e = engine(2);
        let term = popular_term(&e);
        let variants: Vec<SearchOptions> = [
            DiversifyMode::exact(),
            DiversifyMode::None,
            DiversifyMode::mmr(0.95),
            DiversifyMode::mmr(0.05),
            DiversifyMode::window(),
            DiversifyMode::Disc,
            DiversifyMode::knn(),
        ]
        .into_iter()
        .map(|mode| SearchOptions::new(6).with_tau(0.3).with_mode(mode))
        .collect();
        let firsts: Vec<SearchOutput> = variants
            .iter()
            .map(|o| e.search(&Query::Scan(term), o).unwrap())
            .collect();
        let stats = e.stats();
        assert_eq!(stats.cache_entries, variants.len(), "one entry per mode");
        assert_eq!(stats.cache_hits, 0);
        // The two λ values must have produced *different* MMR rankings —
        // otherwise this test can't tell their cache entries apart.
        // λ=0.05 weighs redundancy heavily, λ=0.95 relevance; on the
        // near-dup-rich tiny corpus their orders diverge.
        assert_ne!(firsts[2], firsts[3], "λ must change the MMR output");
        // Repeat every variant through the single-query path: each hits
        // exactly its own entry, bit-identical.
        for (options, first) in variants.iter().zip(&firsts) {
            assert_eq!(&e.search(&Query::Scan(term), options).unwrap(), first);
        }
        assert_eq!(e.stats().cache_hits, variants.len() as u64);
        // And through the batch path: one batch carrying every variant of
        // the same query — each entry must resolve to its own cache slot.
        let batch: Vec<(Query, SearchOptions)> = variants
            .iter()
            .map(|o| (Query::Scan(term), o.clone()))
            .collect();
        for (got, first) in e.search_batch(&batch).iter().zip(&firsts) {
            assert_eq!(got.as_ref().unwrap(), first);
        }
        assert_eq!(e.stats().cache_hits, 2 * variants.len() as u64);
    }

    #[test]
    fn search_uncached_bypasses_but_matches_the_cached_path() {
        let e = engine(2);
        let term = popular_term(&e);
        let options = SearchOptions::new(4).with_tau(0.5);
        let a = e.search_uncached(&Query::Scan(term), &options).unwrap();
        let b = e.search_uncached(&Query::Scan(term), &options).unwrap();
        assert_eq!(a, b, "uncached path must be deterministic");
        let stats = e.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(
            (stats.cache_hits, stats.cache_misses, stats.cache_entries),
            (0, 0, 0),
            "uncached searches must not touch the cache"
        );
        // Same answer as the cached path, and admission still rejects.
        assert_eq!(e.search(&Query::Scan(term), &options).unwrap(), a);
        assert!(matches!(
            e.search_uncached(&Query::Scan(term), &SearchOptions::new(0)),
            Err(SearchError::InvalidK { k: 0 })
        ));
        let bogus = e.corpus().num_terms() as TermId;
        assert!(matches!(
            e.search_uncached(&Query::Scan(bogus), &SearchOptions::new(2)),
            Err(SearchError::UnknownTerm { .. })
        ));
    }

    /// The satellite bugfix pinned as a unit test: cache probes resolve
    /// the generation per query, so a mutation between two identical
    /// queries (or mid-batch) can never serve a pre-mutation result
    /// post-mutation.
    #[test]
    fn cache_cannot_serve_across_generations() {
        let e = engine(2);
        let term = popular_term(&e);
        let options = SearchOptions::new(4).with_tau(0.5);
        let batch: Vec<(Query, SearchOptions)> = vec![(Query::Scan(term), options.clone()); 3];
        let first = e.search_batch(&batch);
        let hits_before = e.stats().cache_hits;
        assert!(hits_before >= 1, "duplicates must hit within a generation");
        let top = first[0].as_ref().unwrap().hits[0].doc;
        e.delete_docs(&[top]);
        // Same batch again: the old generation's entry is unreachable, so
        // the first probe misses, recomputes against the new snapshot, and
        // only *then* duplicates hit again.
        let second = e.search_batch(&batch);
        for out in &second {
            let out = out.as_ref().unwrap();
            assert!(
                out.hits.iter().all(|h| h.doc != top),
                "post-mutation query served a pre-mutation cached result"
            );
        }
        let stats = e.stats();
        assert_eq!(
            stats.cache_insertions, 2,
            "one computation per generation, duplicates single-flighted"
        );
    }
}
