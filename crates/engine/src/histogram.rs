//! Lock-free log-linear latency histograms for the serving tier's stats
//! endpoint (p50/p95/p99 without storing samples).
//!
//! The bucket layout is the usual HDR-style compromise: below
//! [`LatencyHistogram::LINEAR_MAX_NS`] every nanosecond value maps to one
//! shared "tiny" bucket (sub-microsecond latencies are noise for a
//! serving stack); above it, each power-of-two octave is split into
//! [`LatencyHistogram::SUB_BUCKETS`] linear sub-buckets, giving a
//! guaranteed relative quantile error ≤ 1/SUB_BUCKETS (12.5%) across the
//! whole range up to ~69 s, in a few hundred fixed `AtomicU64`s. Records
//! are a single relaxed `fetch_add`; quantile reads are a scan.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-size concurrent histogram of nanosecond latencies.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl LatencyHistogram {
    /// Values at or below this (ns) share bucket 0. 1 µs.
    pub const LINEAR_MAX_NS: u64 = 1 << 10;
    /// Linear sub-buckets per power-of-two octave: relative error ≤ 1/8.
    pub const SUB_BUCKETS: u64 = 8;
    /// Largest distinguishable value (~69 s); everything above clamps.
    pub const MAX_NS: u64 = 1 << 36;

    const OCTAVES: u64 = 36 - 10;
    const NUM_BUCKETS: usize = (1 + Self::OCTAVES * Self::SUB_BUCKETS) as usize;

    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: (0..Self::NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    fn bucket_index(ns: u64) -> usize {
        if ns <= Self::LINEAR_MAX_NS {
            return 0;
        }
        let ns = ns.min(Self::MAX_NS);
        // Octave o covers (2^(10+o), 2^(11+o)]; within it, 8 linear
        // steps. Classify by ns-1 so the octave's closed upper endpoint
        // lands inside it (ns ≥ LINEAR_MAX_NS + 1 here, so ns-1 ≥ 2^10).
        let octave = (63 - (ns - 1).leading_zeros() as u64) - 10;
        let base = 1u64 << (10 + octave);
        let step = base / Self::SUB_BUCKETS; // base is ≥ 2^10, divisible
        let sub = ((ns - base - 1) / step).min(Self::SUB_BUCKETS - 1);
        (1 + octave * Self::SUB_BUCKETS + sub) as usize
    }

    /// Upper edge (ns) of the bucket — what quantiles report.
    fn bucket_upper(index: usize) -> u64 {
        if index == 0 {
            return Self::LINEAR_MAX_NS;
        }
        let i = index as u64 - 1;
        let (octave, sub) = (i / Self::SUB_BUCKETS, i % Self::SUB_BUCKETS);
        let base = 1u64 << (10 + octave);
        base + (base / Self::SUB_BUCKETS) * (sub + 1)
    }

    /// Records one latency. Wait-free; safe from any thread.
    pub fn record(&self, ns: u64) {
        // RELAXED: independent monotonic counters; readers (`quantile_ns`,
        // `mean_ns`) are documented to tolerate torn snapshots — the
        // histogram is a monitoring surface, not a synchronization point.
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        // RELAXED: monitoring read — see `record`.
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in ns (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns
            // RELAXED: monitoring read — see `record`.
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// The latency (ns, bucket upper edge — a guaranteed overestimate by
    /// at most 12.5%) at quantile `q ∈ [0, 1]`. Returns 0 when empty.
    ///
    /// Concurrent `record`s may land mid-scan; the answer is then correct
    /// for *some* interleaving of them, which is all a monitoring
    /// endpoint can ask of a lock-free histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let mut counts = vec![0u64; Self::NUM_BUCKETS];
        let mut total = 0u64;
        for (slot, bucket) in counts.iter_mut().zip(&self.buckets) {
            // RELAXED: monitoring read — see `record`.
            *slot = bucket.load(Ordering::Relaxed);
            total += *slot;
        }
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_upper(index);
            }
        }
        Self::MAX_NS
    }
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_self_consistent() {
        let mut last = 0usize;
        for ns in (0..64u64).chain((10..36).flat_map(|o| {
            let base = 1u64 << o;
            [base, base + 1, base + base / 2, base * 2 - 1]
        })) {
            let index = LatencyHistogram::bucket_index(ns);
            assert!(index >= last || ns <= LatencyHistogram::LINEAR_MAX_NS);
            last = last.max(index);
            // The bucket's upper edge must not undercut the value by
            // more than the promised relative error.
            let upper = LatencyHistogram::bucket_upper(index);
            assert!(upper >= ns.min(LatencyHistogram::MAX_NS), "ns {ns}");
            if ns > LatencyHistogram::LINEAR_MAX_NS {
                assert!((upper as f64) <= ns as f64 * 1.25, "ns {ns} upper {upper}");
            }
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = LatencyHistogram::new();
        // 1000 samples spread uniformly over [1 ms, 2 ms).
        for i in 0..1000u64 {
            h.record(1_000_000 + i * 1_000);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_ns(0.50) as f64;
        let p99 = h.quantile_ns(0.99) as f64;
        assert!((1.4e6..=1.8e6).contains(&p50), "p50 {p50}");
        assert!((1.9e6..=2.4e6).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
        let mean = h.mean_ns() as f64;
        assert!((1.4e6..=1.6e6).contains(&mean), "mean {mean}");
    }

    /// Exact quantile with the same rank convention as `quantile_ns`
    /// (rank = ceil(q·n), 1-based), against the raw samples.
    fn exact_quantile(samples: &mut [u64], q: f64) -> u64 {
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
        samples[rank - 1]
    }

    /// The documented accuracy contract, checked directly: for every
    /// distribution the reported quantile is ≥ the exact one (bucket
    /// upper edge — never an underestimate) and overshoots by at most
    /// 1/SUB_BUCKETS = 12.5%.
    fn assert_quantile_bound(samples: &[u64]) {
        let h = LatencyHistogram::new();
        for &ns in samples {
            h.record(ns);
        }
        let mut sorted = samples.to_vec();
        for q in [0.50, 0.95, 0.99] {
            let exact = exact_quantile(&mut sorted, q);
            let reported = h.quantile_ns(q);
            assert!(
                reported >= exact,
                "q={q}: reported {reported} < exact {exact}"
            );
            // Below LINEAR_MAX_NS everything shares bucket 0 whose upper
            // edge is LINEAR_MAX_NS itself; the relative bound only
            // applies above it.
            let ceiling = (exact as f64 * 1.125).max(LatencyHistogram::LINEAR_MAX_NS as f64);
            assert!(
                reported as f64 <= ceiling,
                "q={q}: reported {reported} > 1.125 × exact {exact}"
            );
        }
    }

    #[test]
    fn quantile_error_bound_uniform_distribution() {
        // Uniform over [2 µs, 10 ms): p50 ≈ 5 ms, p99 ≈ 9.9 ms.
        let samples: Vec<u64> = (0..10_000u64).map(|i| 2_000 + i * 1_000).collect();
        assert_quantile_bound(&samples);
    }

    #[test]
    fn quantile_error_bound_heavy_tail() {
        // Zipf-ish heavy tail spanning four decades: latency grows as
        // 10 µs / (1 - u)^2, capped at 1 s — p99 lands ~10000× above p50.
        let samples: Vec<u64> = (0..20_000u64)
            .map(|i| {
                let u = i as f64 / 20_000.0;
                ((10_000.0 / (1.0 - u).powi(2)) as u64).min(1_000_000_000)
            })
            .collect();
        assert_quantile_bound(&samples);
    }

    #[test]
    fn quantile_error_bound_bimodal() {
        // 90% fast mode around 5 µs, 10% slow mode around 80 ms — the
        // cache-hit/cache-miss shape the serving tier actually produces.
        // p50 sits in the fast mode, p95/p99 in the slow one.
        let mut samples = Vec::new();
        for i in 0..9_000u64 {
            samples.push(4_000 + (i % 2_000));
        }
        for i in 0..1_000u64 {
            samples.push(60_000_000 + i * 40_000);
        }
        assert_quantile_bound(&samples);
    }

    #[test]
    fn quantile_error_bound_exponential_spacing() {
        // Log-spaced samples hitting every octave from 2 µs to ~34 s:
        // exercises the bound across the histogram's full dynamic range.
        let samples: Vec<u64> = (0..24u32)
            .flat_map(|o| {
                let base = 1u64 << (11 + o);
                (0..16u64).map(move |s| base + s * (base / 16))
            })
            .collect();
        assert_quantile_bound(&samples);
    }

    #[test]
    fn empty_and_extreme_values_are_safe() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.mean_ns(), 0);
        h.record(0);
        h.record(u64::MAX); // clamps, no panic
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ns(1.0) >= LatencyHistogram::MAX_NS);
    }
}
