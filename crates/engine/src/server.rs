//! The TCP serving layer: thread-per-connection framing, a bounded
//! admission queue with **typed backpressure** in front of a fixed search
//! worker pool, per-endpoint latency histograms, and graceful
//! snapshot-swap reloads (DESIGN.md §11).
//!
//! ## Admission and backpressure
//!
//! Search is the only expensive endpoint, so it is the only queued one:
//! a connection thread decodes the frame and `try_push`es a job onto a
//! bounded queue drained by `workers` dedicated threads. A full queue is
//! answered **immediately** with [`Response::Overloaded`] — the client
//! gets a typed signal to back off, never a hang, and the server's
//! concurrent search load is hard-capped at `workers + queue_capacity`
//! regardless of how many connections pile on. Ping/stats/reload are
//! answered inline on the connection thread (they are cheap and must
//! stay responsive *especially* under search overload — that is when an
//! operator needs the stats endpoint most).
//!
//! ## Failure containment
//!
//! A malformed frame yields a typed error response; if the failure broke
//! framing (truncation, oversized prefix, transport error) the
//! connection is closed after the response, otherwise it keeps serving.
//! Either way the *server* keeps serving — a hostile or buggy client can
//! never take down the process (`tests/serving.rs` drives this).

use crate::engine::{Engine, Query};
use crate::histogram::LatencyHistogram;
use crate::proto::{self, ErrorCode, ProtoError, Request, Response, StatsReport, WireHits};
use divtopk_core::sync::{lock_unpoisoned, wait_unpoisoned};
use divtopk_text::search::{SearchOptions, SearchOutput};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server deployment configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Dedicated search worker threads; 0 = one per available CPU.
    pub workers: usize,
    /// Bounded admission-queue depth; a full queue rejects with
    /// [`Response::Overloaded`]. Must be ≥ 1.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    /// Auto-sized workers, a 64-deep admission queue.
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            queue_capacity: 64,
        }
    }
}

/// Serving counters shared with the stats endpoint.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Frames accepted across all endpoints.
    pub requests: AtomicU64,
    /// Search requests rejected by backpressure.
    pub overloaded: AtomicU64,
    /// Frames that failed to decode.
    pub protocol_errors: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Search latency (decode → response encoded), nanoseconds.
    pub search_latency: LatencyHistogram,
}

struct SearchJob {
    query: Query,
    options: SearchOptions,
    started: Instant,
    slot: Arc<ResponseSlot>,
}

#[derive(Default)]
struct ResponseSlot {
    result: Mutex<Option<Result<(SearchOutput, u64), String>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn fill(&self, value: Result<(SearchOutput, u64), String>) {
        *lock_unpoisoned(&self.result) = Some(value);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<(SearchOutput, u64), String> {
        let mut guard = lock_unpoisoned(&self.result);
        loop {
            if let Some(value) = guard.take() {
                return value;
            }
            guard = wait_unpoisoned(&self.ready, guard);
        }
    }
}

struct ServerShared {
    engine: Arc<Engine>,
    metrics: ServerMetrics,
    queue: Mutex<VecDeque<SearchJob>>,
    queue_capacity: usize,
    queue_ready: Condvar,
    shutdown: AtomicBool,
    /// Live connection streams, so shutdown can unblock their reads.
    connections: Mutex<Vec<TcpStream>>,
}

impl ServerShared {
    /// Bounded, non-blocking admission: `Err` is the backpressure signal.
    /// The rejected job rides back in the `Err` so the connection thread
    /// can answer `Overloaded` on its stream — hence the large variant.
    #[allow(clippy::result_large_err)]
    fn try_enqueue(&self, job: SearchJob) -> Result<(), SearchJob> {
        let mut queue = lock_unpoisoned(&self.queue);
        if self.shutdown.load(Ordering::Acquire) || queue.len() >= self.queue_capacity {
            return Err(job);
        }
        queue.push_back(job);
        drop(queue);
        self.queue_ready.notify_one();
        Ok(())
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = lock_unpoisoned(&self.queue);
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    queue = wait_unpoisoned(&self.queue_ready, queue);
                }
            };
            let generation = self.engine.generation();
            let result = self
                .engine
                .search(&job.query, &job.options)
                .map(|out| (out, generation))
                .map_err(|e| e.to_string());
            self.metrics
                .search_latency
                .record(job.started.elapsed().as_nanos() as u64);
            job.slot.fill(result);
        }
    }

    fn stats_report(&self) -> StatsReport {
        let engine = self.engine.stats();
        let corpus = self.engine.corpus();
        let hist = &self.metrics.search_latency;
        StatsReport {
            generation: engine.generation,
            segments: engine.segments as u32,
            configured_shards: engine.configured_shards as u32,
            layout_from_snapshot: engine.layout_from_snapshot,
            num_docs: corpus.num_docs() as u64,
            num_terms: corpus.num_terms() as u32,
            queries: engine.queries,
            rejected: engine.rejected,
            cache_hits: engine.cache_hits,
            cache_misses: engine.cache_misses,
            tombstones: engine.tombstones as u64,
            parallel_pulls: engine.parallel_pulls,
            // RELAXED: diagnostics-only counter snapshot — each counter
            // is monotonic and a torn multi-counter view is fine.
            requests: self.metrics.requests.load(Ordering::Relaxed),
            overloaded: self.metrics.overloaded.load(Ordering::Relaxed),
            protocol_errors: self.metrics.protocol_errors.load(Ordering::Relaxed),
            search_count: hist.count(),
            search_p50_ns: hist.quantile_ns(0.50),
            search_p95_ns: hist.quantile_ns(0.95),
            search_p99_ns: hist.quantile_ns(0.99),
            search_mean_ns: hist.mean_ns(),
        }
    }

    /// Serves one connection until close, shutdown, or a framing break.
    /// On exit the socket is shut down explicitly: the tracked clone in
    /// `connections` keeps the fd alive until the next prune, so without
    /// this the peer would not see FIN until server shutdown.
    fn serve_connection(&self, stream: TcpStream) {
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        self.serve_frames(&mut writer, BufReader::new(stream));
        let _ = writer.shutdown(Shutdown::Both);
    }

    fn serve_frames(&self, writer: &mut TcpStream, mut reader: BufReader<TcpStream>) {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let frame = match proto::read_frame(&mut reader) {
                Ok(Some(frame)) => frame,
                Ok(None) => return, // clean close
                Err(error) => {
                    // RELAXED: monotonic metrics counter (see stats_report).
                    self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    // Best-effort typed report; the stream may be gone.
                    let _ = proto::write_frame(
                        writer,
                        &proto::encode_response(&Response::Error {
                            code: ErrorCode::Protocol,
                            message: error.to_string(),
                        }),
                    );
                    // Framing is lost (truncation/oversize/transport):
                    // nothing after this point can be parsed — close.
                    return;
                }
            };
            let response = match proto::decode_request(&frame) {
                Ok(request) => {
                    // RELAXED: monotonic metrics counter (see stats_report).
                    self.metrics.requests.fetch_add(1, Ordering::Relaxed);
                    self.handle(request)
                }
                Err(error) => {
                    // The frame boundary held; only this message was bad.
                    // Report and keep serving the connection.
                    // RELAXED: monotonic metrics counter (see stats_report).
                    self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: error.to_string(),
                    }
                }
            };
            if let Err(error) = proto::write_frame(writer, &proto::encode_response(&response)) {
                if !matches!(error, ProtoError::Io(_)) {
                    // LINT-ALLOW(panic): encode_response produced the frame,
                    // so every non-I/O write error (oversize, truncation) is
                    // impossible by construction; reaching this arm means the
                    // framing layer itself is broken — a bug, not a state.
                    unreachable!("frame writes only fail on I/O");
                }
                return;
            }
        }
    }

    fn handle(&self, request: Request) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(self.stats_report()),
            Request::Reload { path } => match self.engine.reload_snapshot(&path) {
                Ok(generation) => Response::Reloaded { generation },
                Err(error) => Response::Error {
                    code: ErrorCode::Search,
                    message: error.to_string(),
                },
            },
            Request::Search {
                query,
                k,
                tau,
                bound_decay,
                mode,
            } => {
                // The decode layer already rejected unknown selectors and
                // out-of-range mode parameters; engine admission
                // re-validates (`SearchOptions::validate`) so a mode built
                // programmatically gets the same checks as one off the
                // wire.
                let options = SearchOptions::new(k as usize)
                    .with_tau(tau)
                    .with_bound_decay(bound_decay)
                    .with_mode(mode);
                let slot = Arc::new(ResponseSlot::default());
                let job = SearchJob {
                    query,
                    options,
                    started: Instant::now(),
                    slot: Arc::clone(&slot),
                };
                if self.try_enqueue(job).is_err() {
                    // RELAXED: monotonic metrics counter (see stats_report).
                    self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
                    return Response::Overloaded {
                        queue_capacity: self.queue_capacity as u32,
                    };
                }
                match slot.wait() {
                    Ok((out, generation)) => Response::Hits(WireHits {
                        generation,
                        hits: out.hits.iter().map(|h| (h.doc, h.score.get())).collect(),
                        total_score: out.total_score.get(),
                        results_generated: out.metrics.results_generated,
                        early_stopped: out.metrics.early_stopped,
                    }),
                    Err(message) => Response::Error {
                        code: ErrorCode::Search,
                        message,
                    },
                }
            }
        }
    }
}

/// A running server. Dropping the handle shuts it down and joins every
/// thread; [`Server::shutdown`] does the same explicitly.
#[derive(Debug)]
pub struct Server {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerShared")
            .field("queue_capacity", &self.queue_capacity)
            .finish()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor, the connection threads, and `config.workers` search
    /// workers around `engine`.
    pub fn start(engine: Arc<Engine>, addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        assert!(config.queue_capacity >= 1, "admission queue needs depth");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        };
        let shared = Arc::new(ServerShared {
            engine,
            metrics: ServerMetrics::default(),
            queue: Mutex::new(VecDeque::new()),
            queue_capacity: config.queue_capacity,
            queue_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            connections: Mutex::new(Vec::new()),
        });
        let mut threads = Vec::new();
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("divtopk-search-{i}"))
                    .spawn(move || shared.worker_loop())
                    // LINT-ALLOW(panic): worker threads spawn once at server
                    // construction, before any request is accepted — fail
                    // fast on OS resource exhaustion.
                    .expect("spawn search worker"),
            );
        }
        let acceptor_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("divtopk-accept".to_owned())
                .spawn(move || {
                    let mut connection_threads = Vec::new();
                    for stream in listener.incoming() {
                        if acceptor_shared.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // The tracked clone is what lets shutdown unblock
                        // this connection's read; without it the thread
                        // could block forever, so refuse to serve.
                        let Ok(tracked) = stream.try_clone() else {
                            continue;
                        };
                        // RELAXED: monotonic metrics counter.
                        acceptor_shared
                            .metrics
                            .connections
                            .fetch_add(1, Ordering::Relaxed);
                        {
                            let mut connections = lock_unpoisoned(&acceptor_shared.connections);
                            // Prune finished connections opportunistically
                            // so a long-lived server doesn't hoard fds.
                            connections.retain(|c| c.take_error().is_ok() && peer_alive(c));
                            connections.push(tracked);
                        }
                        let conn_shared = Arc::clone(&acceptor_shared);
                        connection_threads.push(
                            std::thread::Builder::new()
                                .name("divtopk-conn".to_owned())
                                .spawn(move || conn_shared.serve_connection(stream))
                                // LINT-ALLOW(panic): see "spawn search worker"
                                // above — accept-time resource exhaustion is a
                                // fatal configuration problem, not a request
                                // error this connection could report.
                                .expect("spawn connection thread"),
                        );
                    }
                    for thread in connection_threads {
                        let _ = thread.join();
                    }
                })
                // LINT-ALLOW(panic): as for the worker spawns above.
                .expect("spawn acceptor"),
        );
        Ok(Server {
            shared,
            addr,
            threads,
        })
    }

    /// The bound address (resolve the ephemeral port here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live serving counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Graceful shutdown: stop admitting, unblock every connection and
    /// worker, join all threads. In-queue searches finish; clients see
    /// their connections close. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the workers: they drain the admission queue first (every
        // already-accepted search still gets its answer slot filled, so
        // no connection thread is left waiting), then observe the flag
        // and exit.
        self.shared.queue_ready.notify_all();
        // Unblock connection reads.
        for stream in lock_unpoisoned(&self.shared.connections).drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Unblock the acceptor with a wake-up connection.
        let _ = TcpStream::connect(self.addr);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// Cheap liveness probe used only for opportunistic pruning of the
/// tracked-connection list (false negatives just delay pruning).
fn peer_alive(stream: &TcpStream) -> bool {
    stream.peer_addr().is_ok()
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use divtopk_text::mode::DiversifyMode;
    use divtopk_text::synth::{SynthConfig, generate};

    fn test_server() -> Server {
        let corpus = generate(&SynthConfig {
            num_docs: 120,
            ..SynthConfig::tiny()
        });
        let engine = Arc::new(Engine::new(corpus, EngineConfig::new(2).with_threads(1)));
        Server::start(
            engine,
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                queue_capacity: 8,
            },
        )
        .unwrap()
    }

    fn call(stream: &mut TcpStream, request: &Request) -> Response {
        proto::write_frame(stream, &proto::encode_request(request).unwrap()).unwrap();
        let frame = proto::read_frame(stream).unwrap().expect("server closed");
        proto::decode_response(&frame).unwrap()
    }

    #[test]
    fn ping_search_stats_roundtrip() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        assert_eq!(call(&mut stream, &Request::Ping), Response::Pong);
        let response = call(
            &mut stream,
            &Request::Search {
                query: Query::Scan(0),
                k: 3,
                tau: 0.5,
                bound_decay: 0.005,
                mode: DiversifyMode::exact(),
            },
        );
        let Response::Hits(hits) = response else {
            panic!("expected hits, got {response:?}");
        };
        assert!(hits.hits.len() <= 3);
        let Response::Stats(stats) = call(&mut stream, &Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.search_count, 1);
        assert!(stats.num_terms > 0);
    }

    #[test]
    fn search_errors_are_typed_not_fatal() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let response = call(
            &mut stream,
            &Request::Search {
                query: Query::Scan(u32::MAX),
                k: 3,
                tau: 0.5,
                bound_decay: 0.005,
                mode: DiversifyMode::exact(),
            },
        );
        assert!(matches!(
            response,
            Response::Error {
                code: ErrorCode::Search,
                ..
            }
        ));
        // The connection keeps serving.
        assert_eq!(call(&mut stream, &Request::Ping), Response::Pong);
    }

    #[test]
    fn shutdown_joins_cleanly_with_open_connections() {
        let mut server = test_server();
        let stream = TcpStream::connect(server.addr()).unwrap();
        server.shutdown();
        drop(stream);
        server.shutdown(); // idempotent
    }
}
