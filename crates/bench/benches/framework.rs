//! End-to-end framework benches: the full `div-search` loop (pulls,
//! similarity checks, gated inner searches, early stop) over both source
//! kinds on a small synthetic corpus.

use criterion::{Criterion, criterion_group, criterion_main};
use divtopk_core::ExactAlgorithm;
use divtopk_text::prelude::*;
use std::hint::black_box;

fn setup() -> (Corpus, InvertedIndex, TermId, KeywordQuery) {
    let corpus = generate(&SynthConfig::tiny().with_num_docs(2_000));
    let index = InvertedIndex::build(&corpus);
    let term = (0..corpus.num_terms() as TermId)
        .filter(|&t| corpus.doc_freq(t) as usize <= corpus.num_docs() / 10)
        .max_by_key(|&t| index.postings(t).len())
        .expect("non-empty corpus");
    let query = query_for_band(&corpus, 2, 2, 5).expect("band 2 populated");
    (corpus, index, term, query)
}

fn bench_framework(c: &mut Criterion) {
    let (corpus, index, term, query) = setup();
    let searcher = DiversifiedSearcher::new(&corpus, &index);
    let mut group = c.benchmark_group("framework");
    group.sample_size(20);

    group.bench_function("scan_k10_cut", |b| {
        b.iter(|| {
            black_box(
                searcher
                    .search_scan(term, &SearchOptions::new(10).with_tau(0.6))
                    .unwrap()
                    .total_score,
            )
        })
    });
    group.bench_function("ta_k10_cut", |b| {
        b.iter(|| {
            black_box(
                searcher
                    .search_ta(&query, &SearchOptions::new(10).with_tau(0.6))
                    .unwrap()
                    .total_score,
            )
        })
    });
    group.bench_function("scan_k10_dp", |b| {
        b.iter(|| {
            black_box(
                searcher
                    .search_scan(
                        term,
                        &SearchOptions::new(10)
                            .with_tau(0.6)
                            .with_mode(DiversifyMode::Exact(ExactAlgorithm::Dp)),
                    )
                    .unwrap()
                    .total_score,
            )
        })
    });
    // The bound-decay throttle's effect on end-to-end latency.
    group.bench_function("scan_k50_cut_decay0.01", |b| {
        b.iter(|| {
            black_box(
                searcher
                    .search_scan(
                        term,
                        &SearchOptions::new(50).with_tau(0.6).with_bound_decay(0.01),
                    )
                    .unwrap()
                    .total_score,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_framework);
criterion_main!(benches);
