//! Micro-benchmarks for the graph substrates: components, Tarjan cut
//! points, Lemma 7 compression, and induced-subgraph extraction.

use criterion::{BenchmarkId, Criterion, criterion_group, criterion_main};
use divtopk_core::components::connected_components;
use divtopk_core::compress::compress;
use divtopk_core::cutpoints::articulation_points;
use divtopk_core::testgen::{self, ClusterConfig};
use std::hint::black_box;

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    for n in [1_000usize, 10_000] {
        let g = testgen::random_graph(n, 2.0 / n as f64, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(connected_components(g)))
        });
    }
    group.finish();
}

fn bench_cutpoints(c: &mut Criterion) {
    let mut group = c.benchmark_group("tarjan");
    for n in [1_000usize, 10_000, 100_000] {
        let g = testgen::path_graph(n, 5);
        group.bench_with_input(BenchmarkId::new("path", n), &g, |b, g| {
            b.iter(|| black_box(articulation_points(g)))
        });
    }
    let g = testgen::planted_clusters(&ClusterConfig::default(), 3);
    group.bench_function("clusters", |b| {
        b.iter(|| black_box(articulation_points(&g)))
    });
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    for n in [200usize, 1_000] {
        let g = testgen::random_graph(n, 4.0 / n as f64, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(compress(g)))
        });
    }
    group.finish();
}

fn bench_subgraph(c: &mut Criterion) {
    let g = testgen::random_graph(10_000, 0.0005, 2);
    let keep: Vec<u32> = (0..5_000).map(|i| i * 2).collect();
    c.bench_function("induced_subgraph/half_of_10k", |b| {
        b.iter(|| black_box(g.induced_subgraph(&keep)))
    });
}

criterion_group!(
    benches,
    bench_components,
    bench_cutpoints,
    bench_compress,
    bench_subgraph
);
criterion_main!(benches);
