//! Ablation benches for the design choices called out in DESIGN.md §6:
//!
//! * AB1 — Lemma 7 compression on/off inside `div-cut`
//! * AB2 — cptree root/child selection heuristics
//! * AB3 — the `necessary()` gate on/off in the framework
//! * AB4 — A\* heap reuse across `k'` rounds on/off
//! * AB5 — the bitset kernel vs the sorted-vec/stamp kernel in `div-astar`

use criterion::{Criterion, criterion_group, criterion_main};
use divtopk_core::astar::{AStarConfig, KernelMode, div_astar_configured};
use divtopk_core::cut::{ChildHeuristic, CutConfig, RootHeuristic, div_cut_configured};
use divtopk_core::prelude::*;
use divtopk_core::testgen::{self, ClusterConfig};
use std::hint::black_box;

fn graph() -> DiversityGraph {
    testgen::planted_clusters(
        &ClusterConfig {
            clusters: 10,
            cluster_size: 8,
            intra_p: 0.65,
            bridges: 8,
            singletons: 15,
        },
        13,
    )
}

fn ab1_compression(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("ab1_compression");
    for (label, compress) in [("on", true), ("off", false)] {
        let config = CutConfig {
            compress,
            ..CutConfig::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(div_cut_configured(&g, 20, &config, &SearchLimits::unlimited()).unwrap())
            })
        });
    }
    group.finish();
}

fn ab2_heuristics(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("ab2_heuristics");
    let variants: [(&str, RootHeuristic, ChildHeuristic); 3] = [
        (
            "paper(minmax+largest)",
            RootHeuristic::MinMaxComponent,
            ChildHeuristic::LargestEntryGraph,
        ),
        (
            "pseudocode(smallest)",
            RootHeuristic::MinMaxComponent,
            ChildHeuristic::SmallestEntryGraph,
        ),
        ("first", RootHeuristic::First, ChildHeuristic::First),
    ];
    for (label, root, child) in variants {
        let config = CutConfig {
            root_heuristic: root,
            child_heuristic: child,
            ..CutConfig::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(div_cut_configured(&g, 20, &config, &SearchLimits::unlimited()).unwrap())
            })
        });
    }
    group.finish();
}

fn ab3_necessary_gate(c: &mut Criterion) {
    // Streamed items with cluster similarity; gate on vs off.
    let mut rng = divtopk_core::rng::Pcg::new(21);
    let items: Vec<Scored<(u32, u32)>> = (0..300u32)
        .map(|i| Scored::new((i, rng.below(40)), Score::from(rng.range(1, 10_000))))
        .collect();
    let similar = |a: &(u32, u32), b: &(u32, u32)| a.1 == b.1;
    let mut group = c.benchmark_group("ab3_necessary_gate");
    group.sample_size(20);
    for (label, gate) in [("on", true), ("off", false)] {
        let items = items.clone();
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut config = DivSearchConfig::new(10);
                config.use_necessary_gate = gate;
                let out = DivTopK::new(
                    IncrementalVecSource::from_unsorted(items.clone()),
                    similar,
                    config,
                )
                .run()
                .unwrap();
                black_box(out.total_score)
            })
        });
    }
    group.finish();
}

fn ab4_heap_reuse(c: &mut Criterion) {
    let g = testgen::random_graph(22, 0.25, 3);
    let mut group = c.benchmark_group("ab4_heap_reuse");
    group.sample_size(20);
    for (label, reuse) in [("on", true), ("off", false)] {
        let config = AStarConfig {
            reuse_heap: reuse,
            ..AStarConfig::new()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let (r, _) =
                    div_astar_configured(&g, 12, &config, &SearchLimits::unlimited()).unwrap();
                black_box(r.best().score())
            })
        });
    }
    group.finish();
}

fn ab5_kernel(c: &mut Criterion) {
    // Dense near-duplicate clusters: the shape where independence checks
    // dominate and the word-level kernel pays off (DESIGN.md §7).
    let g = testgen::planted_clusters(
        &ClusterConfig {
            clusters: 6,
            cluster_size: 18,
            intra_p: 0.9,
            bridges: 6,
            singletons: 6,
        },
        17,
    );
    let mut group = c.benchmark_group("ab5_kernel");
    group.sample_size(20);
    for (label, kernel) in [
        ("bitset", KernelMode::Dense),
        ("sorted-vec", KernelMode::Sparse),
    ] {
        let config = AStarConfig {
            kernel,
            ..AStarConfig::new()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let (r, _) =
                    div_astar_configured(&g, 16, &config, &SearchLimits::unlimited()).unwrap();
                black_box(r.best().score())
            })
        });
    }
    group.finish();
}

fn ab6_component_cache(c: &mut Criterion) {
    let mut rng = divtopk_core::rng::Pcg::new(33);
    let items: Vec<Scored<(u32, u32)>> = (0..400u32)
        .map(|i| Scored::new((i, rng.below(60)), Score::from(rng.range(1, 10_000))))
        .collect();
    let similar = |a: &(u32, u32), b: &(u32, u32)| a.1 == b.1;
    let mut group = c.benchmark_group("ab6_component_cache");
    group.sample_size(20);
    for (label, cached) in [("on", true), ("off", false)] {
        let items = items.clone();
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut config = DivSearchConfig::new(15);
                if cached {
                    config = config.with_component_cache();
                }
                let out = DivTopK::new(
                    IncrementalVecSource::from_unsorted(items.clone()),
                    similar,
                    config,
                )
                .run()
                .unwrap();
                black_box(out.total_score)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ab1_compression,
    ab2_heuristics,
    ab3_necessary_gate,
    ab4_heap_reuse,
    ab5_kernel,
    ab6_component_cache
);
criterion_main!(benches);
