//! Micro-benchmarks for the text substrate: corpus generation, index
//! build, the two result sources, and the similarity kernel.

use criterion::{Criterion, criterion_group, criterion_main};
use divtopk_core::ResultSource;
use divtopk_text::prelude::*;
use std::hint::black_box;

fn small_corpus() -> (Corpus, InvertedIndex) {
    let corpus = generate(&SynthConfig::tiny().with_num_docs(2_000));
    let index = InvertedIndex::build(&corpus);
    (corpus, index)
}

fn bench_generate_and_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    group.bench_function("generate_2k_docs", |b| {
        b.iter(|| black_box(generate(&SynthConfig::tiny().with_num_docs(2_000))))
    });
    let corpus = generate(&SynthConfig::tiny().with_num_docs(2_000));
    group.bench_function("index_2k_docs", |b| {
        b.iter(|| black_box(InvertedIndex::build(&corpus)))
    });
    group.finish();
}

fn bench_tokenize(c: &mut Criterion) {
    let text = "The quick brown fox, having JUMPED over 42 lazy dogs, \
                proceeded to write a benchmark harness in Rust!"
        .repeat(20);
    c.bench_function("tokenize/2kB", |b| b.iter(|| black_box(tokenize(&text))));
}

fn bench_sources(c: &mut Criterion) {
    let (corpus, index) = small_corpus();
    // Two mid-frequency terms.
    let terms: Vec<TermId> = (0..corpus.num_terms() as TermId)
        .filter(|&t| (50..300).contains(&index.postings(t).len()))
        .take(2)
        .collect();
    assert_eq!(terms.len(), 2, "need two mid-frequency terms");

    c.bench_function("source/scan_drain", |b| {
        b.iter(|| {
            let mut src = ScanSource::new(&index, terms[0]);
            let mut n = 0;
            while src.next_result().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    c.bench_function("source/ta_drain_2_terms", |b| {
        b.iter(|| {
            let mut src = TaSource::new(&corpus, &index, &terms);
            let mut n = 0;
            while src.next_result().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_jaccard(c: &mut Criterion) {
    let (corpus, _) = small_corpus();
    let d1 = corpus.doc(0);
    let d2 = corpus.doc(1);
    c.bench_function("jaccard/full_merge", |b| {
        b.iter(|| black_box(weighted_jaccard(&corpus, d1, d2)))
    });
    let idf = corpus.idf_table();
    let w1 = divtopk_text::jaccard::total_weight(idf, d1);
    let w2 = divtopk_text::jaccard::total_weight(idf, d2);
    c.bench_function("jaccard/prefiltered_predicate", |b| {
        b.iter(|| {
            black_box(divtopk_text::jaccard::similar_above(
                idf, d1, w1, d2, w2, 0.6,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_generate_and_index,
    bench_tokenize,
    bench_sources,
    bench_jaccard
);
criterion_main!(benches);
