//! Micro-benchmarks: the three exact algorithms + greedy on the planted
//! cluster family (the shape of real diversity graphs) and on paths.

use criterion::{BenchmarkId, Criterion, criterion_group, criterion_main};
use divtopk_core::prelude::*;
use divtopk_core::testgen::{self, ClusterConfig};
use std::hint::black_box;

fn cluster_graph(clusters: usize, seed: u64) -> DiversityGraph {
    testgen::planted_clusters(
        &ClusterConfig {
            clusters,
            cluster_size: 10,
            intra_p: 0.7,
            bridges: clusters / 2,
            singletons: clusters * 2,
        },
        seed,
    )
}

fn bench_exact_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact");
    group.sample_size(20);
    for clusters in [4usize, 8, 16] {
        let g = cluster_graph(clusters, 7);
        let k = 20;
        group.bench_with_input(BenchmarkId::new("div-dp", clusters), &g, |b, g| {
            b.iter(|| black_box(div_dp(g, k)))
        });
        group.bench_with_input(BenchmarkId::new("div-cut", clusters), &g, |b, g| {
            b.iter(|| black_box(div_cut(g, k)))
        });
        if clusters <= 8 {
            group.bench_with_input(BenchmarkId::new("div-astar", clusters), &g, |b, g| {
                b.iter(|| black_box(div_astar(g, k)))
            });
        }
    }
    group.finish();
}

fn bench_paths(c: &mut Criterion) {
    // Path graphs are div-cut's best case (every interior node is a cut
    // point) and div-astar's nightmare.
    let mut group = c.benchmark_group("path");
    group.sample_size(10);
    for n in [64usize, 256] {
        let g = testgen::path_graph(n, 3);
        group.bench_with_input(BenchmarkId::new("div-cut", n), &g, |b, g| {
            b.iter(|| black_box(div_cut(g, 32)))
        });
        group.bench_with_input(BenchmarkId::new("div-dp", n), &g, |b, g| {
            b.iter(|| black_box(div_dp(g, 32)))
        });
    }
    group.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let g = cluster_graph(32, 9);
    c.bench_function("greedy/32_clusters_k50", |b| {
        b.iter(|| black_box(greedy(&g, 50)))
    });
}

criterion_group!(benches, bench_exact_algorithms, bench_paths, bench_greedy);
criterion_main!(benches);
