//! Micro-benchmarks for the `⊕` / `⊗` operators (Algorithms 5–6) across
//! table sizes — the inner loop of `div-dp` and `div-cut`.

use criterion::{BenchmarkId, Criterion, criterion_group, criterion_main};
use divtopk_core::ops::{combine_alternative, combine_disjoint, combine_disjoint_in_place};
use divtopk_core::rng::Pcg;
use divtopk_core::{Score, SearchResult};
use std::hint::black_box;

/// A table with entries at every size 1..=k over ids `base..`.
fn dense_table(k: usize, base: u32, seed: u64) -> SearchResult {
    let mut rng = Pcg::new(seed);
    let mut t = SearchResult::empty(k);
    let mut nodes = Vec::new();
    let mut score = Score::ZERO;
    for i in 0..k {
        nodes.push(base + i as u32);
        score += Score::from(rng.range(1, 100));
        t.offer(nodes.clone(), score);
    }
    t
}

/// A singleton-component table (sizes 0 and 1 only) — the common fold case.
fn singleton_table(base: u32, seed: u64) -> SearchResult {
    let mut rng = Pcg::new(seed);
    let mut t = SearchResult::empty(2048);
    t.offer(vec![base], Score::from(rng.range(1, 100)));
    t
}

fn bench_plus(c: &mut Criterion) {
    let mut group = c.benchmark_group("plus");
    for k in [16usize, 64, 256, 1024] {
        let a = dense_table(k, 0, 1);
        let b = dense_table(k, 10_000, 2);
        group.bench_with_input(BenchmarkId::new("dense_functional", k), &k, |bench, _| {
            bench.iter(|| black_box(combine_disjoint(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("dense_in_place", k), &k, |bench, _| {
            bench.iter(|| {
                let mut acc = a.clone();
                combine_disjoint_in_place(&mut acc, &b);
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_plus_fold(c: &mut Criterion) {
    // Fold 512 singleton components into one k = 2048 accumulator:
    // the div-dp/div-cut hot path at the paper's large-k settings.
    let singles: Vec<SearchResult> = (0..512).map(|i| singleton_table(i, i as u64)).collect();
    c.bench_function("plus/fold_512_singletons_k2048", |bench| {
        bench.iter(|| {
            let mut acc = SearchResult::empty(2048);
            for s in &singles {
                combine_disjoint_in_place(&mut acc, s);
            }
            black_box(acc)
        })
    });
}

fn bench_otimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("otimes");
    for k in [64usize, 1024] {
        let a = dense_table(k, 0, 3);
        let b = dense_table(k, 0, 4);
        group.bench_with_input(BenchmarkId::new("dense", k), &k, |bench, _| {
            bench.iter(|| black_box(combine_alternative(&a, &b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plus, bench_plus_fold, bench_otimes);
criterion_main!(benches);
