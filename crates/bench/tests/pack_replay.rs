//! Property tests on query-pack replay (ISSUE 7 satellite 1): compiling
//! the same pack twice — or once directly and once after a JSON
//! round-trip — must yield byte-identical query sequences, arrival
//! schedules, and mutation scripts; malformed packs must come back as
//! typed [`PackError`]s, never a panic.

use divtopk_bench::load::ArrivalShape;
use divtopk_bench::workload::{
    Arrival, Band, CacheMode, CorpusSpec, Family, Gates, MutationSpec, PackError, QueryPack,
};
use divtopk_text::index::InvertedIndex;
use divtopk_text::prelude::*;
use proptest::prelude::*;

/// One corpus for every case: determinism is a property of `compile`,
/// not of corpus generation (which `generate_labeled` pins separately).
fn fixture() -> (Corpus, InvertedIndex) {
    let spec = CorpusSpec {
        preset: "tiny".to_owned(),
        num_docs: Some(500),
        seed: Some(11),
    };
    let (corpus, _labels) = spec.build().expect("tiny preset builds");
    let index = InvertedIndex::build(&corpus);
    (corpus, index)
}

fn band_strategy() -> impl Strategy<Value = Band> {
    (0u8..3).prop_map(|b| match b {
        0 => Band::Head,
        1 => Band::Torso,
        _ => Band::Tail,
    })
}

fn shape_strategy() -> impl Strategy<Value = ArrivalShape> {
    (0u8..3, 0.1f64..0.9, 1.5f64..8.0).prop_map(|(which, frac, factor)| match which {
        0 => ArrivalShape::Uniform,
        1 => ArrivalShape::Burst {
            factor,
            period_s: 1.0,
            burst_s: frac,
        },
        _ => ArrivalShape::Diurnal {
            amplitude: frac,
            period_s: 2.0,
        },
    })
}

fn mutation_strategy() -> impl Strategy<Value = MutationSpec> {
    (0u8..3, 1usize..4, 1usize..5).prop_map(|(which, events, docs)| match which {
        0 => MutationSpec::None,
        1 => MutationSpec::DeleteStorm {
            events,
            docs_per_event: docs,
        },
        _ => MutationSpec::NeardupFlood {
            events,
            docs_per_event: docs,
        },
    })
}

fn family_strategy(tag: usize) -> impl Strategy<Value = Family> {
    (
        band_strategy(),
        (4usize..24, 1usize..8, 1usize..8),
        (0.0f64..1.5, 0.0f64..1.0, 0.05f64..0.95),
        shape_strategy(),
        mutation_strategy(),
    )
        .prop_map(
            move |(band, (queries, distinct, k), (zipf, ta, tau), shape, mutations)| Family {
                name: format!("fam_{tag}_{}", band.as_str()),
                band,
                queries,
                distinct: distinct.min(queries),
                zipf_exponent: zipf,
                ta_fraction: ta,
                k,
                tau,
                arrival: Arrival { rate: 150.0, shape },
                cache: if queries % 2 == 0 {
                    CacheMode::Normal
                } else {
                    CacheMode::Bypass
                },
                mutations,
                // Canonical modes only: `family_to_value` emits the
                // canonical key, so round-trips are exact.
                mode: match (queries + k) % 5 {
                    0 => DiversifyMode::exact(),
                    1 => DiversifyMode::None,
                    2 => DiversifyMode::mmr(0.7),
                    3 => DiversifyMode::window(),
                    _ => DiversifyMode::knn(),
                },
                gates: Gates::default(),
            },
        )
}

fn pack_strategy() -> impl Strategy<Value = QueryPack> {
    (0u64..1_000_000, family_strategy(0), family_strategy(1)).prop_map(|(seed, f0, f1)| QueryPack {
        name: "prop".to_owned(),
        seed,
        corpus: CorpusSpec {
            preset: "tiny".to_owned(),
            num_docs: Some(500),
            seed: Some(11),
        },
        families: vec![f0, f1],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same pack, compiled twice: identical event scripts and schedules.
    #[test]
    fn replay_is_deterministic(pack in pack_strategy()) {
        let (corpus, index) = fixture();
        let a = pack.compile(&corpus, &index).expect("pack compiles");
        let b = pack.compile(&corpus, &index).expect("pack compiles");
        prop_assert_eq!(a.len(), b.len());
        for (fa, fb) in a.iter().zip(&b) {
            prop_assert_eq!(&fa.name, &fb.name);
            prop_assert_eq!(&fa.arrivals_ns, &fb.arrivals_ns);
            // Debug form covers every query term and mutation doc id —
            // byte equality here is byte equality of the whole script.
            prop_assert_eq!(format!("{:?}", fa.events), format!("{:?}", fb.events));
        }
    }

    /// JSON round-trip preserves the pack and therefore its compilation.
    #[test]
    fn json_round_trip_preserves_replay(pack in pack_strategy()) {
        let (corpus, index) = fixture();
        let text = pack.to_json_pretty();
        let reparsed = QueryPack::from_json(&text).expect("emitted pack re-parses");
        prop_assert_eq!(&reparsed, &pack);
        let a = pack.compile(&corpus, &index).expect("compiles");
        let b = reparsed.compile(&corpus, &index).expect("compiles");
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    /// Corrupting the version string is a typed error, not a panic.
    #[test]
    fn wrong_version_is_typed(pack in pack_strategy(), junk in 0u32..1000) {
        let text = pack
            .to_json_pretty()
            .replace("divtopk-pack/1", &format!("divtopk-pack/{junk}.x"));
        match QueryPack::from_json(&text) {
            Err(PackError::WrongVersion { found }) => {
                prop_assert!(found.contains(&junk.to_string()));
            }
            other => prop_assert!(false, "expected WrongVersion, got {:?}", other),
        }
    }

    /// Deleting any required top-level key is a typed error, never a panic.
    #[test]
    fn missing_fields_are_typed(pack in pack_strategy(), which in 0usize..4) {
        let field = ["version", "name", "seed", "corpus"][which];
        let doc = divtopk_bench::json::parse(&pack.to_json_pretty()).unwrap();
        let divtopk_bench::json::Value::Object(mut entries) = doc else {
            panic!("pack JSON is an object");
        };
        entries.retain(|(k, _)| k != field);
        let text = divtopk_bench::json::emit(&divtopk_bench::json::Value::Object(entries));
        match QueryPack::from_json(&text) {
            Err(PackError::MissingField { field: f, .. }) => prop_assert_eq!(f, field),
            Err(PackError::WrongVersion { .. }) => prop_assert_eq!(field, "version"),
            other => prop_assert!(false, "expected a typed error, got {:?}", other),
        }
    }
}
