//! Minimal JSON emission + validation + DOM for the `perfbase`
//! trajectory files.
//!
//! The workspace is dependency-free (no serde), so `BENCH_*.json` is
//! written with [`escape_string`]/format strings and checked with
//! [`validate`] — a strict RFC 8259 well-formedness parser. [`parse`]
//! builds a small [`Value`] DOM on top of the same parser; it backs
//! `perfbase --verify`, which structurally checks a trajectory file
//! (expected suites ran, summary keys present and finite) instead of
//! grepping it. `perfbase` validates its own output before exiting and
//! CI runs `--verify` on the artifact, so a malformed or incomplete
//! trajectory file fails the build rather than the downstream tooling
//! that reads it.

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Checks that `s` is one well-formed JSON value (with nothing but
/// whitespace after it). Returns a byte offset + message on failure.
pub fn validate(s: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content after the top-level value"));
    }
    Ok(())
}

/// A parsed JSON value. Objects keep insertion order (the trajectory
/// files are small; no hashing needed), and numbers are `f64` — plenty
/// for verifying that a summary statistic is present and finite.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Emits `value` as compact JSON (no whitespace). The inverse of
/// [`parse`]: `parse(&emit(v)) == Ok(v)` for every finite DOM.
///
/// Numbers whose value is an integer with magnitude below 2⁵³ print
/// without a fractional part (so seeds and counters survive a
/// parse→emit→parse round trip textually); every other finite number
/// uses Rust's shortest round-tripping `f64` display. Non-finite numbers
/// have no JSON spelling and emit as `null` — callers that care (the
/// trajectory writer) validate finiteness before emitting.
pub fn emit(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Emits `value` as human-readable JSON: 2-space indentation, one
/// array element / object field per line. Same number and escape rules
/// as [`emit`]; the committed query-pack files use this form so diffs
/// stay reviewable.
pub fn emit_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

/// Shared emission core: `indent = None` → compact, `Some(w)` → pretty
/// with `w`-space steps at nesting `depth`.
fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    let newline = |out: &mut String, depth: usize| {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&format_number(*n)),
        Value::String(s) => {
            out.push('"');
            out.push_str(&escape_string(s));
            out.push('"');
        }
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline(out, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, field)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, depth + 1);
                out.push('"');
                out.push_str(&escape_string(key));
                out.push_str(if indent.is_some() { "\": " } else { "\":" });
                write_value(out, field, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline(out, depth);
            }
            out.push('}');
        }
    }
}

/// JSON spelling of an `f64` (see [`emit`] for the rules).
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_owned();
    }
    // LINT-ALLOW(float-eq): fract() of an integral double is exactly
    // +0.0 by IEEE-754 — this is the standard integrality test, not an
    // approximate comparison.
    if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Parses `s` into a [`Value`] DOM under the same strict RFC 8259 rules
/// as [`validate`]. Returns a byte offset + message on failure.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value_dom()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content after the top-level value"));
    }
    Ok(value)
}

/// Length of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> String {
        format!("byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected literal '{word}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                                    return Err(self.error("bad \\u escape"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.error("raw control char in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn value_dom(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object_dom(),
            Some(b'[') => self.array_dom(),
            Some(b'"') => self.string_dom().map(Value::String),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number_dom(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object_dom(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string_dom()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value_dom()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array_dom(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value_dom()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    /// Like [`Parser::string`], but decodes escapes into the returned
    /// string (surrogate pairs combined; lone surrogates rejected).
    fn string_dom(&mut self) -> Result<String, String> {
        let start = self.pos;
        self.string()?;
        let raw = &self.bytes[start + 1..self.pos - 1];
        let mut out = String::with_capacity(raw.len());
        let mut i = 0;
        while i < raw.len() {
            if raw[i] != b'\\' {
                // The span passed `string()`, so it is valid UTF-8 between
                // escapes; copy code points byte-wise.
                let len = utf8_len(raw[i]);
                out.push_str(
                    std::str::from_utf8(&raw[i..i + len])
                        .map_err(|_| format!("byte {}: invalid UTF-8 in string", start + 1 + i))?,
                );
                i += len;
                continue;
            }
            i += 1;
            match raw[i] {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'b' => out.push('\u{0008}'),
                b'f' => out.push('\u{000C}'),
                b'n' => out.push('\n'),
                b'r' => out.push('\r'),
                b't' => out.push('\t'),
                b'u' => {
                    let hex = |bytes: &[u8]| -> u32 {
                        bytes.iter().fold(0, |acc, &b| {
                            acc * 16 + (b as char).to_digit(16).expect("validated hex")
                        })
                    };
                    let mut code = hex(&raw[i + 1..i + 5]);
                    i += 4;
                    if (0xD800..0xDC00).contains(&code) {
                        // High surrogate: a low surrogate escape must follow.
                        if raw.len() < i + 7 || raw[i + 1] != b'\\' || raw[i + 2] != b'u' {
                            return Err(format!("byte {}: lone high surrogate", start + i));
                        }
                        let low = hex(&raw[i + 3..i + 7]);
                        if !(0xDC00..0xE000).contains(&low) {
                            return Err(format!("byte {}: invalid surrogate pair", start + i));
                        }
                        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                        i += 6;
                    }
                    match char::from_u32(code) {
                        Some(c) => out.push(c),
                        None => return Err(format!("byte {}: invalid \\u escape", start + i)),
                    }
                }
                _ => unreachable!("string() validated the escape"),
            }
            i += 1;
        }
        Ok(out)
    }

    fn number_dom(&mut self) -> Result<Value, String> {
        let start = self.pos;
        self.number()?;
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number grammar is ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("byte {start}: unparseable number: {e}"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            if !p.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(p.error("expected digit"));
            }
            while p.peek().is_some_and(|b| b.is_ascii_digit()) {
                p.pos += 1;
            }
            Ok(())
        };
        if self.peek() == Some(b'0') {
            self.pos += 1;
        } else {
            digits(self)?;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_wellformed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e3",
            r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": []}}"#,
            "  { \"k\" : 0 }  ",
        ] {
            assert!(validate(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "\"unterminated",
            "01",
            "1.",
            "nul",
            "{'single': 1}",
        ] {
            assert!(validate(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn parse_builds_the_dom() {
        let v = parse(r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3e2}}"#).unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_str(), Some("x\n"));
        assert_eq!(a[3], Value::Bool(true));
        assert_eq!(a[4], Value::Null);
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_f64),
            Some(-300.0)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_decodes_escapes_and_surrogate_pairs() {
        assert_eq!(
            parse(r#""tab\t quote\" uA""#).unwrap(),
            Value::String("tab\t quote\" uA".into())
        );
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("😀".into()));
        assert!(parse(r#""\ud83d oops""#).is_err(), "lone surrogate");
    }

    #[test]
    fn parse_round_trips_an_escaped_emission() {
        let original = "wall\tns \"quoted\" line\nend";
        let doc = format!("{{\"k\": \"{}\"}}", escape_string(original));
        assert_eq!(
            parse(&doc).unwrap().get("k").and_then(Value::as_str),
            Some(original)
        );
    }

    #[test]
    fn parse_rejects_what_validate_rejects() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "{\"a\": 1} extra", "01"] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn huge_exponents_parse_to_infinity_not_errors() {
        // `--verify` flags non-finite summary values; the parser's job is
        // only to surface them.
        let v = parse("1e999").unwrap();
        assert_eq!(v.as_f64(), Some(f64::INFINITY));
    }

    #[test]
    fn emit_round_trips_through_parse() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("pack \"v1\"\n".into())),
            ("seed".into(), Value::Number(123456789012345.0)),
            ("tau".into(), Value::Number(0.6)),
            ("flag".into(), Value::Bool(false)),
            ("none".into(), Value::Null),
            (
                "arr".into(),
                Value::Array(vec![
                    Value::Number(-2.5),
                    Value::Array(vec![]),
                    Value::Object(vec![]),
                ]),
            ),
        ]);
        for text in [emit(&v), emit_pretty(&v)] {
            assert!(validate(&text).is_ok(), "{text}");
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
        // Integral numbers print without a fraction, so emitted seeds are
        // textually stable across round trips.
        assert_eq!(emit(&Value::Number(42.0)), "42");
        assert_eq!(emit(&Value::Number(-0.0)), "0");
        assert_eq!(emit(&Value::Number(0.125)), "0.125");
        // Non-finite values degrade to null rather than corrupt the file.
        assert_eq!(emit(&Value::Number(f64::NAN)), "null");
        assert_eq!(emit(&Value::Number(f64::INFINITY)), "null");
    }

    #[test]
    fn pretty_emission_is_stable_and_indented() {
        let v = Value::Object(vec![(
            "families".into(),
            Value::Array(vec![Value::Object(vec![(
                "name".into(),
                Value::String("head".into()),
            )])]),
        )]);
        let text = emit_pretty(&v);
        assert_eq!(
            text,
            "{\n  \"families\": [\n    {\n      \"name\": \"head\"\n    }\n  ]\n}"
        );
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(escape_string("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert!(validate(&format!("\"{}\"", escape_string("tab\tquote\""))).is_ok());
    }
}
