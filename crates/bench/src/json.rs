//! Minimal JSON emission + validation for the `perfbase` trajectory files.
//!
//! The workspace is dependency-free (no serde), so `BENCH_*.json` is
//! written with [`escape_string`]/format strings and checked with
//! [`validate`] — a strict RFC 8259 well-formedness parser (structure
//! only, no DOM). `perfbase` validates its own output before exiting and
//! CI runs the same check, so a malformed trajectory file fails the build
//! rather than the downstream tooling that reads it.

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Checks that `s` is one well-formed JSON value (with nothing but
/// whitespace after it). Returns a byte offset + message on failure.
pub fn validate(s: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content after the top-level value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> String {
        format!("byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected literal '{word}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                                    return Err(self.error("bad \\u escape"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.error("raw control char in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            if !p.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(p.error("expected digit"));
            }
            while p.peek().is_some_and(|b| b.is_ascii_digit()) {
                p.pos += 1;
            }
            Ok(())
        };
        if self.peek() == Some(b'0') {
            self.pos += 1;
        } else {
            digits(self)?;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_wellformed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e3",
            r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": []}}"#,
            "  { \"k\" : 0 }  ",
        ] {
            assert!(validate(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "\"unterminated",
            "01",
            "1.",
            "nul",
            "{'single': 1}",
        ] {
            assert!(validate(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(escape_string("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert!(validate(&format!("\"{}\"", escape_string("tab\tquote\""))).is_ok());
    }
}
