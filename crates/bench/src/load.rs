//! The shared open-loop load client: schedules request arrivals at a
//! fixed rate on a wall clock that does **not** slow down when the server
//! does (the open-loop property — closed-loop clients hide overload by
//! self-throttling), fires them over the wire protocol from a small pool
//! of sender connections, and reports achieved throughput plus
//! scheduled-time-to-response latency quantiles (queueing delay
//! included).
//!
//! Used by both the `loadgen` binary and perfbase's `serving_latency`
//! suite, so the committed BENCH numbers and the CI smoke trace measure
//! the same thing.

use divtopk_core::rng::Pcg;
use divtopk_engine::engine::Query;
use divtopk_engine::proto::{self, Request, Response};
use divtopk_text::query::KeywordQuery;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One open-loop trace specification.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Server address, e.g. `127.0.0.1:7071`.
    pub addr: String,
    /// Target arrival rate, requests per second.
    pub rate: f64,
    /// Total requests in the trace.
    pub total: usize,
    /// Sender connections (arrival `i` goes to sender `i % connections`).
    pub connections: usize,
    /// Trace seed (query mix is deterministic given the seed and the
    /// server's vocabulary size).
    pub seed: u64,
    /// Fraction of requests that are multi-keyword (TA) queries.
    pub ta_fraction: f64,
    /// `k` for every query.
    pub k: u32,
    /// `τ` for every query.
    pub tau: f64,
}

impl LoadSpec {
    /// A smoke trace against `addr`: 2 s at 50 q/s on 2 connections.
    pub fn smoke(addr: &str) -> LoadSpec {
        LoadSpec {
            addr: addr.to_owned(),
            rate: 50.0,
            total: 100,
            connections: 2,
            seed: 1,
            ta_fraction: 0.25,
            k: 5,
            tau: 0.5,
        }
    }
}

/// Aggregated result of one trace run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Requests answered with hits.
    pub ok: u64,
    /// Requests rejected with the typed backpressure response.
    pub overloaded: u64,
    /// Requests answered with a typed error (or a transport failure).
    pub errors: u64,
    /// Wall-clock duration of the whole trace.
    pub elapsed: Duration,
    /// Scheduled-time→response latencies, ns, sorted ascending.
    pub latencies_ns: Vec<u64>,
}

impl LoadReport {
    /// Achieved throughput over the trace (answered requests / elapsed).
    pub fn qps(&self) -> f64 {
        let answered = (self.ok + self.overloaded + self.errors) as f64;
        answered / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Latency at quantile `q ∈ [0, 1]`, in milliseconds (0 when empty).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.latencies_ns.len() as f64).ceil() as usize)
            .clamp(1, self.latencies_ns.len());
        self.latencies_ns[rank - 1] as f64 / 1e6
    }
}

/// Asks the server (via a stats request) how many terms and docs it
/// serves — what [`build_trace`] needs to synthesize valid queries.
pub fn probe_vocabulary(addr: &str) -> Result<(u32, u64), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    proto::write_frame(
        &mut stream,
        &proto::encode_request(&Request::Stats).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let frame = proto::read_frame(&mut stream)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "server closed during stats probe".to_owned())?;
    match proto::decode_response(&frame).map_err(|e| e.to_string())? {
        Response::Stats(stats) => Ok((stats.num_terms, stats.num_docs)),
        other => Err(format!("stats probe got {other:?}")),
    }
}

/// Builds the deterministic query trace: a Zipf-flavored mix of scan and
/// keyword queries over a vocabulary of `num_terms` terms.
pub fn build_trace(spec: &LoadSpec, num_terms: u32) -> Vec<Request> {
    assert!(num_terms > 0, "server reports an empty vocabulary");
    let mut rng = Pcg::new(spec.seed ^ 0x6f70656e6c6f6f70);
    // A small pool of distinct "popular" terms plus a random tail, so the
    // trace exercises both the result cache and cold queries.
    let popular: Vec<u32> = (0..16).map(|_| rng.below(num_terms)).collect();
    (0..spec.total)
        .map(|_| {
            let term = if rng.chance(0.7) {
                popular[rng.below(popular.len() as u32) as usize]
            } else {
                rng.below(num_terms)
            };
            let query = if rng.chance(spec.ta_fraction) {
                let second = rng.below(num_terms);
                Query::Keywords(KeywordQuery {
                    terms: vec![term, second],
                })
            } else {
                Query::Scan(term)
            };
            Request::Search {
                query,
                k: spec.k,
                tau: spec.tau,
                bound_decay: 0.005,
                algorithm: 2, // div-cut
            }
        })
        .collect()
}

/// Runs the open-loop trace: arrival `i` is *scheduled* at
/// `start + i/rate` and its latency is measured from that scheduled
/// instant — a late send counts against the server, exactly as a queued
/// request would in production.
pub fn run_open_loop(spec: &LoadSpec) -> Result<LoadReport, String> {
    let (num_terms, _num_docs) = probe_vocabulary(&spec.addr)?;
    let trace = build_trace(spec, num_terms);
    let connections = spec.connections.clamp(1, trace.len().max(1));
    let interval = Duration::from_secs_f64(1.0 / spec.rate.max(1e-6));
    let start = Instant::now() + Duration::from_millis(5);
    let mut senders = Vec::new();
    for c in 0..connections {
        let requests: Vec<(usize, Request)> = trace
            .iter()
            .enumerate()
            .filter(|(i, _)| i % connections == c)
            .map(|(i, r)| (i, r.clone()))
            .collect();
        let addr = spec.addr.clone();
        senders.push(std::thread::spawn(
            move || -> Result<SenderTally, String> {
                let mut stream =
                    TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
                stream.set_nodelay(true).ok();
                let mut tally = SenderTally::default();
                for (i, request) in requests {
                    let scheduled = start + interval.mul_f64(i as f64);
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    tally.sent += 1;
                    let payload = proto::encode_request(&request).map_err(|e| e.to_string())?;
                    if proto::write_frame(&mut stream, &payload).is_err() {
                        tally.errors += 1;
                        continue;
                    }
                    match proto::read_frame(&mut stream) {
                        Ok(Some(frame)) => match proto::decode_response(&frame) {
                            Ok(Response::Hits(_)) => {
                                tally.ok += 1;
                                tally
                                    .latencies_ns
                                    .push(scheduled.elapsed().as_nanos() as u64);
                            }
                            Ok(Response::Overloaded { .. }) => {
                                tally.overloaded += 1;
                                tally
                                    .latencies_ns
                                    .push(scheduled.elapsed().as_nanos() as u64);
                            }
                            _ => tally.errors += 1,
                        },
                        _ => {
                            tally.errors += 1;
                            return Ok(tally); // connection lost — stop this sender
                        }
                    }
                }
                Ok(tally)
            },
        ));
    }
    let begun = Instant::now();
    let mut report = LoadReport {
        sent: 0,
        ok: 0,
        overloaded: 0,
        errors: 0,
        elapsed: Duration::ZERO,
        latencies_ns: Vec::new(),
    };
    for sender in senders {
        let tally = sender
            .join()
            .map_err(|_| "sender thread panicked".to_owned())??;
        report.sent += tally.sent;
        report.ok += tally.ok;
        report.overloaded += tally.overloaded;
        report.errors += tally.errors;
        report.latencies_ns.extend(tally.latencies_ns);
    }
    report.elapsed = begun.elapsed();
    report.latencies_ns.sort_unstable();
    Ok(report)
}

#[derive(Debug, Default)]
struct SenderTally {
    sent: u64,
    ok: u64,
    overloaded: u64,
    errors: u64,
    latencies_ns: Vec<u64>,
}
