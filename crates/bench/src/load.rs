//! The shared open-loop load client: schedules request arrivals at a
//! fixed rate on a wall clock that does **not** slow down when the server
//! does (the open-loop property — closed-loop clients hide overload by
//! self-throttling), fires them over the wire protocol from a small pool
//! of sender connections, and reports achieved throughput plus
//! scheduled-time-to-response latency quantiles (queueing delay
//! included).
//!
//! Used by both the `loadgen` binary and perfbase's `serving_latency`
//! suite, so the committed BENCH numbers and the CI smoke trace measure
//! the same thing.

use divtopk_core::rng::Pcg;
use divtopk_engine::engine::Query;
use divtopk_engine::proto::{self, Request, Response};
use divtopk_text::mode::DiversifyMode;
use divtopk_text::query::KeywordQuery;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The *shape* of an open-loop arrival process. The base rate comes from
/// the owning spec; the shape modulates it deterministically over time,
/// so the same (shape, rate, total) always yields byte-identical arrival
/// offsets — the query-pack replay-determinism property depends on it.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalShape {
    /// Constant rate: arrival `i` at exactly `i / rate` seconds.
    Uniform,
    /// Periodic bursts: the instantaneous rate is `rate × factor` during
    /// the first `burst_s` seconds of every `period_s`-second window and
    /// `rate` otherwise — the flash-crowd shape.
    Burst {
        /// Rate multiplier inside a burst window (≥ 1).
        factor: f64,
        /// Window period, seconds.
        period_s: f64,
        /// Burst length at the start of each window, seconds.
        burst_s: f64,
    },
    /// Sinusoidal day/night swing: instantaneous rate
    /// `rate × (1 + amplitude · sin(2π t / period_s))`.
    Diurnal {
        /// Swing amplitude in `[0, 1)` (1 would stall the trough).
        amplitude: f64,
        /// Full day/night cycle length, seconds.
        period_s: f64,
    },
}

impl ArrivalShape {
    /// Instantaneous rate multiplier at time `t` seconds.
    fn multiplier(&self, t: f64) -> f64 {
        match self {
            ArrivalShape::Uniform => 1.0,
            ArrivalShape::Burst {
                factor,
                period_s,
                burst_s,
            } => {
                if t.rem_euclid(*period_s) < *burst_s {
                    *factor
                } else {
                    1.0
                }
            }
            ArrivalShape::Diurnal {
                amplitude,
                period_s,
            } => 1.0 + amplitude * (std::f64::consts::TAU * t / period_s).sin(),
        }
    }

    /// Deterministic arrival offsets (ns from trace start) for `total`
    /// arrivals at base rate `rate`: a forward-Euler integration of the
    /// instantaneous rate — arrival `i+1` lands `1 / r(tᵢ)` after
    /// arrival `i`. Monotone by construction; `Uniform` reproduces the
    /// exact `i / rate` grid the open-loop client has always used.
    pub fn offsets_ns(&self, rate: f64, total: usize) -> Vec<u64> {
        let rate = rate.max(1e-6);
        if matches!(self, ArrivalShape::Uniform) {
            return (0..total).map(|i| (i as f64 / rate * 1e9) as u64).collect();
        }
        let mut offsets = Vec::with_capacity(total);
        let mut t = 0.0f64;
        for _ in 0..total {
            offsets.push((t * 1e9) as u64);
            let r = (rate * self.multiplier(t)).max(1e-6);
            t += 1.0 / r;
        }
        offsets
    }
}

/// One open-loop trace specification.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Server address, e.g. `127.0.0.1:7071`.
    pub addr: String,
    /// Target arrival rate, requests per second.
    pub rate: f64,
    /// Total requests in the trace.
    pub total: usize,
    /// Sender connections (arrival `i` goes to sender `i % connections`).
    pub connections: usize,
    /// Trace seed (query mix is deterministic given the seed and the
    /// server's vocabulary size).
    pub seed: u64,
    /// Fraction of requests that are multi-keyword (TA) queries.
    pub ta_fraction: f64,
    /// `k` for every query.
    pub k: u32,
    /// `τ` for every query.
    pub tau: f64,
    /// Arrival-schedule shape modulating `rate` over the trace.
    pub shape: ArrivalShape,
}

impl LoadSpec {
    /// A smoke trace against `addr`: 2 s at 50 q/s on 2 connections.
    pub fn smoke(addr: &str) -> LoadSpec {
        LoadSpec {
            addr: addr.to_owned(),
            rate: 50.0,
            total: 100,
            connections: 2,
            seed: 1,
            ta_fraction: 0.25,
            k: 5,
            tau: 0.5,
            shape: ArrivalShape::Uniform,
        }
    }
}

/// Aggregated result of one trace run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Requests answered with hits.
    pub ok: u64,
    /// Requests rejected with the typed backpressure response.
    pub overloaded: u64,
    /// Requests answered with a typed error (or a transport failure).
    pub errors: u64,
    /// Wall-clock duration of the whole trace.
    pub elapsed: Duration,
    /// Scheduled-time→response latencies, ns, sorted ascending.
    pub latencies_ns: Vec<u64>,
}

impl LoadReport {
    /// Achieved throughput over the trace (answered requests / elapsed).
    pub fn qps(&self) -> f64 {
        let answered = (self.ok + self.overloaded + self.errors) as f64;
        answered / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Latency at quantile `q ∈ [0, 1]`, in milliseconds (0 when empty).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.latencies_ns.len() as f64).ceil() as usize)
            .clamp(1, self.latencies_ns.len());
        self.latencies_ns[rank - 1] as f64 / 1e6
    }
}

/// Asks the server (via a stats request) how many terms and docs it
/// serves — what [`build_trace`] needs to synthesize valid queries.
pub fn probe_vocabulary(addr: &str) -> Result<(u32, u64), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    proto::write_frame(
        &mut stream,
        &proto::encode_request(&Request::Stats).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let frame = proto::read_frame(&mut stream)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "server closed during stats probe".to_owned())?;
    match proto::decode_response(&frame).map_err(|e| e.to_string())? {
        Response::Stats(stats) => Ok((stats.num_terms, stats.num_docs)),
        other => Err(format!("stats probe got {other:?}")),
    }
}

/// Builds the deterministic query trace: a Zipf-flavored mix of scan and
/// keyword queries over a vocabulary of `num_terms` terms.
pub fn build_trace(spec: &LoadSpec, num_terms: u32) -> Vec<Request> {
    assert!(num_terms > 0, "server reports an empty vocabulary");
    let mut rng = Pcg::new(spec.seed ^ 0x6f70656e6c6f6f70);
    // A small pool of distinct "popular" terms plus a random tail, so the
    // trace exercises both the result cache and cold queries.
    let popular: Vec<u32> = (0..16).map(|_| rng.below(num_terms)).collect();
    (0..spec.total)
        .map(|_| {
            let term = if rng.chance(0.7) {
                popular[rng.below(popular.len() as u32) as usize]
            } else {
                rng.below(num_terms)
            };
            let query = if rng.chance(spec.ta_fraction) {
                let second = rng.below(num_terms);
                Query::Keywords(KeywordQuery {
                    terms: vec![term, second],
                })
            } else {
                Query::Scan(term)
            };
            Request::Search {
                query,
                k: spec.k,
                tau: spec.tau,
                bound_decay: 0.005,
                mode: DiversifyMode::exact(),
            }
        })
        .collect()
}

/// Runs the open-loop trace: arrival `i` is *scheduled* at
/// `start + i/rate` and its latency is measured from that scheduled
/// instant — a late send counts against the server, exactly as a queued
/// request would in production.
pub fn run_open_loop(spec: &LoadSpec) -> Result<LoadReport, String> {
    let (num_terms, _num_docs) = probe_vocabulary(&spec.addr)?;
    let trace = build_trace(spec, num_terms);
    let offsets = spec.shape.offsets_ns(spec.rate, trace.len());
    let connections = spec.connections.clamp(1, trace.len().max(1));
    let start = Instant::now() + Duration::from_millis(5);
    let mut senders = Vec::new();
    for c in 0..connections {
        let requests: Vec<(u64, Request)> = trace
            .iter()
            .enumerate()
            .filter(|(i, _)| i % connections == c)
            .map(|(i, r)| (offsets[i], r.clone()))
            .collect();
        let addr = spec.addr.clone();
        senders.push(std::thread::spawn(
            move || -> Result<SenderTally, String> {
                let mut stream =
                    TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
                stream.set_nodelay(true).ok();
                let mut tally = SenderTally::default();
                for (offset_ns, request) in requests {
                    let scheduled = start + Duration::from_nanos(offset_ns);
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    tally.sent += 1;
                    let payload = proto::encode_request(&request).map_err(|e| e.to_string())?;
                    if proto::write_frame(&mut stream, &payload).is_err() {
                        tally.errors += 1;
                        continue;
                    }
                    match proto::read_frame(&mut stream) {
                        Ok(Some(frame)) => match proto::decode_response(&frame) {
                            Ok(Response::Hits(_)) => {
                                tally.ok += 1;
                                tally
                                    .latencies_ns
                                    .push(scheduled.elapsed().as_nanos() as u64);
                            }
                            Ok(Response::Overloaded { .. }) => {
                                tally.overloaded += 1;
                                tally
                                    .latencies_ns
                                    .push(scheduled.elapsed().as_nanos() as u64);
                            }
                            _ => tally.errors += 1,
                        },
                        _ => {
                            tally.errors += 1;
                            return Ok(tally); // connection lost — stop this sender
                        }
                    }
                }
                Ok(tally)
            },
        ));
    }
    let begun = Instant::now();
    let mut report = LoadReport {
        sent: 0,
        ok: 0,
        overloaded: 0,
        errors: 0,
        elapsed: Duration::ZERO,
        latencies_ns: Vec::new(),
    };
    for sender in senders {
        let tally = sender
            .join()
            .map_err(|_| "sender thread panicked".to_owned())??;
        report.sent += tally.sent;
        report.ok += tally.ok;
        report.overloaded += tally.overloaded;
        report.errors += tally.errors;
        report.latencies_ns.extend(tally.latencies_ns);
    }
    report.elapsed = begun.elapsed();
    report.latencies_ns.sort_unstable();
    Ok(report)
}

#[derive(Debug, Default)]
struct SenderTally {
    sent: u64,
    ok: u64,
    overloaded: u64,
    errors: u64,
    latencies_ns: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_offsets_are_the_classic_grid() {
        let offsets = ArrivalShape::Uniform.offsets_ns(100.0, 5);
        assert_eq!(
            offsets,
            vec![0, 10_000_000, 20_000_000, 30_000_000, 40_000_000]
        );
    }

    #[test]
    fn burst_shape_concentrates_arrivals_and_is_deterministic() {
        let shape = ArrivalShape::Burst {
            factor: 8.0,
            period_s: 1.0,
            burst_s: 0.2,
        };
        let offsets = shape.offsets_ns(50.0, 400);
        assert_eq!(
            offsets,
            shape.offsets_ns(50.0, 400),
            "must be deterministic"
        );
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "must be monotone");
        // Arrivals inside burst windows (first 20% of each second) must
        // far outnumber a uniform trace's share.
        let in_burst = offsets
            .iter()
            .filter(|&&ns| (ns as f64 / 1e9).rem_euclid(1.0) < 0.2)
            .count();
        assert!(
            in_burst * 2 > offsets.len(),
            "only {in_burst}/{} arrivals in burst windows",
            offsets.len()
        );
    }

    #[test]
    fn diurnal_shape_swings_the_interarrival_gap() {
        let shape = ArrivalShape::Diurnal {
            amplitude: 0.8,
            period_s: 2.0,
        };
        let offsets = shape.offsets_ns(200.0, 800);
        assert_eq!(offsets, shape.offsets_ns(200.0, 800));
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        let gaps: Vec<u64> = offsets.windows(2).map(|w| w[1] - w[0]).collect();
        let (min, max) = (gaps.iter().min().unwrap(), gaps.iter().max().unwrap());
        // Peak-to-trough rate ratio is (1+0.8)/(1-0.8) = 9; allow slack
        // for the Euler stepping but demand a clear swing.
        assert!(*max > *min * 4, "gap swing too small: {min}..{max}");
    }
}
