//! The quality evaluator: replays a query-pack through the serving
//! engine **twice per query** — diversity on vs. off against the same
//! pinned snapshot — and scores what diversification buys and costs.
//!
//! Diversity metrics (higher-is-better deltas): unique-source@k (topic
//! labels from [`divtopk_text::synth::generate_labeled`]), max-share@k
//! (concentration of the most frequent source), and mean pairwise
//! weighted-Jaccard dissimilarity@k. Relevance guards: NDCG@k and MRR
//! against the diversity-off oracle — the off side is the plain
//! score-descending top-k, which is DCG-maximal for these gains, so its
//! NDCG and MRR are 1.0 by construction and every on-side delta is a
//! bounded sacrifice. Per-family pass criteria come from the pack's own
//! `gates` object; [`QualityReport::to_json_pretty`] emits the
//! self-validated evidence table (`divtopk-quality/1`) that
//! `quality_gate` and perfbase's `quality_gate` suite commit.

use crate::workload::{CacheMode, Gates, Mutation, PackEvent, QueryPack};
use divtopk_core::metrics::{max_share, ndcg, reciprocal_rank, unique_labels};
use divtopk_engine::engine::{Engine, EngineConfig, Query};
use divtopk_text::index::InvertedIndex;
use divtopk_text::jaccard::weighted_jaccard;
use divtopk_text::mode::DiversifyMode;
use divtopk_text::search::{SearchOptions, SearchOutput};
use std::time::Instant;

use crate::json::{self, Value};

/// The evidence-table schema this module emits.
pub const QUALITY_VERSION: &str = "divtopk-quality/1";

/// Aggregate metrics of one side (diversity on or off) of a family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SideStats {
    /// Mean distinct topic labels among the hits.
    pub mean_unique_sources: f64,
    /// Mean share of the most frequent label.
    pub mean_max_share: f64,
    /// Mean pairwise `1 − weighted_jaccard` over hit pairs.
    pub mean_dissimilarity: f64,
    /// Mean NDCG@k against the off oracle (off side: 1.0 by definition).
    pub mean_ndcg: f64,
    /// Mean MRR of the oracle's top hit (off side: 1.0 by definition).
    pub mean_mrr: f64,
    /// Median per-query engine latency, ms.
    pub p50_ms: f64,
    /// 95th-percentile per-query engine latency, ms.
    pub p95_ms: f64,
}

/// The on-minus-off family deltas the gates judge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deltas {
    /// Unique-source@k gain.
    pub unique_sources_gain: f64,
    /// Max-share@k delta (negative = concentration dropped = better).
    pub max_share_delta: f64,
    /// Pairwise-dissimilarity@k gain.
    pub dissimilarity_gain: f64,
    /// NDCG@k delta (≤ 0 by construction; closer to 0 = cheaper).
    pub ndcg_delta: f64,
    /// MRR delta (≤ 0 by construction).
    pub mrr_delta: f64,
}

/// One failed pass criterion, naming exactly what failed where.
#[derive(Debug, Clone, PartialEq)]
pub struct GateFailure {
    /// The family whose gate failed.
    pub family: String,
    /// The gate's JSON key (e.g. `min_ndcg_delta`).
    pub metric: String,
    /// The threshold the pack declared.
    pub threshold: f64,
    /// What the run actually measured.
    pub actual: f64,
}

impl std::fmt::Display for GateFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "family {:?}: gate {} failed (measured {:.4}, threshold {:.4})",
            self.family, self.metric, self.actual, self.threshold
        )
    }
}

/// Everything measured for one family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyReport {
    /// Family name.
    pub name: String,
    /// Queries replayed (each ran twice).
    pub queries: usize,
    /// Diversity-on aggregates.
    pub on: SideStats,
    /// Diversity-off (oracle) aggregates.
    pub off: SideStats,
    /// On-minus-off deltas.
    pub deltas: Deltas,
    /// The pack's declared gates for this family.
    pub gates: Gates,
    /// Gates that failed (empty = family passes).
    pub failures: Vec<GateFailure>,
}

/// A full evaluation run over one pack.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Pack name.
    pub pack: String,
    /// Per-family results, in pack order.
    pub families: Vec<FamilyReport>,
}

impl QualityReport {
    /// True iff every family passed every declared gate.
    pub fn pass(&self) -> bool {
        self.families.iter().all(|f| f.failures.is_empty())
    }

    /// All gate failures across families, in pack order.
    pub fn failures(&self) -> impl Iterator<Item = &GateFailure> {
        self.families.iter().flat_map(|f| &f.failures)
    }

    /// The evidence table as a JSON DOM (`divtopk-quality/1`).
    pub fn to_value(&self) -> Value {
        let side = |s: &SideStats| {
            Value::Object(vec![
                (
                    "unique_sources_at_k".into(),
                    Value::Number(s.mean_unique_sources),
                ),
                ("max_share_at_k".into(), Value::Number(s.mean_max_share)),
                (
                    "dissimilarity_at_k".into(),
                    Value::Number(s.mean_dissimilarity),
                ),
                ("ndcg_at_k".into(), Value::Number(s.mean_ndcg)),
                ("mrr".into(), Value::Number(s.mean_mrr)),
                ("p50_ms".into(), Value::Number(s.p50_ms)),
                ("p95_ms".into(), Value::Number(s.p95_ms)),
            ])
        };
        let families = self
            .families
            .iter()
            .map(|f| {
                Value::Object(vec![
                    ("name".into(), Value::String(f.name.clone())),
                    ("queries".into(), Value::Number(f.queries as f64)),
                    ("pass".into(), Value::Bool(f.failures.is_empty())),
                    ("diversity_on".into(), side(&f.on)),
                    ("diversity_off".into(), side(&f.off)),
                    (
                        "deltas".into(),
                        Value::Object(vec![
                            (
                                "unique_sources_gain".into(),
                                Value::Number(f.deltas.unique_sources_gain),
                            ),
                            (
                                "max_share_delta".into(),
                                Value::Number(f.deltas.max_share_delta),
                            ),
                            (
                                "dissimilarity_gain".into(),
                                Value::Number(f.deltas.dissimilarity_gain),
                            ),
                            ("ndcg_delta".into(), Value::Number(f.deltas.ndcg_delta)),
                            ("mrr_delta".into(), Value::Number(f.deltas.mrr_delta)),
                        ]),
                    ),
                    (
                        "gates".into(),
                        Value::Object(
                            f.gates
                                .entries()
                                .into_iter()
                                .map(|(k, v)| (k.to_owned(), Value::Number(v)))
                                .collect(),
                        ),
                    ),
                    (
                        "failures".into(),
                        Value::Array(
                            f.failures
                                .iter()
                                .map(|fail| {
                                    Value::Object(vec![
                                        ("metric".into(), Value::String(fail.metric.clone())),
                                        ("threshold".into(), Value::Number(fail.threshold)),
                                        ("actual".into(), Value::Number(fail.actual)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("version".into(), Value::String(QUALITY_VERSION.into())),
            ("pack".into(), Value::String(self.pack.clone())),
            ("pass".into(), Value::Bool(self.pass())),
            ("families".into(), Value::Array(families)),
        ])
    }

    /// Pretty JSON evidence table, self-validated before it is returned
    /// (a malformed emission is a bug in this crate, caught here rather
    /// than downstream).
    pub fn to_json_pretty(&self) -> String {
        let mut text = json::emit_pretty(&self.to_value());
        text.push('\n');
        json::validate(&text).expect("evidence table must be well-formed JSON");
        text
    }

    /// The on/off comparison as a human-readable table (one row per
    /// family-side, SNIPPETS-style evidence framing).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>4} {:>9} {:>10} {:>9} {:>8} {:>7} {:>8} {:>8}  {}\n",
            "family",
            "side",
            "uniq@k",
            "maxshare",
            "dissim",
            "ndcg",
            "mrr",
            "p50ms",
            "p95ms",
            "gates"
        ));
        for f in &self.families {
            for (tag, s) in [("on", &f.on), ("off", &f.off)] {
                let verdict = if tag == "on" {
                    if f.failures.is_empty() {
                        "pass".to_owned()
                    } else {
                        format!(
                            "FAIL [{}]",
                            f.failures
                                .iter()
                                .map(|x| x.metric.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    }
                } else {
                    String::new()
                };
                out.push_str(&format!(
                    "{:<16} {:>4} {:>9.3} {:>10.3} {:>9.3} {:>8.3} {:>7.3} {:>8.3} {:>8.3}  {}\n",
                    f.name,
                    tag,
                    s.mean_unique_sources,
                    s.mean_max_share,
                    s.mean_dissimilarity,
                    s.mean_ndcg,
                    s.mean_mrr,
                    s.p50_ms,
                    s.p95_ms,
                    verdict
                ));
            }
        }
        out
    }
}

/// Latency quantile over raw ns samples, in ms.
fn quantile_ms(samples: &mut [u64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1] as f64 / 1e6
}

/// Per-query metric accumulator for one side.
#[derive(Default)]
struct SideAcc {
    unique: f64,
    share: f64,
    dissim: f64,
    ndcg: f64,
    mrr: f64,
    latencies_ns: Vec<u64>,
}

impl SideAcc {
    fn stats(mut self, n: usize) -> SideStats {
        let n = n.max(1) as f64;
        SideStats {
            mean_unique_sources: self.unique / n,
            mean_max_share: self.share / n,
            mean_dissimilarity: self.dissim / n,
            mean_ndcg: self.ndcg / n,
            mean_mrr: self.mrr / n,
            p50_ms: quantile_ms(&mut self.latencies_ns, 0.50),
            p95_ms: quantile_ms(&mut self.latencies_ns, 0.95),
        }
    }
}

/// Runs the full evaluation: builds the pack's corpus, compiles every
/// family, replays each against a fresh engine (mutations included), and
/// scores both sides of every query. Deterministic in everything except
/// the latency columns.
pub fn evaluate(pack: &QueryPack) -> Result<QualityReport, String> {
    let (corpus, base_labels) = pack.corpus.build().map_err(|e| e.to_string())?;
    let index = InvertedIndex::build(&corpus);
    let compiled = pack.compile(&corpus, &index).map_err(|e| e.to_string())?;
    let mut families = Vec::with_capacity(compiled.len());
    for family in &compiled {
        // A fresh engine per family: families are independent by design
        // (mutations in one must not leak into another). Single batch
        // thread — replay is sequential by construction.
        let engine = Engine::new(corpus.clone(), EngineConfig::new(2).with_threads(1));
        let mut labels = base_labels.clone();
        let options_on = SearchOptions::new(family.k)
            .with_tau(family.tau)
            .with_mode(family.mode.clone());
        let options_off = options_on.clone().with_mode(DiversifyMode::None);
        let mut on = SideAcc::default();
        let mut off = SideAcc::default();
        let mut queries = 0usize;
        for event in &family.events {
            match event {
                PackEvent::Mutate(Mutation::Delete(docs)) => {
                    engine.delete_docs(docs);
                }
                PackEvent::Mutate(Mutation::CloneDocs(srcs)) => {
                    let live = engine.corpus();
                    let copies = srcs.iter().map(|&d| live.doc(d).clone()).collect();
                    engine.add_docs(copies);
                    // The copies inherit their sources' topic labels.
                    for &d in srcs {
                        labels.push(labels[d as usize]);
                    }
                }
                PackEvent::Query(query) => {
                    let generation = engine.generation();
                    let out_on = run_side(&engine, query, &options_on, family.cache, &mut on)?;
                    let out_off = run_side(&engine, query, &options_off, family.cache, &mut off)?;
                    assert_eq!(
                        generation,
                        engine.generation(),
                        "on/off pair must run against the same pinned snapshot"
                    );
                    score_pair(&engine, &labels, &out_on, &out_off, &mut on, &mut off);
                    queries += 1;
                }
            }
        }
        let on = on.stats(queries);
        let off = off.stats(queries);
        let deltas = Deltas {
            unique_sources_gain: on.mean_unique_sources - off.mean_unique_sources,
            max_share_delta: on.mean_max_share - off.mean_max_share,
            dissimilarity_gain: on.mean_dissimilarity - off.mean_dissimilarity,
            ndcg_delta: on.mean_ndcg - off.mean_ndcg,
            mrr_delta: on.mean_mrr - off.mean_mrr,
        };
        let failures = check_gates(&family.name, &family.gates, &deltas);
        families.push(FamilyReport {
            name: family.name.clone(),
            queries,
            on,
            off,
            deltas,
            gates: family.gates.clone(),
            failures,
        });
    }
    Ok(QualityReport {
        pack: pack.name.clone(),
        families,
    })
}

/// Runs one side of a query, recording its latency.
fn run_side(
    engine: &Engine,
    query: &Query,
    options: &SearchOptions,
    cache: CacheMode,
    acc: &mut SideAcc,
) -> Result<SearchOutput, String> {
    // LINT-ALLOW(wallclock): latency measurement only — the timings
    // land in the report's latency fields, never in result selection, so
    // replayed runs stay byte-identical everywhere the harness compares.
    let started = Instant::now();
    let out = match cache {
        CacheMode::Normal => engine.search(query, options),
        CacheMode::Bypass => engine.search_uncached(query, options),
    }
    .map_err(|e| format!("query {query:?}: {e}"))?;
    acc.latencies_ns.push(started.elapsed().as_nanos() as u64);
    Ok(out)
}

/// Scores one on/off pair into the accumulators.
fn score_pair(
    engine: &Engine,
    labels: &[u32],
    out_on: &SearchOutput,
    out_off: &SearchOutput,
    on: &mut SideAcc,
    off: &mut SideAcc,
) {
    let corpus = engine.corpus();
    let label_of = |hits: &SearchOutput| -> Vec<u32> {
        hits.hits.iter().map(|h| labels[h.doc as usize]).collect()
    };
    let dissim = |hits: &SearchOutput| -> f64 {
        let docs: Vec<_> = hits.hits.iter().map(|h| h.doc).collect();
        if docs.len() < 2 {
            // 0 or 1 hits: vacuously diverse.
            return 1.0;
        }
        let mut acc = 0.0;
        let mut pairs = 0usize;
        for i in 0..docs.len() {
            for j in (i + 1)..docs.len() {
                acc += 1.0 - weighted_jaccard(&corpus, corpus.doc(docs[i]), corpus.doc(docs[j]));
                pairs += 1;
            }
        }
        acc / pairs as f64
    };
    let on_labels = label_of(out_on);
    let off_labels = label_of(out_off);
    on.unique += unique_labels(&on_labels) as f64;
    off.unique += unique_labels(&off_labels) as f64;
    on.share += max_share(&on_labels);
    off.share += max_share(&off_labels);
    on.dissim += dissim(out_on);
    off.dissim += dissim(out_off);
    // Relevance guards against the off oracle. The off ranking is the
    // plain top-k in descending score order, hence DCG-maximal: its own
    // NDCG and MRR are identically 1.
    let gains_on: Vec<f64> = out_on.hits.iter().map(|h| h.score.get()).collect();
    let gains_off: Vec<f64> = out_off.hits.iter().map(|h| h.score.get()).collect();
    on.ndcg += ndcg(&gains_on, &gains_off);
    off.ndcg += 1.0;
    let on_docs: Vec<_> = out_on.hits.iter().map(|h| h.doc).collect();
    on.mrr += match out_off.hits.first() {
        Some(best) => reciprocal_rank(&on_docs, &best.doc),
        // Oracle found nothing: neither side lost relevance.
        None => 1.0,
    };
    off.mrr += 1.0;
}

/// Applies the declared gates to the measured deltas.
fn check_gates(family: &str, gates: &Gates, deltas: &Deltas) -> Vec<GateFailure> {
    let mut failures = Vec::new();
    let mut floor = |metric: &str, threshold: Option<f64>, actual: f64| {
        if let Some(t) = threshold {
            if actual < t {
                failures.push(GateFailure {
                    family: family.to_owned(),
                    metric: metric.to_owned(),
                    threshold: t,
                    actual,
                });
            }
        }
    };
    floor(
        "min_unique_sources_gain",
        gates.min_unique_sources_gain,
        deltas.unique_sources_gain,
    );
    floor(
        "min_dissimilarity_gain",
        gates.min_dissimilarity_gain,
        deltas.dissimilarity_gain,
    );
    floor("min_ndcg_delta", gates.min_ndcg_delta, deltas.ndcg_delta);
    floor("min_mrr_delta", gates.min_mrr_delta, deltas.mrr_delta);
    // The share gate is a ceiling: concentration must not rise past it.
    if let Some(t) = gates.max_max_share_delta {
        if deltas.max_share_delta > t {
            failures.push(GateFailure {
                family: family.to_owned(),
                metric: "max_max_share_delta".to_owned(),
                threshold: t,
                actual: deltas.max_share_delta,
            });
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Gates, QueryPack};

    fn shrunk_pack() -> QueryPack {
        let mut pack = QueryPack::default_pack();
        pack.corpus.num_docs = Some(400);
        for f in &mut pack.families {
            f.queries = 6;
            f.distinct = 3;
            // The committed gates are calibrated against the full-size
            // corpus; clear them so these tests exercise the machinery,
            // not the production thresholds.
            f.gates = Gates::default();
        }
        pack
    }

    #[test]
    fn evaluation_is_deterministic_and_relevance_bounded() {
        let pack = shrunk_pack();
        let a = evaluate(&pack).unwrap();
        let b = evaluate(&pack).unwrap();
        assert_eq!(a.families.len(), pack.families.len());
        for (fa, fb) in a.families.iter().zip(&b.families) {
            // Everything except wall-clock latency is deterministic.
            assert_eq!(fa.name, fb.name);
            assert_eq!(fa.queries, fb.queries);
            assert_eq!(fa.deltas, fb.deltas);
            assert_eq!(fa.failures, fb.failures);
            // The off oracle is exact: NDCG = MRR = 1 by construction,
            // and the on side can only sacrifice relevance.
            assert_eq!(fa.off.mean_ndcg, 1.0);
            assert_eq!(fa.off.mean_mrr, 1.0);
            assert!(fa.deltas.ndcg_delta <= 1e-9, "{}", fa.deltas.ndcg_delta);
            assert!(fa.deltas.mrr_delta <= 1e-9);
            // Diversity must never get *worse* with the constraint on.
            assert!(fa.deltas.unique_sources_gain >= -1e-9);
            assert!(fa.deltas.dissimilarity_gain >= -1e-9);
        }
    }

    #[test]
    fn evidence_table_is_self_validated_json() {
        let report = evaluate(&shrunk_pack()).unwrap();
        let text = report.to_json_pretty();
        let doc = json::parse(&text).unwrap();
        assert_eq!(
            doc.get("version").and_then(Value::as_str),
            Some(QUALITY_VERSION)
        );
        let families = doc.get("families").and_then(Value::as_array).unwrap();
        assert_eq!(families.len(), report.families.len());
        for fam in families {
            for side in ["diversity_on", "diversity_off"] {
                let s = fam.get(side).unwrap();
                for key in [
                    "unique_sources_at_k",
                    "max_share_at_k",
                    "dissimilarity_at_k",
                    "ndcg_at_k",
                    "mrr",
                    "p50_ms",
                    "p95_ms",
                ] {
                    let v = s.get(key).and_then(Value::as_f64).unwrap();
                    assert!(v.is_finite(), "{side}.{key}");
                }
            }
        }
        assert!(!report.render_table().is_empty());
    }

    #[test]
    fn tightened_gate_fails_naming_family_and_metric() {
        // An impossible diversity demand must fail loudly: NDCG delta can
        // never exceed 0, so a positive floor is guaranteed to trip.
        let mut pack = shrunk_pack();
        pack.families[0].gates.min_ndcg_delta = Some(0.5);
        let report = evaluate(&pack).unwrap();
        assert!(!report.pass());
        let failure = report.failures().next().unwrap();
        assert_eq!(failure.family, pack.families[0].name);
        assert_eq!(failure.metric, "min_ndcg_delta");
        let shown = failure.to_string();
        assert!(shown.contains(&pack.families[0].name), "{shown}");
        assert!(shown.contains("min_ndcg_delta"), "{shown}");
    }
}
