//! Versioned query-pack workloads: named query families with realistic
//! traffic shapes, deterministic from a seed recorded in the pack.
//!
//! A pack (`divtopk-pack/1`, JSON via [`crate::json`]) describes a
//! synthetic corpus plus a list of **families**: Zipf head/torso/tail
//! term draws over the kfreq bands of DESIGN.md §3, burst and diurnal
//! arrival schedules ([`crate::load::ArrivalShape`]), cold-cache sweeps
//! (`"cache": "bypass"`), hot-doc deletion storms and adversarial
//! near-duplicate floods replayed through the engine's mutation API.
//! [`QueryPack::compile`] expands every family into a byte-reproducible
//! script of queries and mutations — the same pack and seed always
//! produce identical query sequences, arrival offsets, and mutation
//! scripts (`tests/workload.rs` pins this as a property test).
//!
//! The committed pack lives at `benchmarks/query-pack.v1.json`
//! ([`QueryPack::default_pack`] regenerates it via
//! `quality_gate --emit-default-pack`); [`crate::quality`] replays packs
//! through the engine twice (diversity on/off) and scores the results,
//! and `perfbase`'s `serving_throughput` suite draws its trace from the
//! pack's `torso_mix` family so the committed numbers measure a realistic
//! query mix rather than the result cache.

use crate::json::{self, Value};
use crate::load::ArrivalShape;
use divtopk_core::ExactAlgorithm;
use divtopk_core::rng::Pcg;
use divtopk_engine::engine::Query;
use divtopk_text::corpus::Corpus;
use divtopk_text::document::DocId;
use divtopk_text::index::InvertedIndex;
use divtopk_text::mode::DiversifyMode;
use divtopk_text::query::query_for_band;
use divtopk_text::synth::{SynthConfig, generate_labeled};

/// The one pack schema this crate reads and writes.
pub const PACK_VERSION: &str = "divtopk-pack/1";

/// Typed pack-loading failure: every malformed input is one of these,
/// never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum PackError {
    /// Not even JSON (byte offset + message from the strict parser).
    Parse(String),
    /// The `version` field is present but not [`PACK_VERSION`].
    WrongVersion {
        /// What the file declared.
        found: String,
    },
    /// A required field is absent.
    MissingField {
        /// Where (e.g. `family "torso_mix"`).
        context: String,
        /// Which field.
        field: &'static str,
    },
    /// A field is present but unusable (wrong type, out of range, or an
    /// unknown key that would otherwise be silently ignored).
    BadValue {
        /// Where.
        context: String,
        /// What is wrong.
        message: String,
    },
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::Parse(m) => write!(f, "pack is not valid JSON: {m}"),
            PackError::WrongVersion { found } => {
                write!(
                    f,
                    "pack version {found:?} (this build reads {PACK_VERSION:?})"
                )
            }
            PackError::MissingField { context, field } => {
                write!(f, "{context}: missing required field {field:?}")
            }
            PackError::BadValue { context, message } => write!(f, "{context}: {message}"),
        }
    }
}

impl std::error::Error for PackError {}

/// A full query-pack: corpus recipe + families, all derived from `seed`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPack {
    /// Pack name (shows up in evidence tables).
    pub name: String,
    /// Master seed; every family derives its stream from this and its
    /// own name, so families are independent and reorderable.
    pub seed: u64,
    /// Synthetic-corpus recipe.
    pub corpus: CorpusSpec,
    /// The query families.
    pub families: Vec<Family>,
}

/// Which synthetic corpus the pack runs against.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// `"tiny"`, `"reuters_like"`, or `"enwiki_like"`
    /// ([`SynthConfig`] presets).
    pub preset: String,
    /// Overrides the preset's document count.
    pub num_docs: Option<usize>,
    /// Overrides the preset's corpus seed.
    pub seed: Option<u64>,
}

impl CorpusSpec {
    /// Resolves the preset + overrides into a generator config.
    pub fn synth_config(&self) -> Result<SynthConfig, PackError> {
        let mut config = match self.preset.as_str() {
            "tiny" => SynthConfig::tiny(),
            "reuters_like" => SynthConfig::reuters_like(),
            "enwiki_like" => SynthConfig::enwiki_like(),
            other => {
                return Err(PackError::BadValue {
                    context: "corpus".to_owned(),
                    message: format!("unknown preset {other:?}"),
                });
            }
        };
        if let Some(n) = self.num_docs {
            config.num_docs = n;
        }
        if let Some(s) = self.seed {
            config.seed = s;
        }
        Ok(config)
    }

    /// Generates the corpus and its per-document topic labels
    /// (the quality harness's ground-truth "sources").
    pub fn build(&self) -> Result<(Corpus, Vec<u32>), PackError> {
        Ok(generate_labeled(&self.synth_config()?))
    }
}

/// Term-popularity band a family draws its queries from, mapped onto the
/// kfreq bands of Fig. 12: `tail` = band 1 (rare terms), `torso` =
/// bands 2–3, `head` = bands 4–5 (the most popular terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Band {
    /// kfreq 4–5.
    Head,
    /// kfreq 2–3.
    Torso,
    /// kfreq 1.
    Tail,
}

impl Band {
    /// kfreq values tried in order when drawing a query (first hit wins;
    /// later entries are fallbacks for sparsely populated bands).
    fn kfreq_candidates(self) -> &'static [u8] {
        match self {
            Band::Head => &[5, 4, 3],
            Band::Torso => &[3, 2, 4],
            Band::Tail => &[1, 2],
        }
    }

    /// JSON spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Band::Head => "head",
            Band::Torso => "torso",
            Band::Tail => "tail",
        }
    }
}

/// Whether the family's queries go through the engine's result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Normal serving path ([`divtopk_engine::engine::Engine::search`]).
    Normal,
    /// Cold-cache sweep: every query bypasses the cache
    /// ([`divtopk_engine::engine::Engine::search_uncached`]).
    Bypass,
}

impl CacheMode {
    /// JSON spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheMode::Normal => "normal",
            CacheMode::Bypass => "bypass",
        }
    }
}

/// The family's arrival schedule: a base rate plus a
/// [`ArrivalShape`] modulating it.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Base arrival rate, requests/second.
    pub rate: f64,
    /// Traffic shape.
    pub shape: ArrivalShape,
}

/// Mutation traffic interleaved with a family's queries, replayed
/// through the engine's mutation API mid-family.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationSpec {
    /// No mutations.
    None,
    /// Hot-doc deletion storm: `events` bursts, each tombstoning
    /// `docs_per_event` documents that match the family's hottest term.
    DeleteStorm {
        /// Number of deletion bursts, spread evenly through the family.
        events: usize,
        /// Documents tombstoned per burst.
        docs_per_event: usize,
    },
    /// Adversarial near-duplicate flood: `events` bursts, each adding
    /// `docs_per_event` exact copies of documents matching the family's
    /// hottest term — the redundancy attack diversification must absorb.
    NeardupFlood {
        /// Number of flood bursts.
        events: usize,
        /// Copies added per burst.
        docs_per_event: usize,
    },
}

/// Per-family pass criteria, declared in the pack itself. All deltas are
/// family means of (diversity-on − diversity-off); absent gates are not
/// enforced. The off side is the relevance oracle (plain top-k), so its
/// NDCG and MRR are 1.0 by construction and the relevance deltas are
/// bounded regressions in the style of SNIPPETS.md Snippet 2.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Gates {
    /// Diversity gain floor: mean unique-source@k must rise at least this
    /// much when diversification is on.
    pub min_unique_sources_gain: Option<f64>,
    /// Concentration ceiling: mean max-share@k delta must be ≤ this
    /// (negative values demand an improvement).
    pub max_max_share_delta: Option<f64>,
    /// Mean pairwise-dissimilarity@k gain floor.
    pub min_dissimilarity_gain: Option<f64>,
    /// Relevance guard: mean NDCG@k delta vs. the off oracle must be ≥
    /// this (e.g. −0.05 allows at most a 5-point NDCG sacrifice).
    pub min_ndcg_delta: Option<f64>,
    /// Relevance guard: mean MRR delta vs. the off oracle must be ≥ this.
    pub min_mrr_delta: Option<f64>,
}

impl Gates {
    /// `(json key, threshold)` pairs of the gates that are set.
    pub fn entries(&self) -> Vec<(&'static str, f64)> {
        [
            ("min_unique_sources_gain", self.min_unique_sources_gain),
            ("max_max_share_delta", self.max_max_share_delta),
            ("min_dissimilarity_gain", self.min_dissimilarity_gain),
            ("min_ndcg_delta", self.min_ndcg_delta),
            ("min_mrr_delta", self.min_mrr_delta),
        ]
        .into_iter()
        .filter_map(|(k, v)| v.map(|v| (k, v)))
        .collect()
    }
}

/// One named query family.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Family name (unique within the pack; keys the evidence table and
    /// the per-family RNG stream).
    pub name: String,
    /// Term-popularity band the queries draw from.
    pub band: Band,
    /// Total queries in the family.
    pub queries: usize,
    /// Distinct query pool size (`queries` are Zipf draws from it — the
    /// pool-to-total ratio sets the cache-hit rate a serving trace sees).
    pub distinct: usize,
    /// Zipf exponent of the repeat draws over the pool (0 = uniform).
    pub zipf_exponent: f64,
    /// Fraction of the pool that is multi-keyword (TA) queries.
    pub ta_fraction: f64,
    /// `k` for every query.
    pub k: usize,
    /// `τ` for every query.
    pub tau: f64,
    /// Arrival schedule.
    pub arrival: Arrival,
    /// Cache mode.
    pub cache: CacheMode,
    /// Interleaved mutation traffic.
    pub mutations: MutationSpec,
    /// The diversify mode the family's "on" side runs (the "off" side is
    /// always [`DiversifyMode::None`]). Packs name one of the canonical
    /// configurations (see `MODE_KEYS`); omitted means the exact
    /// default.
    pub mode: DiversifyMode,
    /// Pass criteria.
    pub gates: Gates,
}

/// The canonical pack-file spellings of [`DiversifyMode`]: fixed named
/// configurations, so pack JSON stays a flat enum rather than a parameter
/// bag. `mmr` pins λ = 0.7 (the conventional relevance-leaning setting).
#[allow(clippy::type_complexity)] // (key, constructor) table, not a reusable type
const MODE_KEYS: [(&str, fn() -> DiversifyMode); 8] = [
    ("exact-cut", DiversifyMode::exact),
    ("exact-dp", || DiversifyMode::Exact(ExactAlgorithm::Dp)),
    ("exact-astar", || {
        DiversifyMode::Exact(ExactAlgorithm::AStar)
    }),
    ("none", || DiversifyMode::None),
    ("mmr", || DiversifyMode::mmr(0.7)),
    ("window", DiversifyMode::window),
    ("disc", || DiversifyMode::Disc),
    ("knn", DiversifyMode::knn),
];

/// Resolves a pack-file mode key to its mode.
fn mode_from_key(key: &str) -> Option<DiversifyMode> {
    MODE_KEYS
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, make)| make())
}

/// The inverse of [`mode_from_key`] for the canonical configurations.
/// Non-canonical modes (custom λ, tuned windows) fall back to the mode's
/// bare [`DiversifyMode::name`], which `from_json` rejects — so an
/// unrepresentable pack fails loudly at round-trip instead of silently
/// changing meaning.
fn mode_key(mode: &DiversifyMode) -> &'static str {
    MODE_KEYS
        .iter()
        .find(|(_, make)| make() == *mode)
        .map(|(k, _)| *k)
        .unwrap_or_else(|| mode.name())
}

/// One step of a compiled family script, in replay order.
#[derive(Debug, Clone, PartialEq)]
pub enum PackEvent {
    /// Serve this query.
    Query(Query),
    /// Apply this mutation before the next query.
    Mutate(Mutation),
}

/// A compiled mutation: concrete doc ids, fixed at compile time so the
/// script is byte-reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Tombstone these documents.
    Delete(Vec<DocId>),
    /// Add one exact copy of each of these source documents (the copies'
    /// topic labels follow their sources).
    CloneDocs(Vec<DocId>),
}

/// A family expanded against a concrete corpus: everything the quality
/// evaluator and the serving suites replay.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFamily {
    /// Family name.
    pub name: String,
    /// `k` for every query.
    pub k: usize,
    /// `τ` for every query.
    pub tau: f64,
    /// Cache mode.
    pub cache: CacheMode,
    /// The "on" side's diversify mode (copied from the pack).
    pub mode: DiversifyMode,
    /// Pass criteria (copied from the pack).
    pub gates: Gates,
    /// Arrival offset (ns from family start) of each *query* event, in
    /// script order (mutations are instantaneous).
    pub arrivals_ns: Vec<u64>,
    /// Queries and mutations in replay order.
    pub events: Vec<PackEvent>,
}

impl CompiledFamily {
    /// The queries of the script, in order (mutations skipped).
    pub fn queries(&self) -> impl Iterator<Item = &Query> {
        self.events.iter().filter_map(|e| match e {
            PackEvent::Query(q) => Some(q),
            PackEvent::Mutate(_) => None,
        })
    }
}

/// FNV-1a of a name — the per-family seed perturbation. Stable across
/// platforms (pure integer arithmetic), so compiled scripts are too.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl QueryPack {
    // ------------------------------------------------------ compilation

    /// Expands every family into its deterministic replay script against
    /// `corpus` (which must come from [`CorpusSpec::build`] of this pack)
    /// and its inverted `index`. Same pack + same corpus ⇒ byte-identical
    /// output, always.
    pub fn compile(
        &self,
        corpus: &Corpus,
        index: &InvertedIndex,
    ) -> Result<Vec<CompiledFamily>, PackError> {
        self.families
            .iter()
            .map(|f| f.compile(self.seed, corpus, index))
            .collect()
    }

    /// The canonical pack committed at `benchmarks/query-pack.v1.json`
    /// (regenerate with `quality_gate --emit-default-pack`). Five
    /// families over the tiny synthetic corpus: a bursty head-term
    /// family, the realistic torso mix the serving suites replay, a
    /// cold-cache tail sweep on a diurnal schedule, a hot-doc deletion
    /// storm, and an adversarial near-duplicate flood. Gate thresholds
    /// were calibrated from measured reality (see DESIGN.md §12) with
    /// enough margin to absorb seed-to-seed noise — the quality harness
    /// is deterministic, so any drift is a code change, not noise.
    pub fn default_pack() -> QueryPack {
        // Thresholds below are calibrated from the measured deltas of a
        // `quality_gate` run on this exact pack (deterministic modulo
        // latency): each floor sits at roughly half the measured gain and
        // each relevance guard at roughly twice the measured sacrifice, so
        // a regression has to move the metric materially to trip a gate.
        let relevance_guards = Gates {
            min_ndcg_delta: Some(-0.05),
            min_mrr_delta: Some(-0.25),
            ..Gates::default()
        };
        QueryPack {
            name: "default".to_owned(),
            seed: 20260807,
            corpus: CorpusSpec {
                preset: "tiny".to_owned(),
                num_docs: Some(800),
                seed: Some(7),
            },
            families: vec![
                Family {
                    name: "head_burst".to_owned(),
                    band: Band::Head,
                    queries: 48,
                    distinct: 12,
                    zipf_exponent: 1.0,
                    ta_fraction: 0.25,
                    k: 10,
                    tau: 0.3,
                    arrival: Arrival {
                        rate: 200.0,
                        shape: ArrivalShape::Burst {
                            factor: 8.0,
                            period_s: 0.5,
                            burst_s: 0.1,
                        },
                    },
                    cache: CacheMode::Normal,
                    mode: DiversifyMode::exact(),
                    mutations: MutationSpec::None,
                    gates: Gates {
                        // Measured: +1.000 unique sources, +0.017 dissim.
                        min_unique_sources_gain: Some(0.5),
                        min_dissimilarity_gain: Some(0.008),
                        ..relevance_guards.clone()
                    },
                },
                Family {
                    name: "torso_mix".to_owned(),
                    band: Band::Torso,
                    queries: 64,
                    distinct: 32,
                    zipf_exponent: 1.0,
                    ta_fraction: 0.25,
                    k: 10,
                    tau: 0.3,
                    arrival: Arrival {
                        rate: 200.0,
                        shape: ArrivalShape::Uniform,
                    },
                    cache: CacheMode::Normal,
                    mode: DiversifyMode::exact(),
                    mutations: MutationSpec::None,
                    gates: Gates {
                        // Measured: +0.009 dissim, +0.011 max-share.
                        min_dissimilarity_gain: Some(0.004),
                        max_max_share_delta: Some(0.05),
                        ..relevance_guards.clone()
                    },
                },
                Family {
                    name: "tail_cold".to_owned(),
                    band: Band::Tail,
                    queries: 32,
                    distinct: 32,
                    zipf_exponent: 0.0,
                    ta_fraction: 0.0,
                    k: 5,
                    tau: 0.3,
                    arrival: Arrival {
                        rate: 100.0,
                        shape: ArrivalShape::Diurnal {
                            amplitude: 0.8,
                            period_s: 2.0,
                        },
                    },
                    cache: CacheMode::Bypass,
                    mode: DiversifyMode::exact(),
                    mutations: MutationSpec::None,
                    gates: Gates {
                        // Measured: +0.125 unique, +0.113 dissim, −0.043
                        // max-share, −0.029 NDCG (k=5 on sparse tails).
                        min_unique_sources_gain: Some(0.05),
                        min_dissimilarity_gain: Some(0.05),
                        max_max_share_delta: Some(0.0),
                        min_ndcg_delta: Some(-0.1),
                        ..relevance_guards.clone()
                    },
                },
                Family {
                    name: "delete_storm".to_owned(),
                    band: Band::Head,
                    queries: 32,
                    distinct: 8,
                    zipf_exponent: 1.0,
                    ta_fraction: 0.25,
                    k: 10,
                    tau: 0.3,
                    arrival: Arrival {
                        rate: 200.0,
                        shape: ArrivalShape::Uniform,
                    },
                    cache: CacheMode::Normal,
                    mode: DiversifyMode::exact(),
                    mutations: MutationSpec::DeleteStorm {
                        events: 4,
                        docs_per_event: 3,
                    },
                    gates: Gates {
                        // Measured: +0.187 unique, +0.012 dissim.
                        min_unique_sources_gain: Some(0.08),
                        min_dissimilarity_gain: Some(0.005),
                        ..relevance_guards.clone()
                    },
                },
                Family {
                    name: "neardup_flood".to_owned(),
                    band: Band::Torso,
                    queries: 32,
                    distinct: 8,
                    zipf_exponent: 1.0,
                    ta_fraction: 0.25,
                    k: 10,
                    tau: 0.3,
                    arrival: Arrival {
                        rate: 200.0,
                        shape: ArrivalShape::Uniform,
                    },
                    cache: CacheMode::Normal,
                    mode: DiversifyMode::exact(),
                    mutations: MutationSpec::NeardupFlood {
                        events: 4,
                        docs_per_event: 6,
                    },
                    gates: Gates {
                        // Measured: +2.406 unique, −0.146 max-share,
                        // +0.096 dissim, −0.075 NDCG — diversification
                        // earns its keep here or the gate says so.
                        min_unique_sources_gain: Some(1.0),
                        max_max_share_delta: Some(-0.05),
                        min_dissimilarity_gain: Some(0.04),
                        min_ndcg_delta: Some(-0.15),
                        ..relevance_guards.clone()
                    },
                },
                // One gated family per cheap diversify mode, all on the
                // same torso mix so their gates are comparable with
                // `torso_mix` (exact) above. Thresholds calibrated the
                // same way: floors at roughly half the measured gain,
                // relevance guards at roughly twice the sacrifice.
                Family {
                    name: "torso_mmr".to_owned(),
                    band: Band::Torso,
                    queries: 48,
                    distinct: 24,
                    zipf_exponent: 1.0,
                    ta_fraction: 0.25,
                    k: 10,
                    tau: 0.3,
                    arrival: Arrival {
                        rate: 200.0,
                        shape: ArrivalShape::Uniform,
                    },
                    cache: CacheMode::Normal,
                    mode: mode_from_key("mmr").expect("canonical"),
                    mutations: MutationSpec::None,
                    gates: Gates {
                        // Measured: +0.375 unique, +0.009 dissim,
                        // −0.005 NDCG.
                        min_unique_sources_gain: Some(0.15),
                        min_dissimilarity_gain: Some(0.004),
                        ..relevance_guards.clone()
                    },
                },
                Family {
                    name: "torso_window".to_owned(),
                    band: Band::Torso,
                    queries: 48,
                    distinct: 24,
                    zipf_exponent: 1.0,
                    ta_fraction: 0.25,
                    k: 10,
                    tau: 0.3,
                    arrival: Arrival {
                        rate: 200.0,
                        shape: ArrivalShape::Uniform,
                    },
                    cache: CacheMode::Normal,
                    mode: mode_from_key("window").expect("canonical"),
                    mutations: MutationSpec::None,
                    gates: Gates {
                        // The window leaf is conservative by design: it
                        // must never *hurt* (floors at zero), and its
                        // relevance cost is bounded like the others.
                        min_unique_sources_gain: Some(0.0),
                        min_dissimilarity_gain: Some(0.0),
                        ..relevance_guards.clone()
                    },
                },
                Family {
                    name: "torso_disc".to_owned(),
                    band: Band::Torso,
                    queries: 48,
                    distinct: 24,
                    zipf_exponent: 1.0,
                    ta_fraction: 0.25,
                    k: 10,
                    tau: 0.3,
                    arrival: Arrival {
                        rate: 200.0,
                        shape: ArrivalShape::Uniform,
                    },
                    cache: CacheMode::Normal,
                    mode: mode_from_key("disc").expect("canonical"),
                    mutations: MutationSpec::None,
                    gates: Gates {
                        // Measured: +0.012 dissim, −0.040 max-share
                        // (DisC enforces the pairwise constraint, like
                        // exact), −0.001 NDCG.
                        min_dissimilarity_gain: Some(0.005),
                        max_max_share_delta: Some(0.0),
                        ..relevance_guards.clone()
                    },
                },
                Family {
                    name: "torso_knn".to_owned(),
                    band: Band::Torso,
                    queries: 48,
                    distinct: 24,
                    zipf_exponent: 1.0,
                    ta_fraction: 0.25,
                    k: 10,
                    tau: 0.3,
                    arrival: Arrival {
                        rate: 200.0,
                        shape: ArrivalShape::Uniform,
                    },
                    cache: CacheMode::Normal,
                    mode: mode_from_key("knn").expect("canonical"),
                    mutations: MutationSpec::None,
                    gates: Gates {
                        // Measured: +0.958 unique, +0.016 dissim,
                        // −0.004 NDCG.
                        min_unique_sources_gain: Some(0.4),
                        min_dissimilarity_gain: Some(0.008),
                        ..relevance_guards
                    },
                },
            ],
        }
    }

    // ------------------------------------------------------ JSON I/O

    /// Parses and validates a pack document. Wrong `version`, missing
    /// fields, unknown keys, and out-of-range values are all typed
    /// [`PackError`]s.
    pub fn from_json(s: &str) -> Result<QueryPack, PackError> {
        let doc = json::parse(s).map_err(PackError::Parse)?;
        let ctx = "pack";
        check_keys(
            &doc,
            ctx,
            &["version", "name", "seed", "corpus", "families"],
        )?;
        let version = req_str(&doc, ctx, "version")?;
        if version != PACK_VERSION {
            return Err(PackError::WrongVersion {
                found: version.to_owned(),
            });
        }
        let name = req_str(&doc, ctx, "name")?.to_owned();
        let seed = req_u64(&doc, ctx, "seed")?;
        let corpus_v = req(&doc, ctx, "corpus")?;
        check_keys(corpus_v, "corpus", &["preset", "num_docs", "seed"])?;
        let corpus = CorpusSpec {
            preset: req_str(corpus_v, "corpus", "preset")?.to_owned(),
            num_docs: opt_u64(corpus_v, "corpus", "num_docs")?.map(|n| n as usize),
            seed: opt_u64(corpus_v, "corpus", "seed")?,
        };
        corpus.synth_config()?; // validate the preset eagerly
        let families_v = req(&doc, ctx, "families")?
            .as_array()
            .ok_or_else(|| bad(ctx, "field \"families\" must be an array"))?;
        if families_v.is_empty() {
            return Err(bad(ctx, "\"families\" must not be empty"));
        }
        let mut families = Vec::with_capacity(families_v.len());
        for (i, fam) in families_v.iter().enumerate() {
            families.push(parse_family(fam, i)?);
        }
        let mut names: Vec<&str> = families.iter().map(|f| f.name.as_str()).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err(bad(ctx, "family names must be unique"));
        }
        Ok(QueryPack {
            name,
            seed,
            corpus,
            families,
        })
    }

    /// The pack as a JSON DOM (inverse of [`QueryPack::from_json`]).
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".into(), Value::String(PACK_VERSION.into())),
            ("name".into(), Value::String(self.name.clone())),
            ("seed".into(), Value::Number(self.seed as f64)),
            (
                "corpus".into(),
                Value::Object(
                    [
                        Some(("preset".into(), Value::String(self.corpus.preset.clone()))),
                        self.corpus
                            .num_docs
                            .map(|n| ("num_docs".into(), Value::Number(n as f64))),
                        self.corpus
                            .seed
                            .map(|s| ("seed".into(), Value::Number(s as f64))),
                    ]
                    .into_iter()
                    .flatten()
                    .collect(),
                ),
            ),
            (
                "families".into(),
                Value::Array(self.families.iter().map(family_to_value).collect()),
            ),
        ])
    }

    /// Pretty-printed JSON (the committed on-disk form), newline-terminated.
    pub fn to_json_pretty(&self) -> String {
        let mut s = json::emit_pretty(&self.to_value());
        s.push('\n');
        s
    }
}

impl Family {
    /// Expands this family against the concrete corpus: draws the
    /// distinct query pool from the family's band, Zipf-samples the
    /// query sequence, schedules arrivals, and fixes mutation victims —
    /// all from `Pcg(pack_seed ^ fnv1a(name))`, so the script is a pure
    /// function of (pack, corpus).
    fn compile(
        &self,
        pack_seed: u64,
        corpus: &Corpus,
        index: &InvertedIndex,
    ) -> Result<CompiledFamily, PackError> {
        let ctx = format!("family {:?}", self.name);
        let mut rng = Pcg::new(pack_seed ^ fnv1a(&self.name));
        // Distinct pool: band draws with per-entry seeds.
        let mut pool: Vec<Query> = Vec::with_capacity(self.distinct);
        for j in 0..self.distinct {
            let is_ta = rng.chance(self.ta_fraction);
            let num_terms = if is_ta { 2 } else { 1 };
            let qseed = pack_seed ^ fnv1a(&self.name) ^ (j as u64).wrapping_mul(0x9e3779b97f4a7c15);
            let drawn = self
                .band
                .kfreq_candidates()
                .iter()
                .find_map(|&kfreq| query_for_band(corpus, kfreq, num_terms, qseed));
            let Some(q) = drawn else {
                return Err(PackError::BadValue {
                    context: ctx,
                    message: format!(
                        "band {:?} has no usable terms in this corpus",
                        self.band.as_str()
                    ),
                });
            };
            pool.push(if num_terms == 1 {
                Query::Scan(q.terms[0])
            } else {
                Query::Keywords(q)
            });
        }
        // Zipf CDF over pool ranks (exponent 0 = uniform).
        let mut cdf = Vec::with_capacity(pool.len());
        let mut acc = 0.0;
        for rank in 0..pool.len() {
            acc += 1.0 / ((rank + 1) as f64).powf(self.zipf_exponent);
            cdf.push(acc);
        }
        // Mutation victims: documents matching the family's hottest pool
        // term ("hot docs"), chunked per event.
        let (mutations, kind_is_delete) = match self.mutations {
            MutationSpec::None => (Vec::new(), false),
            MutationSpec::DeleteStorm {
                events,
                docs_per_event,
            } => (
                mutation_chunks(&pool, corpus, index, events, docs_per_event, &ctx)?,
                true,
            ),
            MutationSpec::NeardupFlood {
                events,
                docs_per_event,
            } => (
                mutation_chunks(&pool, corpus, index, events, docs_per_event, &ctx)?,
                false,
            ),
        };
        // Interleave: mutation event e fires before query index
        // (e+1)·queries/(events+1) — evenly through the family.
        let mut fire_at = vec![usize::MAX; mutations.len()];
        for (e, slot) in fire_at.iter_mut().enumerate() {
            *slot = (e + 1) * self.queries / (mutations.len() + 1);
        }
        let mut events = Vec::with_capacity(self.queries + mutations.len());
        let mut next_mutation = 0;
        for i in 0..self.queries {
            while next_mutation < mutations.len() && fire_at[next_mutation] == i {
                let docs = mutations[next_mutation].clone();
                events.push(PackEvent::Mutate(if kind_is_delete {
                    Mutation::Delete(docs)
                } else {
                    Mutation::CloneDocs(docs)
                }));
                next_mutation += 1;
            }
            events.push(PackEvent::Query(pool[rng.sample_cdf(&cdf)].clone()));
        }
        Ok(CompiledFamily {
            name: self.name.clone(),
            k: self.k,
            tau: self.tau,
            cache: self.cache,
            mode: self.mode.clone(),
            gates: self.gates.clone(),
            arrivals_ns: self
                .arrival
                .shape
                .offsets_ns(self.arrival.rate, self.queries),
            events,
        })
    }
}

/// Victim doc-id chunks for mutation events: the posting list of the
/// hottest (highest-df) term used by the pool's queries, split into
/// per-event chunks (wrapping when the list is short, deduplicated
/// within an event).
fn mutation_chunks(
    pool: &[Query],
    corpus: &Corpus,
    index: &InvertedIndex,
    events: usize,
    docs_per_event: usize,
    ctx: &str,
) -> Result<Vec<Vec<DocId>>, PackError> {
    let hottest = pool
        .iter()
        .flat_map(|q| match q {
            Query::Scan(t) => std::slice::from_ref(t),
            Query::Keywords(kq) => kq.terms.as_slice(),
        })
        .copied()
        .max_by_key(|&t| corpus.doc_freq(t));
    let Some(term) = hottest else {
        return Err(PackError::BadValue {
            context: ctx.to_owned(),
            message: "mutation family has an empty query pool".to_owned(),
        });
    };
    let postings = index.postings(term);
    if postings.is_empty() {
        return Err(PackError::BadValue {
            context: ctx.to_owned(),
            message: format!("hot term {term} has no postings"),
        });
    }
    Ok((0..events)
        .map(|e| {
            let mut docs: Vec<DocId> = (0..docs_per_event)
                .map(|x| postings[(e * docs_per_event + x) % postings.len()].doc)
                .collect();
            docs.sort_unstable();
            docs.dedup();
            docs
        })
        .collect())
}

// ---------------------------------------------------------------- JSON helpers

fn bad(context: &str, message: impl Into<String>) -> PackError {
    PackError::BadValue {
        context: context.to_owned(),
        message: message.into(),
    }
}

fn req<'a>(obj: &'a Value, context: &str, field: &'static str) -> Result<&'a Value, PackError> {
    obj.get(field).ok_or_else(|| PackError::MissingField {
        context: context.to_owned(),
        field,
    })
}

fn req_str<'a>(obj: &'a Value, context: &str, field: &'static str) -> Result<&'a str, PackError> {
    req(obj, context, field)?
        .as_str()
        .ok_or_else(|| bad(context, format!("field {field:?} must be a string")))
}

fn req_f64(obj: &Value, context: &str, field: &'static str) -> Result<f64, PackError> {
    let n = req(obj, context, field)?
        .as_f64()
        .ok_or_else(|| bad(context, format!("field {field:?} must be a number")))?;
    if !n.is_finite() {
        return Err(bad(context, format!("field {field:?} must be finite")));
    }
    Ok(n)
}

fn req_u64(obj: &Value, context: &str, field: &'static str) -> Result<u64, PackError> {
    let n = req_f64(obj, context, field)?;
    // LINT-ALLOW(float-eq): exact IEEE-754 integrality test on fract()
    // (see json::format_number) — rejecting any fractional part is the
    // point, so an epsilon would be wrong.
    if n < 0.0 || n.fract() != 0.0 || n >= 9_007_199_254_740_992.0 {
        return Err(bad(
            context,
            format!("field {field:?} must be a non-negative integer below 2^53"),
        ));
    }
    Ok(n as u64)
}

fn opt_u64(obj: &Value, context: &str, field: &'static str) -> Result<Option<u64>, PackError> {
    match obj.get(field) {
        None => Ok(None),
        Some(_) => req_u64(obj, context, field).map(Some),
    }
}

fn opt_f64(obj: &Value, context: &str, field: &'static str) -> Result<Option<f64>, PackError> {
    match obj.get(field) {
        None => Ok(None),
        Some(_) => req_f64(obj, context, field).map(Some),
    }
}

/// Rejects unknown keys — a misspelled gate or field must fail loudly,
/// not silently not-enforce.
fn check_keys(obj: &Value, context: &str, allowed: &[&str]) -> Result<(), PackError> {
    let fields = obj
        .as_object()
        .ok_or_else(|| bad(context, "must be an object"))?;
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(bad(
                context,
                format!("unknown field {key:?} (allowed: {allowed:?})"),
            ));
        }
    }
    Ok(())
}

fn parse_family(v: &Value, index: usize) -> Result<Family, PackError> {
    let pre_ctx = format!("family #{index}");
    let name = req_str(v, &pre_ctx, "name")?.to_owned();
    let ctx = format!("family {name:?}");
    check_keys(
        v,
        &ctx,
        &[
            "name",
            "band",
            "queries",
            "distinct",
            "zipf_exponent",
            "ta_fraction",
            "k",
            "tau",
            "arrival",
            "cache",
            "mode",
            "mutations",
            "gates",
        ],
    )?;
    let band = match req_str(v, &ctx, "band")? {
        "head" => Band::Head,
        "torso" => Band::Torso,
        "tail" => Band::Tail,
        other => return Err(bad(&ctx, format!("unknown band {other:?}"))),
    };
    let queries = req_u64(v, &ctx, "queries")? as usize;
    let distinct = req_u64(v, &ctx, "distinct")? as usize;
    if queries == 0 || distinct == 0 {
        return Err(bad(&ctx, "\"queries\" and \"distinct\" must be positive"));
    }
    let zipf_exponent = req_f64(v, &ctx, "zipf_exponent")?;
    let ta_fraction = req_f64(v, &ctx, "ta_fraction")?;
    if !(0.0..=1.0).contains(&ta_fraction) {
        return Err(bad(&ctx, "\"ta_fraction\" must lie in [0, 1]"));
    }
    let k = req_u64(v, &ctx, "k")? as usize;
    if k == 0 {
        return Err(bad(&ctx, "\"k\" must be positive"));
    }
    let tau = req_f64(v, &ctx, "tau")?;
    if !(0.0..=1.0).contains(&tau) {
        return Err(bad(&ctx, "\"tau\" must lie in [0, 1]"));
    }
    let arrival_v = req(v, &ctx, "arrival")?;
    let arrival_ctx = format!("{ctx} arrival");
    let rate = req_f64(arrival_v, &arrival_ctx, "rate")?;
    if rate <= 0.0 {
        return Err(bad(&arrival_ctx, "\"rate\" must be positive"));
    }
    let shape = match req_str(arrival_v, &arrival_ctx, "shape")? {
        "uniform" => {
            check_keys(arrival_v, &arrival_ctx, &["shape", "rate"])?;
            ArrivalShape::Uniform
        }
        "burst" => {
            check_keys(
                arrival_v,
                &arrival_ctx,
                &["shape", "rate", "factor", "period_s", "burst_s"],
            )?;
            let factor = req_f64(arrival_v, &arrival_ctx, "factor")?;
            let period_s = req_f64(arrival_v, &arrival_ctx, "period_s")?;
            let burst_s = req_f64(arrival_v, &arrival_ctx, "burst_s")?;
            if factor < 1.0 || period_s <= 0.0 || !(0.0..=period_s).contains(&burst_s) {
                return Err(bad(&arrival_ctx, "burst parameters out of range"));
            }
            ArrivalShape::Burst {
                factor,
                period_s,
                burst_s,
            }
        }
        "diurnal" => {
            check_keys(
                arrival_v,
                &arrival_ctx,
                &["shape", "rate", "amplitude", "period_s"],
            )?;
            let amplitude = req_f64(arrival_v, &arrival_ctx, "amplitude")?;
            let period_s = req_f64(arrival_v, &arrival_ctx, "period_s")?;
            if !(0.0..1.0).contains(&amplitude) || period_s <= 0.0 {
                return Err(bad(&arrival_ctx, "diurnal parameters out of range"));
            }
            ArrivalShape::Diurnal {
                amplitude,
                period_s,
            }
        }
        other => return Err(bad(&arrival_ctx, format!("unknown shape {other:?}"))),
    };
    let cache = match req_str(v, &ctx, "cache")? {
        "normal" => CacheMode::Normal,
        "bypass" => CacheMode::Bypass,
        other => return Err(bad(&ctx, format!("unknown cache mode {other:?}"))),
    };
    let mode = match v.get("mode") {
        None => DiversifyMode::exact(),
        Some(value) => {
            let key = value
                .as_str()
                .ok_or_else(|| bad(&ctx, "field \"mode\" must be a string"))?;
            mode_from_key(key).ok_or_else(|| {
                let known: Vec<&str> = MODE_KEYS.iter().map(|(k, _)| *k).collect();
                bad(&ctx, format!("unknown mode {key:?} (known: {known:?})"))
            })?
        }
    };
    let mutations_v = req(v, &ctx, "mutations")?;
    let mut_ctx = format!("{ctx} mutations");
    let mutations = match req_str(mutations_v, &mut_ctx, "kind")? {
        "none" => {
            check_keys(mutations_v, &mut_ctx, &["kind"])?;
            MutationSpec::None
        }
        kind @ ("delete_storm" | "neardup_flood") => {
            check_keys(mutations_v, &mut_ctx, &["kind", "events", "docs_per_event"])?;
            let events = req_u64(mutations_v, &mut_ctx, "events")? as usize;
            let docs_per_event = req_u64(mutations_v, &mut_ctx, "docs_per_event")? as usize;
            if events == 0 || docs_per_event == 0 {
                return Err(bad(
                    &mut_ctx,
                    "\"events\" and \"docs_per_event\" must be positive",
                ));
            }
            if kind == "delete_storm" {
                MutationSpec::DeleteStorm {
                    events,
                    docs_per_event,
                }
            } else {
                MutationSpec::NeardupFlood {
                    events,
                    docs_per_event,
                }
            }
        }
        other => return Err(bad(&mut_ctx, format!("unknown mutation kind {other:?}"))),
    };
    let gates_v = req(v, &ctx, "gates")?;
    let gates_ctx = format!("{ctx} gates");
    check_keys(
        gates_v,
        &gates_ctx,
        &[
            "min_unique_sources_gain",
            "max_max_share_delta",
            "min_dissimilarity_gain",
            "min_ndcg_delta",
            "min_mrr_delta",
        ],
    )?;
    let gates = Gates {
        min_unique_sources_gain: opt_f64(gates_v, &gates_ctx, "min_unique_sources_gain")?,
        max_max_share_delta: opt_f64(gates_v, &gates_ctx, "max_max_share_delta")?,
        min_dissimilarity_gain: opt_f64(gates_v, &gates_ctx, "min_dissimilarity_gain")?,
        min_ndcg_delta: opt_f64(gates_v, &gates_ctx, "min_ndcg_delta")?,
        min_mrr_delta: opt_f64(gates_v, &gates_ctx, "min_mrr_delta")?,
    };
    Ok(Family {
        name,
        band,
        queries,
        distinct,
        zipf_exponent,
        ta_fraction,
        k,
        tau,
        arrival: Arrival { rate, shape },
        cache,
        mode,
        mutations,
        gates,
    })
}

fn family_to_value(f: &Family) -> Value {
    let arrival = match &f.arrival.shape {
        ArrivalShape::Uniform => Value::Object(vec![
            ("shape".into(), Value::String("uniform".into())),
            ("rate".into(), Value::Number(f.arrival.rate)),
        ]),
        ArrivalShape::Burst {
            factor,
            period_s,
            burst_s,
        } => Value::Object(vec![
            ("shape".into(), Value::String("burst".into())),
            ("rate".into(), Value::Number(f.arrival.rate)),
            ("factor".into(), Value::Number(*factor)),
            ("period_s".into(), Value::Number(*period_s)),
            ("burst_s".into(), Value::Number(*burst_s)),
        ]),
        ArrivalShape::Diurnal {
            amplitude,
            period_s,
        } => Value::Object(vec![
            ("shape".into(), Value::String("diurnal".into())),
            ("rate".into(), Value::Number(f.arrival.rate)),
            ("amplitude".into(), Value::Number(*amplitude)),
            ("period_s".into(), Value::Number(*period_s)),
        ]),
    };
    let mutations = match f.mutations {
        MutationSpec::None => Value::Object(vec![("kind".into(), Value::String("none".into()))]),
        MutationSpec::DeleteStorm {
            events,
            docs_per_event,
        } => Value::Object(vec![
            ("kind".into(), Value::String("delete_storm".into())),
            ("events".into(), Value::Number(events as f64)),
            (
                "docs_per_event".into(),
                Value::Number(docs_per_event as f64),
            ),
        ]),
        MutationSpec::NeardupFlood {
            events,
            docs_per_event,
        } => Value::Object(vec![
            ("kind".into(), Value::String("neardup_flood".into())),
            ("events".into(), Value::Number(events as f64)),
            (
                "docs_per_event".into(),
                Value::Number(docs_per_event as f64),
            ),
        ]),
    };
    let gates = Value::Object(
        f.gates
            .entries()
            .into_iter()
            .map(|(k, v)| (k.to_owned(), Value::Number(v)))
            .collect(),
    );
    Value::Object(vec![
        ("name".into(), Value::String(f.name.clone())),
        ("band".into(), Value::String(f.band.as_str().into())),
        ("queries".into(), Value::Number(f.queries as f64)),
        ("distinct".into(), Value::Number(f.distinct as f64)),
        ("zipf_exponent".into(), Value::Number(f.zipf_exponent)),
        ("ta_fraction".into(), Value::Number(f.ta_fraction)),
        ("k".into(), Value::Number(f.k as f64)),
        ("tau".into(), Value::Number(f.tau)),
        ("arrival".into(), arrival),
        ("cache".into(), Value::String(f.cache.as_str().into())),
        ("mode".into(), Value::String(mode_key(&f.mode).into())),
        ("mutations".into(), mutations),
        ("gates".into(), gates),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pack() -> QueryPack {
        let mut pack = QueryPack::default_pack();
        for f in &mut pack.families {
            f.queries = 8;
            f.distinct = 4;
        }
        pack
    }

    #[test]
    fn default_pack_round_trips_through_json() {
        let pack = QueryPack::default_pack();
        let text = pack.to_json_pretty();
        assert!(json::validate(&text).is_ok());
        let back = QueryPack::from_json(&text).unwrap();
        assert_eq!(pack, back);
    }

    #[test]
    fn compile_is_deterministic_and_covers_all_event_kinds() {
        let pack = small_pack();
        let (corpus, _labels) = pack.corpus.build().unwrap();
        let index = InvertedIndex::build(&corpus);
        let a = pack.compile(&corpus, &index).unwrap();
        let b = pack.compile(&corpus, &index).unwrap();
        assert_eq!(a, b, "compiled scripts must be byte-identical");
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // The default pack exercises every event kind.
        let all: Vec<&PackEvent> = a.iter().flat_map(|f| &f.events).collect();
        assert!(
            all.iter()
                .any(|e| matches!(e, PackEvent::Query(Query::Scan(_))))
        );
        assert!(
            all.iter()
                .any(|e| matches!(e, PackEvent::Query(Query::Keywords(_))))
        );
        assert!(
            all.iter()
                .any(|e| matches!(e, PackEvent::Mutate(Mutation::Delete(_))))
        );
        assert!(
            all.iter()
                .any(|e| matches!(e, PackEvent::Mutate(Mutation::CloneDocs(_))))
        );
        // Each family yields exactly `queries` query events + arrivals.
        for (family, compiled) in pack.families.iter().zip(&a) {
            assert_eq!(compiled.queries().count(), family.queries);
            assert_eq!(compiled.arrivals_ns.len(), family.queries);
            assert!(compiled.arrivals_ns.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn wrong_version_and_missing_fields_are_typed_errors() {
        let pack = QueryPack::default_pack();
        // Wrong version.
        let wrong = pack
            .to_json_pretty()
            .replace(PACK_VERSION, "divtopk-pack/9");
        assert_eq!(
            QueryPack::from_json(&wrong),
            Err(PackError::WrongVersion {
                found: "divtopk-pack/9".into()
            })
        );
        // Missing version.
        assert!(matches!(
            QueryPack::from_json(r#"{"name": "x"}"#),
            Err(PackError::MissingField {
                field: "version",
                ..
            })
        ));
        // Missing family field: drop "band" from the first family.
        let mut v = pack.to_value();
        if let Value::Object(fields) = &mut v {
            let families = fields
                .iter_mut()
                .find(|(k, _)| k == "families")
                .map(|(_, v)| v)
                .unwrap();
            if let Value::Array(items) = families {
                if let Value::Object(fam) = &mut items[0] {
                    fam.retain(|(k, _)| k != "band");
                }
            }
        }
        let err = QueryPack::from_json(&json::emit(&v)).unwrap_err();
        assert!(
            matches!(err, PackError::MissingField { field: "band", .. }),
            "{err:?}"
        );
        // Not JSON at all.
        assert!(matches!(
            QueryPack::from_json("{nope"),
            Err(PackError::Parse(_))
        ));
    }

    #[test]
    fn unknown_keys_and_bad_values_are_rejected() {
        let pack = QueryPack::default_pack();
        // A typo'd gate key must not be silently ignored.
        let mut v = pack.to_value();
        if let Value::Object(fields) = &mut v {
            let families = fields
                .iter_mut()
                .find(|(k, _)| k == "families")
                .map(|(_, v)| v)
                .unwrap();
            if let Value::Array(items) = families {
                if let Value::Object(fam) = &mut items[0] {
                    let gates = fam
                        .iter_mut()
                        .find(|(k, _)| k == "gates")
                        .map(|(_, v)| v)
                        .unwrap();
                    if let Value::Object(g) = gates {
                        g.push(("min_ndgc_delta".into(), Value::Number(0.0)));
                    }
                }
            }
        }
        let err = QueryPack::from_json(&json::emit(&v)).unwrap_err();
        assert!(
            matches!(&err, PackError::BadValue { message, .. } if message.contains("min_ndgc_delta")),
            "{err:?}"
        );
        // Out-of-range τ.
        let bad_tau = pack
            .to_json_pretty()
            .replacen("\"tau\": 0.", "\"tau\": 7.", 1);
        assert!(matches!(
            QueryPack::from_json(&bad_tau),
            Err(PackError::BadValue { .. })
        ));
        // Unknown corpus preset.
        let bad_preset = pack.to_json_pretty().replace("\"tiny\"", "\"huge\"");
        assert!(matches!(
            QueryPack::from_json(&bad_preset),
            Err(PackError::BadValue { .. })
        ));
    }
}
