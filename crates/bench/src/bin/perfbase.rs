//! `perfbase` — the reproducible performance baseline behind `BENCH_*.json`.
//!
//! Runs pinned suites (planted-cluster graphs, a path graph, synthetic
//! enwiki/reuters corpora queries, and the serving-engine batch-throughput
//! trace) through the exact algorithms and emits one machine-readable JSON
//! file with wall time and allocator peak per cell, so every PR leaves a
//! comparable trajectory point (DESIGN.md §7–§8). The `div-astar` cells
//! run under **both** kernels — `bitset` and `sorted-vec` (ablation AB5) —
//! and the summary reports the median speedup between them.
//!
//! The **serving throughput** suite replays a fixed Zipf-repeating query
//! trace (head queries repeat, as in real search traffic) against the
//! sharded [`Engine`] at 1/2/4/8 shards and against the naive baseline
//! (one uncached `DiversifiedSearcher` call per query): queries/sec per
//! configuration, plus the engine-vs-baseline speedup and the cache hit
//! rate, land in the summary. Worker-thread count and trace shape are
//! recorded so the numbers are interpretable on any machine (on a 1-CPU
//! container the gain is the result cache + the tighter merged TA bound;
//! on multicore the batch pool adds parallel speedup on top).
//!
//! The **live update** suite replays an interleaved add/delete/query
//! trace (with periodic compactions) against the segmented engine and
//! against the rebuild-per-mutation baseline (the pre-PR-4 serving shape:
//! a from-scratch `InvertedIndex::build` + weight table after every
//! mutation batch): queries/sec under the mutation stream, the p95
//! staleness-free read latency of the segmented engine, and the
//! segmented-vs-rebuild speedup land in the summary. Every run asserts —
//! query by query — that the segmented answers agree with the rebuilt
//! oracle (byte-identical for scans, equal optima for TA), and finishes
//! with the data-level `verify_rebuild_equivalence` check.
//!
//! The **cold start** suite measures restart both ways — snapshot load
//! (`Engine::load_snapshot`, DESIGN.md §10) versus rebuilding the same
//! serving state from the in-memory documents (vocabulary + statistics +
//! index + weights + tombstone replay) — asserting, before any timing,
//! that the loaded engine answers byte-identically to the engine that
//! saved the snapshot.
//!
//! ```text
//! cargo run --release -p divtopk-bench --bin perfbase              # full → BENCH_6.json
//! cargo run --release -p divtopk-bench --bin perfbase -- --smoke   # tiny CI variant
//! cargo run --release -p divtopk-bench --bin perfbase -- --out target/BENCH.json --runs 7
//! cargo run --release -p divtopk-bench --bin perfbase -- --verify target/BENCH.json
//! ```
//!
//! The binary validates its own output (strict JSON well-formedness and a
//! non-empty cell list) and exits non-zero on any inconsistency, including
//! a best-score disagreement between the two kernels on the same cell and
//! any sharded-vs-unsharded, segmented-vs-rebuilt, or loaded-vs-saved
//! answer disagreement — the measurement run doubles as an
//! oracle-equivalence check. `--verify PATH` re-reads a finished
//! trajectory file through the [`json`] DOM and asserts every expected
//! suite produced cells and every expected summary key is present and
//! finite (the CI gate).

use divtopk_bench::quality::evaluate;
use divtopk_bench::workload::QueryPack;
use divtopk_bench::{Measurement, PeakAlloc, json, measure};
use divtopk_core::astar::{AStarConfig, KernelMode, div_astar_configured};
use divtopk_core::prelude::*;
use divtopk_core::testgen::{self, ClusterConfig};
use divtopk_engine::prelude::*;
use divtopk_text::prelude::*;
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

/// Deterministic seed for synth-corpus query selection (shared with
/// `figures`).
const QUERY_SEED: u64 = 2012;

#[derive(Clone, Copy, PartialEq)]
enum Algo {
    AStar,
    Dp,
    Cut,
}

impl Algo {
    fn name(self) -> &'static str {
        match self {
            Algo::AStar => "div-astar",
            Algo::Dp => "div-dp",
            Algo::Cut => "div-cut",
        }
    }
}

fn kernel_name(kernel: KernelMode) -> &'static str {
    match kernel {
        KernelMode::Auto => "auto",
        KernelMode::Dense => "bitset",
        KernelMode::Sparse => "sorted-vec",
    }
}

/// One measured table cell of the baseline.
struct Cell {
    suite: &'static str,
    algo: &'static str,
    kernel: &'static str,
    seed: u64,
    n: usize,
    edges: usize,
    k: usize,
    /// Wall time per run, nanoseconds; empty when the budget tripped.
    wall_ns_runs: Vec<u128>,
    /// Median of `wall_ns_runs` (0 on INF).
    wall_ns: u128,
    /// Max allocator peak over the runs.
    peak_bytes: usize,
    /// Best solution score (cross-checked between kernels).
    score: Option<f64>,
}

impl Cell {
    fn is_inf(&self) -> bool {
        self.wall_ns_runs.is_empty()
    }

    fn to_json(&self) -> String {
        let score = match self.score {
            Some(s) => format!("{s}"),
            None => "null".to_string(),
        };
        let runs: Vec<String> = self.wall_ns_runs.iter().map(|w| w.to_string()).collect();
        format!(
            concat!(
                "{{\"suite\": \"{}\", \"algo\": \"{}\", \"kernel\": \"{}\", ",
                "\"seed\": {}, \"n\": {}, \"edges\": {}, \"k\": {}, ",
                "\"status\": \"{}\", \"wall_ns\": {}, \"wall_ns_runs\": [{}], ",
                "\"peak_bytes\": {}, \"score\": {}}}"
            ),
            json::escape_string(self.suite),
            json::escape_string(self.algo),
            json::escape_string(self.kernel),
            self.seed,
            self.n,
            self.edges,
            self.k,
            if self.is_inf() { "inf" } else { "done" },
            self.wall_ns,
            runs.join(", "),
            self.peak_bytes,
            score,
        )
    }
}

fn median(sorted: &mut [u128]) -> u128 {
    sorted.sort_unstable();
    if sorted.is_empty() {
        0
    } else {
        sorted[sorted.len() / 2]
    }
}

/// Measures one `(graph, algorithm, kernel)` cell over `runs` repetitions.
#[allow(clippy::too_many_arguments)]
fn graph_cell(
    suite: &'static str,
    g: &DiversityGraph,
    seed: u64,
    k: usize,
    algo: Algo,
    kernel: KernelMode,
    runs: usize,
    budget: Duration,
) -> Cell {
    let limits = SearchLimits {
        time_budget: Some(budget),
        max_bytes: Some(1 << 30),
        ..SearchLimits::default()
    };
    let mut wall_ns_runs = Vec::with_capacity(runs);
    let mut peak_bytes = 0usize;
    let mut score = None;
    for _ in 0..runs {
        let (m, result) = measure(|| match algo {
            Algo::AStar => {
                let config = AStarConfig {
                    kernel,
                    ..AStarConfig::new()
                };
                div_astar_configured(g, k, &config, &limits)
                    .ok()
                    .map(|r| r.0)
            }
            Algo::Dp => div_dp_limited(g, k, &limits).ok().map(|r| r.0),
            Algo::Cut => div_cut_limited(g, k, &limits).ok().map(|r| r.0),
        });
        match (m, result) {
            (
                Measurement::Done {
                    time,
                    peak_bytes: p,
                },
                Some(r),
            ) => {
                wall_ns_runs.push(time.as_nanos());
                peak_bytes = peak_bytes.max(p);
                score = Some(r.best().score().get());
            }
            _ => {
                // Budget tripped: report the cell as INF and stop retrying.
                wall_ns_runs.clear();
                score = None;
                break;
            }
        }
    }
    let wall_ns = median(&mut wall_ns_runs.clone());
    Cell {
        suite,
        algo: algo.name(),
        kernel: kernel_name(kernel),
        seed,
        n: g.len(),
        edges: g.edge_count(),
        k,
        wall_ns_runs,
        wall_ns,
        peak_bytes,
        score,
    }
}

/// Measures one synthetic-corpus query cell (end-to-end framework search).
#[allow(clippy::too_many_arguments)]
fn synth_cell(
    suite: &'static str,
    corpus: &Corpus,
    index: &InvertedIndex,
    kfreq: u8,
    terms: usize,
    k: usize,
    runs: usize,
    budget: Duration,
) -> Option<Cell> {
    let query = query_for_band(corpus, kfreq, terms, QUERY_SEED)?;
    let limits = SearchLimits {
        time_budget: Some(budget),
        max_bytes: Some(1 << 30),
        ..SearchLimits::default()
    };
    let options = SearchOptions::new(k)
        .with_tau(0.6)
        .with_mode(DiversifyMode::Exact(ExactAlgorithm::Cut))
        .with_limits(limits)
        .with_bound_decay(0.005);
    let searcher = DiversifiedSearcher::new(corpus, index);
    let mut wall_ns_runs = Vec::with_capacity(runs);
    let mut peak_bytes = 0usize;
    let mut score = None;
    for _ in 0..runs {
        let (m, out) = measure(|| {
            if terms == 1 {
                searcher.search_scan(query.terms[0], &options).ok()
            } else {
                searcher.search_ta(&query, &options).ok()
            }
        });
        match (m, out) {
            (
                Measurement::Done {
                    time,
                    peak_bytes: p,
                },
                Some(out),
            ) => {
                wall_ns_runs.push(time.as_nanos());
                peak_bytes = peak_bytes.max(p);
                score = Some(out.total_score.get());
            }
            _ => {
                wall_ns_runs.clear();
                score = None;
                break;
            }
        }
    }
    let wall_ns = median(&mut wall_ns_runs.clone());
    Some(Cell {
        suite,
        algo: "div-cut",
        kernel: "auto",
        seed: QUERY_SEED,
        n: corpus.num_docs(),
        edges: 0,
        k,
        wall_ns_runs,
        wall_ns,
        peak_bytes,
        score,
    })
}

/// Outcome of the serving-throughput suite, for the JSON summary.
struct ThroughputReport {
    qps_baseline: f64,
    qps_by_shards: Vec<(usize, f64)>,
    cache_hit_rate_4_shards: f64,
    distinct_queries: usize,
    total_queries: usize,
    threads: usize,
}

/// The serving-engine batch-throughput suite (DESIGN.md §8): replays a
/// query-pack trace against the engine at several shard counts and
/// against the naive per-query searcher baseline. Asserts — run by run,
/// query by query — that sharded and unsharded optima agree.
///
/// The trace is the default pack's `torso_mix` family (DESIGN.md §12)
/// recompiled against this suite's corpus: Zipf-over-distinct draws with
/// a realistic repeat rate. The old hand-rolled trace had 10 distinct
/// queries in 96 — a ~90% cache-hit rate that flattered the engine's
/// advantage over the uncached baseline.
fn serving_throughput_suite(
    cells: &mut Vec<Cell>,
    smoke: bool,
    runs: usize,
    budget: Duration,
) -> Option<ThroughputReport> {
    let docs = if smoke { 400 } else { 4000 };
    let (n_distinct, n_total, k) = if smoke {
        (8usize, 24usize, 6usize)
    } else {
        (48, 96, 10)
    };
    let corpus = generate(&SynthConfig::reuters_like().with_num_docs(docs));
    let index = InvertedIndex::build(&corpus);
    let searcher = DiversifiedSearcher::new(&corpus, &index);
    let limits = SearchLimits {
        time_budget: Some(budget),
        max_bytes: Some(1 << 30),
        ..SearchLimits::default()
    };
    let options = SearchOptions::new(k)
        .with_tau(0.6)
        .with_limits(limits)
        .with_bound_decay(0.005);

    // The trace comes from the committed pack's torso_mix (hot queries,
    // Zipf repeats) and tail_cold (long tail of one-offs) families,
    // scaled to this suite's size, recompiled against this suite's
    // corpus, and interleaved — the production shape: a few hot queries
    // repeat over a stream of rarely repeated tail queries.
    let mut pack = QueryPack::default_pack();
    pack.families
        .retain(|f| f.name == "torso_mix" || f.name == "tail_cold");
    assert_eq!(pack.families.len(), 2, "default pack lost a trace family");
    for family in &mut pack.families {
        family.queries = n_total / 2;
        family.distinct = n_distinct / 2;
    }
    let compiled = pack
        .compile(&corpus, &index)
        .expect("trace families compile against the suite corpus");
    let hot: Vec<&Query> = compiled[0].queries().collect();
    let cold: Vec<&Query> = compiled[1].queries().collect();
    let mut queries: Vec<Query> = Vec::with_capacity(n_total);
    for i in 0..hot.len().max(cold.len()) {
        if let Some(q) = hot.get(i) {
            queries.push((*q).clone());
        }
        if let Some(q) = cold.get(i) {
            queries.push((*q).clone());
        }
    }
    let mut distinct: Vec<Query> = Vec::new();
    for q in &queries {
        if !distinct.contains(q) {
            distinct.push(q.clone());
        }
    }
    let trace: Vec<(Query, SearchOptions)> = queries
        .iter()
        .map(|q| (q.clone(), options.clone()))
        .collect();

    // Reference answers once, from the unsharded searcher.
    let reference: Vec<SearchOutput> = distinct
        .iter()
        .map(|q| match q {
            Query::Scan(t) => searcher.search_scan(*t, &options).expect("baseline query"),
            Query::Keywords(kq) => searcher.search_ta(kq, &options).expect("baseline query"),
        })
        .collect();
    let score_sum: f64 = reference.iter().map(|o| o.total_score.get()).sum();

    // Baseline: the pre-engine serving shape — one uncached searcher call
    // per trace query, sequential.
    let mut wall_ns_runs = Vec::with_capacity(runs);
    let mut peak = 0usize;
    for _ in 0..runs {
        let (m, ok) = measure(|| {
            Some(
                trace
                    .iter()
                    .filter(|(q, opt)| {
                        let out = match q {
                            Query::Scan(t) => searcher.search_scan(*t, opt),
                            Query::Keywords(kq) => searcher.search_ta(kq, opt),
                        };
                        out.is_ok()
                    })
                    .count(),
            )
        });
        let Measurement::Done { time, peak_bytes } = m else {
            unreachable!("closure always returns Some");
        };
        assert_eq!(ok, Some(trace.len()), "baseline query failed");
        wall_ns_runs.push(time.as_nanos());
        peak = peak.max(peak_bytes);
    }
    let baseline_wall = median(&mut wall_ns_runs.clone());
    cells.push(Cell {
        suite: "serving_throughput",
        algo: "searcher-sequential",
        kernel: "unsharded",
        seed: 0,
        n: docs,
        edges: n_total,
        k,
        wall_ns_runs,
        wall_ns: baseline_wall,
        peak_bytes: peak,
        score: Some(score_sum),
    });
    let qps_baseline = n_total as f64 / (baseline_wall as f64 / 1e9);
    eprintln!("[serving_throughput] baseline {qps_baseline:.1} q/s");

    // Engine at 1/2/4/8 shards: batch on the scoped pool, cold cache per
    // run (fresh engine), correctness asserted against the reference.
    let mut qps_by_shards = Vec::new();
    let mut cache_hit_rate_4_shards = 0.0;
    let mut threads = 1;
    for (shards, label) in [
        (1usize, "shards-1"),
        (2, "shards-2"),
        (4, "shards-4"),
        (8, "shards-8"),
    ] {
        // Sharded answers must agree with the unsharded searcher — byte-
        // identical for scans, equal optima for TA. A pure function of
        // (corpus, shards), so checked once per shard config, outside the
        // timing loop.
        {
            let engine = Engine::new(corpus.clone(), EngineConfig::new(shards));
            threads = engine.threads();
            for (query, want) in distinct.iter().zip(&reference) {
                let got = engine.search(query, &options).expect("engine query");
                match query {
                    Query::Scan(_) => assert_eq!(
                        want, &got,
                        "sharded scan diverged from unsharded at {shards} shards"
                    ),
                    Query::Keywords(_) => assert!(
                        got.total_score.approx_eq(want.total_score, 1e-9),
                        "sharded TA optimum diverged at {shards} shards: {} vs {}",
                        got.total_score,
                        want.total_score
                    ),
                }
            }
        }
        let mut wall_ns_runs = Vec::with_capacity(runs);
        let mut peak = 0usize;
        let mut hit_rate = 0.0;
        for _ in 0..runs {
            // Throughput measured on a fresh engine (cold cache).
            let engine = Engine::new(corpus.clone(), EngineConfig::new(shards));
            let (m, ok) = measure(|| {
                Some(
                    engine
                        .search_batch(&trace)
                        .iter()
                        .filter(|r| r.is_ok())
                        .count(),
                )
            });
            let Measurement::Done { time, peak_bytes } = m else {
                unreachable!("closure always returns Some");
            };
            assert_eq!(
                ok,
                Some(trace.len()),
                "engine query failed at {shards} shards"
            );
            wall_ns_runs.push(time.as_nanos());
            peak = peak.max(peak_bytes);
            let stats = engine.stats();
            hit_rate =
                stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses).max(1) as f64;
        }
        let wall = median(&mut wall_ns_runs.clone());
        let qps = n_total as f64 / (wall as f64 / 1e9);
        eprintln!(
            "[serving_throughput] {label}: {qps:.1} q/s (cache hit rate {:.0}%)",
            hit_rate * 100.0
        );
        if shards == 4 {
            cache_hit_rate_4_shards = hit_rate;
        }
        qps_by_shards.push((shards, qps));
        cells.push(Cell {
            suite: "serving_throughput",
            algo: "engine-batch",
            kernel: label,
            seed: shards as u64,
            n: docs,
            edges: n_total,
            k,
            wall_ns_runs,
            wall_ns: wall,
            peak_bytes: peak,
            score: Some(score_sum),
        });
    }

    Some(ThroughputReport {
        qps_baseline,
        qps_by_shards,
        cache_hit_rate_4_shards,
        distinct_queries: distinct.len(),
        total_queries: n_total,
        threads,
    })
}

/// Outcome of the live-update suite, for the JSON summary.
struct LiveUpdateReport {
    qps_segmented: f64,
    qps_rebuild: f64,
    p95_read_ns: u128,
    queries: usize,
    mutation_batches: usize,
    final_segments: usize,
    final_tombstones: usize,
    compactions: u64,
}

/// One scripted operation of the live-update trace (shared verbatim by
/// the segmented engine and the rebuild baseline, so both serve the exact
/// same interleaving).
enum LiveOp {
    /// Append this slice of the donor pool as one batch.
    Add(std::ops::Range<usize>),
    /// Tombstone these doc ids.
    Delete(Vec<DocId>),
    /// One size-tiered compaction step (a no-op for the baseline, whose
    /// from-scratch index is always fully compacted).
    Compact,
    /// Single-keyword diversified query.
    Scan(TermId),
    /// Multi-keyword diversified query.
    Ta(KeywordQuery),
}

/// The live-update suite (DESIGN.md §9): interleaved add/delete/query
/// trace with periodic compaction, segmented engine vs rebuild-per-
/// mutation baseline, equivalence asserted on every query of every run.
fn live_update_suite(
    cells: &mut Vec<Cell>,
    smoke: bool,
    runs: usize,
    budget: Duration,
) -> Option<LiveUpdateReport> {
    let base_docs = if smoke { 240 } else { 4000 };
    let rounds = if smoke { 4 } else { 24 };
    let adds_per_round = if smoke { 6 } else { 16 };
    let deletes_per_round = adds_per_round / 2;
    let k = 6;
    let pool_size = rounds * adds_per_round;

    // Donor corpus: the first `base_docs` documents become the frozen
    // statistics epoch, the rest are the live-add pool (same vocabulary).
    let donor = generate(&SynthConfig::reuters_like().with_num_docs(base_docs + pool_size));
    let mut builder = CorpusBuilder::with_synthetic_vocab(donor.num_terms());
    for d in 0..base_docs as DocId {
        builder.add_document(donor.doc(d).clone());
    }
    let base = builder.build();
    let pool: Vec<Document> = (base_docs..base_docs + pool_size)
        .map(|d| donor.doc(d as DocId).clone())
        .collect();

    // Distinct queries on the base epoch: two busy scan terms, two
    // 2-keyword TA queries from the low kfreq bands.
    let mut scan_terms: Vec<TermId> = (0..base.num_terms() as TermId)
        .filter(|&t| (8..=60).contains(&base.doc_freq(t)))
        .collect();
    scan_terms.sort_by_key(|&t| std::cmp::Reverse(base.doc_freq(t)));
    scan_terms.truncate(2);
    let mut ta_queries: Vec<KeywordQuery> = Vec::new();
    let mut seed = QUERY_SEED;
    while ta_queries.len() < 2 && seed < QUERY_SEED + 10_000 {
        seed += 1;
        let band = 1 + (seed % 3) as u8;
        if let Some(q) = query_for_band(&base, band, 2, seed) {
            if !ta_queries.contains(&q) {
                ta_queries.push(q);
            }
        }
    }
    if scan_terms.len() < 2 || ta_queries.len() < 2 {
        eprintln!("[live_update] could not assemble the query set");
        return None;
    }
    let limits = SearchLimits {
        time_budget: Some(budget),
        max_bytes: Some(1 << 30),
        ..SearchLimits::default()
    };
    let options = SearchOptions::new(k)
        .with_tau(0.6)
        .with_limits(limits)
        .with_bound_decay(0.01);

    // Deterministic script: each round adds a batch, deletes live docs,
    // compacts every 4th round, and serves 2 queries — simulated once so
    // both passes (and all runs) replay the identical interleaving.
    let mut rng = divtopk_core::rng::Pcg::new(QUERY_SEED ^ 0x11FE);
    let mut script: Vec<LiveOp> = Vec::new();
    let mut total_docs = base_docs;
    let mut dead: std::collections::HashSet<DocId> = Default::default();
    let mut queries = 0usize;
    let mut mutation_batches = 0usize;
    for round in 0..rounds {
        let start = round * adds_per_round;
        script.push(LiveOp::Add(start..start + adds_per_round));
        total_docs += adds_per_round;
        mutation_batches += 1;
        let mut victims = Vec::new();
        while victims.len() < deletes_per_round {
            let d = rng.below(total_docs as u32);
            if dead.insert(d) {
                victims.push(d);
            }
        }
        script.push(LiveOp::Delete(victims));
        mutation_batches += 1;
        if round % 4 == 3 {
            script.push(LiveOp::Compact);
            mutation_batches += 1;
        }
        script.push(LiveOp::Scan(scan_terms[round % scan_terms.len()]));
        script.push(LiveOp::Ta(ta_queries[round % ta_queries.len()].clone()));
        queries += 2;
    }

    // Segmented pass: one engine, mutations through the snapshot layer.
    // Returns (per-query outputs, per-query latencies).
    let run_segmented = |record: &mut Vec<(SearchOutput, u128)>| {
        record.clear();
        let engine = Engine::new(base.clone(), EngineConfig::new(2));
        for op in &script {
            match op {
                LiveOp::Add(r) => {
                    engine.add_docs(pool[r.clone()].to_vec());
                }
                LiveOp::Delete(v) => {
                    engine.delete_docs(v);
                }
                LiveOp::Compact => {
                    engine.compact();
                }
                LiveOp::Scan(t) => {
                    let t0 = std::time::Instant::now();
                    let out = engine.search(&Query::Scan(*t), &options).expect("scan");
                    record.push((out, t0.elapsed().as_nanos()));
                }
                LiveOp::Ta(q) => {
                    let t0 = std::time::Instant::now();
                    let out = engine
                        .search(&Query::Keywords(q.clone()), &options)
                        .expect("ta");
                    record.push((out, t0.elapsed().as_nanos()));
                }
            }
        }
        engine
            .verify_rebuild_equivalence()
            .expect("segmented state diverged from rebuild");
        engine.stats()
    };

    // Rebuild baseline: a from-scratch index + weight table after every
    // mutation batch, queried through the plain unsegmented sources.
    let run_rebuild = |record: &mut Vec<SearchOutput>| {
        record.clear();
        let mut view = base.clone();
        let mut deleted: std::collections::HashSet<DocId> = Default::default();
        let mut index = InvertedIndex::build(&view);
        let mut weights = doc_weights(&view);
        for op in &script {
            match op {
                LiveOp::Add(r) => {
                    view.append_frozen(pool[r.clone()].iter().cloned());
                    index = InvertedIndex::build_where(&view, |d| !deleted.contains(&d));
                    weights = doc_weights(&view);
                }
                LiveOp::Delete(v) => {
                    deleted.extend(v.iter().copied());
                    index = InvertedIndex::build_where(&view, |d| !deleted.contains(&d));
                    weights = doc_weights(&view);
                }
                LiveOp::Compact => {}
                LiveOp::Scan(t) => {
                    let source = ScanSource::new(&index, *t);
                    record
                        .push(search_with_source(&view, &weights, source, &options).expect("scan"));
                }
                LiveOp::Ta(q) => {
                    let source = TaSource::new(&view, &index, &q.terms);
                    record.push(search_with_source(&view, &weights, source, &options).expect("ta"));
                }
            }
        }
    };

    let mut seg_outputs: Vec<(SearchOutput, u128)> = Vec::new();
    let mut seg_walls: Vec<u128> = Vec::new();
    // Read latencies pooled across *all* runs — a tail statistic from a
    // single run would let one scheduler hiccup skew the committed p95.
    let mut latencies: Vec<u128> = Vec::new();
    let mut final_stats = None;
    for _ in 0..runs {
        let (m, stats) = measure(|| Some(run_segmented(&mut seg_outputs)));
        let Measurement::Done { time, .. } = m else {
            unreachable!("closure always returns Some");
        };
        seg_walls.push(time.as_nanos());
        latencies.extend(seg_outputs.iter().map(|(_, ns)| *ns));
        final_stats = stats;
    }
    let final_stats = final_stats.expect("at least one run");
    let mut rebuild_outputs: Vec<SearchOutput> = Vec::new();
    let mut rebuild_walls: Vec<u128> = Vec::new();
    for _ in 0..runs {
        let (m, _) = measure(|| {
            run_rebuild(&mut rebuild_outputs);
            Some(())
        });
        let Measurement::Done { time, .. } = m else {
            unreachable!("closure always returns Some");
        };
        rebuild_walls.push(time.as_nanos());
    }

    // The in-suite rebuild-equivalence assertion: the segmented engine
    // and the rebuild-per-mutation oracle answered the same trace.
    assert_eq!(seg_outputs.len(), rebuild_outputs.len());
    let mut op_index = 0usize;
    for op in &script {
        match op {
            LiveOp::Scan(_) => {
                let (got, _) = &seg_outputs[op_index];
                assert_eq!(
                    &rebuild_outputs[op_index], got,
                    "segmented scan diverged from rebuild at query {op_index}"
                );
                op_index += 1;
            }
            LiveOp::Ta(_) => {
                let (got, _) = &seg_outputs[op_index];
                let want = &rebuild_outputs[op_index];
                assert!(
                    got.total_score.approx_eq(want.total_score, 1e-9),
                    "segmented TA optimum diverged at query {op_index}: {} vs {}",
                    got.total_score,
                    want.total_score
                );
                op_index += 1;
            }
            _ => {}
        }
    }

    let seg_wall = median(&mut seg_walls.clone());
    let rebuild_wall = median(&mut rebuild_walls.clone());
    let qps_segmented = queries as f64 / (seg_wall as f64 / 1e9);
    let qps_rebuild = queries as f64 / (rebuild_wall as f64 / 1e9);
    latencies.sort_unstable();
    let p95_read_ns = latencies[((latencies.len() * 95) / 100).min(latencies.len() - 1)];
    let score_sum: f64 = rebuild_outputs.iter().map(|o| o.total_score.get()).sum();
    let read_total_ms: f64 = latencies.iter().map(|&ns| ns as f64 / 1e6).sum::<f64>() / runs as f64;
    eprintln!(
        "[live_update] segmented {qps_segmented:.1} q/s vs rebuild {qps_rebuild:.1} q/s \
         ({:.2}x) · p95 read {:.2} ms (reads {:.0} of {:.0} ms wall) · {} segments · \
         {} tombstones",
        qps_segmented / qps_rebuild,
        p95_read_ns as f64 / 1e6,
        read_total_ms,
        seg_wall as f64 / 1e6,
        final_stats.segments,
        final_stats.tombstones,
    );
    cells.push(Cell {
        suite: "live_update",
        algo: "engine-segmented",
        kernel: "segments",
        seed: 0,
        n: base_docs,
        edges: queries,
        k,
        wall_ns_runs: seg_walls,
        wall_ns: seg_wall,
        peak_bytes: 0,
        score: Some(score_sum),
    });
    cells.push(Cell {
        suite: "live_update",
        algo: "searcher-rebuild",
        kernel: "rebuild-per-mutation",
        seed: 0,
        n: base_docs,
        edges: queries,
        k,
        wall_ns_runs: rebuild_walls,
        wall_ns: rebuild_wall,
        peak_bytes: 0,
        score: Some(score_sum),
    });
    Some(LiveUpdateReport {
        qps_segmented,
        qps_rebuild,
        p95_read_ns,
        queries,
        mutation_batches,
        final_segments: final_stats.segments,
        final_tombstones: final_stats.tombstones,
        compactions: final_stats.compactions,
    })
}

/// Outcome of the serving-latency suite, for the JSON summary.
struct ServingLatencyReport {
    /// `(shards, achieved q/s, p50 ms, p95 ms, p99 ms)` per shard count.
    by_shards: Vec<(usize, f64, f64, f64, f64)>,
    /// Parallel-pull pool size the engine auto-selected (0 = sequential —
    /// the honest caveat for numbers generated on a single-core host).
    pull_workers: usize,
    requests_per_shard_count: usize,
}

/// The serving-latency suite (DESIGN.md §11): a real [`Server`] on a real
/// TCP socket per shard count, driven by the same open-loop client the
/// `loadgen` binary uses. The result cache is disabled so every request
/// pays a full search, and the engine's parallel-pull pool is auto-sized
/// — on a multi-core host the per-query latency at 4+ shards drops below
/// the 1-shard sequential merge, which is the
/// `serving_latency_shard_speedup` headline (p50@1 shard / p50@4 shards).
/// Latency is measured from each request's *scheduled* arrival, so
/// server-side queueing counts against the server.
fn serving_latency_suite(cells: &mut Vec<Cell>, smoke: bool) -> Option<ServingLatencyReport> {
    use divtopk_bench::load::{LoadSpec, run_open_loop};
    let docs = if smoke { 400 } else { 2000 };
    let shard_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    // The full-run arrival rate must sit below a *single-core* host's
    // service capacity (~45 q/s at k = 10 with the cache off): open-loop
    // latency is measured from the scheduled arrival, so a saturating
    // rate measures backlog growth, not service — p50 explodes into
    // seconds and drowns the per-shard signal the suite exists to
    // capture.
    let (rate, total) = if smoke { (30.0, 40usize) } else { (20.0, 200) };
    let k = if smoke { 6 } else { 10 };
    let corpus = generate(&SynthConfig::reuters_like().with_num_docs(docs));
    let mut by_shards = Vec::new();
    let mut pull_workers = 0usize;
    for &shards in shard_counts {
        let label = match shards {
            1 => "shards-1",
            2 => "shards-2",
            4 => "shards-4",
            8 => "shards-8",
            _ => unreachable!("unmeasured shard count"),
        };
        let engine = Engine::new(
            corpus.clone(),
            EngineConfig::new(shards).with_cache_capacity(0),
        );
        pull_workers = pull_workers.max(engine.pull_workers());
        let server = Server::start(
            std::sync::Arc::new(engine),
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                queue_capacity: 64,
            },
        )
        .expect("binding the serving-latency server");
        let spec = LoadSpec {
            addr: server.addr().to_string(),
            rate,
            total,
            connections: 2,
            seed: QUERY_SEED,
            ta_fraction: 0.25,
            k: k as u32,
            tau: 0.5,
            shape: divtopk_bench::load::ArrivalShape::Uniform,
        };
        let baseline = divtopk_bench::reset_peak();
        let report = match run_open_loop(&spec) {
            Ok(report) => report,
            Err(why) => {
                eprintln!("[serving_latency] {label}: {why}");
                return None;
            }
        };
        let peak_bytes = divtopk_bench::peak_since(baseline);
        drop(server); // graceful shutdown before the next shard count binds
        assert_eq!(report.errors, 0, "serving errors at {shards} shards");
        assert!(report.ok > 0, "no served requests at {shards} shards");
        let (qps, p50, p95, p99) = (
            report.qps(),
            report.quantile_ms(0.50),
            report.quantile_ms(0.95),
            report.quantile_ms(0.99),
        );
        eprintln!(
            "[serving_latency] {label}: {qps:.1} q/s, p50 {p50:.2} ms, p95 {p95:.2} ms, \
             p99 {p99:.2} ms ({} overloaded)",
            report.overloaded
        );
        by_shards.push((shards, qps, p50, p95, p99));
        // One cell per shard count: every request is one "run", wall_ns
        // is the median (p50) request latency, score the achieved q/s.
        let wall_ns_runs: Vec<u128> = report.latencies_ns.iter().map(|&ns| ns as u128).collect();
        let wall_ns = wall_ns_runs[wall_ns_runs.len() / 2];
        cells.push(Cell {
            suite: "serving_latency",
            algo: "server-openloop",
            kernel: label,
            seed: shards as u64,
            n: docs,
            edges: total,
            k,
            wall_ns_runs,
            wall_ns,
            peak_bytes,
            score: Some(qps),
        });
    }
    Some(ServingLatencyReport {
        by_shards,
        pull_workers,
        requests_per_shard_count: total,
    })
}

struct QualityGateReport {
    families: usize,
    queries: usize,
    worst_ndcg_delta: f64,
    worst_mrr_delta: f64,
    min_unique_sources_gain: f64,
    min_dissimilarity_gain: f64,
}

/// The query-pack quality suite (DESIGN.md §12): replays the built-in
/// default pack through the engine twice per query — diversity on vs.
/// off — and records per-family diversity/relevance deltas as cells. The
/// pack's own gates are *enforced*: a failed gate aborts the perfbase
/// run, the same way the standalone `quality_gate` binary exits
/// non-zero. Identical in smoke and full runs (the pack is tiny).
fn quality_gate_suite(cells: &mut Vec<Cell>) -> Option<QualityGateReport> {
    let pack = QueryPack::default_pack();
    eprintln!(
        "[quality_gate] pack {:?} ({} families)",
        pack.name,
        pack.families.len()
    );
    let report = match evaluate(&pack) {
        Ok(report) => report,
        Err(why) => {
            eprintln!("[quality_gate] evaluation failed: {why}");
            return None;
        }
    };
    for failure in report.failures() {
        eprintln!("[quality_gate] FAIL {failure}");
    }
    assert!(
        report.pass(),
        "quality_gate suite failed: {}",
        report
            .failures()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
    let mut summary = QualityGateReport {
        families: report.families.len(),
        queries: 0,
        worst_ndcg_delta: 0.0,
        worst_mrr_delta: 0.0,
        min_unique_sources_gain: f64::INFINITY,
        min_dissimilarity_gain: f64::INFINITY,
    };
    for (family, spec) in report.families.iter().zip(&pack.families) {
        summary.queries += family.queries;
        summary.worst_ndcg_delta = summary.worst_ndcg_delta.min(family.deltas.ndcg_delta);
        summary.worst_mrr_delta = summary.worst_mrr_delta.min(family.deltas.mrr_delta);
        summary.min_unique_sources_gain = summary
            .min_unique_sources_gain
            .min(family.deltas.unique_sources_gain);
        summary.min_dissimilarity_gain = summary
            .min_dissimilarity_gain
            .min(family.deltas.dissimilarity_gain);
        eprintln!(
            "[quality_gate] {}: uniq {:+.3}, dissim {:+.3}, ndcg {:+.4} — pass",
            family.name,
            family.deltas.unique_sources_gain,
            family.deltas.dissimilarity_gain,
            family.deltas.ndcg_delta
        );
        // One cell per family: wall time is the diversity-on p95 engine
        // latency; the score column carries the NDCG delta the gates
        // guard (cross-run comparable — the pack is deterministic).
        let p95_ns = (family.on.p95_ms * 1e6).max(0.0) as u128;
        cells.push(Cell {
            suite: "quality_gate",
            algo: "on-vs-off",
            kernel: Box::leak(family.name.clone().into_boxed_str()),
            seed: pack.seed,
            n: family.queries,
            edges: 0,
            k: spec.k,
            wall_ns_runs: vec![p95_ns],
            wall_ns: p95_ns,
            peak_bytes: 0,
            score: Some(family.deltas.ndcg_delta),
        });
    }
    Some(summary)
}

/// One measured frontier point: a diversify mode on a corpus shape.
struct FrontierRow {
    mode: &'static str,
    shape: &'static str,
    /// Relative optimality gap vs the exact diversified optimum:
    /// `(exact_total − mode_total) / exact_total`. Negative means the
    /// mode's raw relevance total *exceeds* the constrained optimum by
    /// ignoring the dissimilarity constraint (plain top-k does).
    gap: f64,
    /// Pairs of the selection above τ (0 for any feasible answer).
    violations: usize,
    /// Median Exact(Cut) wall over this mode's median wall.
    speedup_vs_exact: f64,
}

/// Outcome of the frontier suite, for the JSON summary.
struct FrontierReport {
    modes: usize,
    shapes: usize,
    rows: Vec<FrontierRow>,
    /// Best exact-vs-cheap speedup among the rerank modes (MMR, window,
    /// DisC, KNN) and the gap measured at that point.
    best_cheap_speedup: f64,
    best_cheap_speedup_gap: f64,
}

/// The gap × latency frontier suite (DESIGN.md §15): every
/// [`DiversifyMode`] on the two paper corpus shapes (reuters-like
/// single-keyword scan, enwiki-like 2-keyword TA), measured against the
/// exact diversified optimum that `Exact(Cut)` — provably exact —
/// produces on the same query. Before any timing, the suite asserts the
/// mode-dispatched `Exact(Cut)` answer is **byte-identical** to driving
/// the core framework directly (the pre-redesign call shape), so the
/// frontier's oracle is pinned to the old behaviour.
fn frontier_suite(
    cells: &mut Vec<Cell>,
    smoke: bool,
    runs: usize,
    budget: Duration,
) -> Option<FrontierReport> {
    let docs = if smoke { 400 } else { 4000 };
    let k = if smoke { 8 } else { 10 };
    let tau = 0.6;
    let limits = SearchLimits {
        time_budget: Some(budget),
        max_bytes: Some(1 << 30),
        ..SearchLimits::default()
    };
    let modes: [(&'static str, DiversifyMode); 6] = [
        ("exact-cut", DiversifyMode::Exact(ExactAlgorithm::Cut)),
        ("none", DiversifyMode::None),
        ("mmr", DiversifyMode::mmr(0.7)),
        ("window", DiversifyMode::window()),
        ("disc", DiversifyMode::Disc),
        ("knn", DiversifyMode::knn()),
    ];
    let mut rows: Vec<FrontierRow> = Vec::new();
    let mut shapes = 0usize;
    for (shape, config, terms) in [
        (
            "reuters_scan",
            SynthConfig::reuters_like().with_num_docs(docs),
            1usize,
        ),
        (
            "enwiki_ta",
            SynthConfig::enwiki_like().with_num_docs(docs),
            2usize,
        ),
    ] {
        let corpus = generate(&config);
        let index = InvertedIndex::build(&corpus);
        let searcher = DiversifiedSearcher::new(&corpus, &index);
        let Some(query) = query_for_band(&corpus, 3, terms, QUERY_SEED) else {
            eprintln!("[frontier] {shape}: no band-3 query, skipping shape");
            continue;
        };
        shapes += 1;
        let run_once = |mode: &DiversifyMode| {
            let options = SearchOptions::new(k)
                .with_tau(tau)
                .with_mode(mode.clone())
                .with_limits(limits.clone())
                .with_bound_decay(0.005);
            if terms == 1 {
                searcher.search_scan(query.terms[0], &options).ok()
            } else {
                searcher.search_ta(&query, &options).ok()
            }
        };
        // Oracle byte-identity: the trait-dispatched Exact(Cut) must be
        // the pre-redesign direct framework run, bit for bit.
        if terms == 1 {
            let via_mode = run_once(&DiversifyMode::Exact(ExactAlgorithm::Cut))
                .expect("exact frontier oracle");
            let weights = doc_weights(&corpus);
            let direct = DivTopK::new(
                ScanSource::new(&index, query.terms[0]),
                |a: &DocId, b: &DocId| {
                    similar_above(
                        corpus.idf_table(),
                        corpus.doc(*a),
                        weights[*a as usize],
                        corpus.doc(*b),
                        weights[*b as usize],
                        tau,
                    )
                },
                DivSearchConfig::new(k)
                    .with_limits(limits.clone())
                    .with_bound_decay(0.005),
            )
            .run()
            .expect("direct frontier oracle");
            assert_eq!(
                via_mode
                    .hits
                    .iter()
                    .map(|h| (h.doc, h.score))
                    .collect::<Vec<_>>(),
                direct
                    .selected
                    .iter()
                    .map(|r| (r.item, r.score))
                    .collect::<Vec<_>>(),
                "frontier oracle drifted from the direct framework run ({shape})"
            );
            assert_eq!(via_mode.total_score, direct.total_score);
        }
        // Measure every mode; Exact(Cut) goes first so its median wall
        // and total anchor the gap and speedup columns.
        let mut exact_total = 0.0f64;
        let mut exact_wall = 0u128;
        for (name, mode) in &modes {
            let mut wall_ns_runs = Vec::with_capacity(runs);
            let mut peak_bytes = 0usize;
            let mut total = None;
            let mut out_hits: Vec<Scored<DocId>> = Vec::new();
            for _ in 0..runs {
                let (m, out) = measure(|| run_once(mode));
                match (m, out) {
                    (
                        Measurement::Done {
                            time,
                            peak_bytes: p,
                        },
                        Some(out),
                    ) => {
                        wall_ns_runs.push(time.as_nanos());
                        peak_bytes = peak_bytes.max(p);
                        total = Some(out.total_score.get());
                        out_hits = out
                            .hits
                            .iter()
                            .map(|h| Scored::new(h.doc, h.score))
                            .collect();
                    }
                    _ => {
                        wall_ns_runs.clear();
                        total = None;
                        break;
                    }
                }
            }
            let wall_ns = median(&mut wall_ns_runs.clone());
            cells.push(Cell {
                suite: "frontier",
                algo: name,
                kernel: shape,
                seed: QUERY_SEED,
                n: corpus.num_docs(),
                edges: 0,
                k,
                wall_ns_runs,
                wall_ns,
                peak_bytes,
                score: total,
            });
            let Some(total) = total else { continue };
            if *name == "exact-cut" {
                exact_total = total;
                exact_wall = wall_ns;
                rows.push(FrontierRow {
                    mode: name,
                    shape,
                    gap: 0.0,
                    violations: 0,
                    speedup_vs_exact: 1.0,
                });
                continue;
            }
            let gap = if exact_total > 0.0 {
                (exact_total - total) / exact_total
            } else {
                0.0
            };
            let (violations, _) = redundancy(&corpus, &out_hits, tau);
            let speedup = if wall_ns > 0 {
                exact_wall as f64 / wall_ns as f64
            } else {
                0.0
            };
            eprintln!(
                "[frontier] {shape}/{name}: gap {gap:+.4}, {violations} violations, \
                 {speedup:.1}x vs exact-cut"
            );
            rows.push(FrontierRow {
                mode: name,
                shape,
                gap,
                violations,
                speedup_vs_exact: speedup,
            });
        }
    }
    if rows.is_empty() {
        return None;
    }
    let (mut best_cheap_speedup, mut best_cheap_speedup_gap) = (0.0f64, 0.0f64);
    for row in &rows {
        if matches!(row.mode, "mmr" | "window" | "disc" | "knn")
            && row.speedup_vs_exact > best_cheap_speedup
        {
            best_cheap_speedup = row.speedup_vs_exact;
            best_cheap_speedup_gap = row.gap;
        }
    }
    Some(FrontierReport {
        modes: modes.len(),
        shapes,
        rows,
        best_cheap_speedup,
        best_cheap_speedup_gap,
    })
}

/// Every suite a complete perfbase run records cells for.
const EXPECTED_SUITES: [&str; 11] = [
    "planted_default",
    "planted_dense_neardup",
    "path",
    "synth_reuters_scan",
    "synth_enwiki_ta",
    "serving_throughput",
    "live_update",
    "cold_start",
    "serving_latency",
    "quality_gate",
    "frontier",
];

/// Every summary key a complete perfbase run publishes (all numeric; all
/// must be finite).
const EXPECTED_SUMMARY_KEYS: [&str; 30] = [
    "frontier_modes",
    "frontier_shapes",
    "frontier_best_cheap_speedup",
    "frontier_best_cheap_speedup_gap",
    "frontier_oracle_identity_pass",
    "astar_bitset_speedup_planted_default",
    "astar_bitset_speedup_planted_dense_neardup",
    "throughput_qps_baseline",
    "throughput_speedup_4_shards_vs_baseline",
    "throughput_cache_hit_rate_4_shards",
    "throughput_total_queries",
    "live_update_speedup",
    "live_update_p95_read_ns",
    "live_update_queries",
    "cold_start_speedup",
    "cold_start_load_ms",
    "cold_start_snapshot_bytes",
    "checkpoint_full_bytes",
    "checkpoint_delta_bytes_small",
    "checkpoint_delta_bytes_large",
    "checkpoint_delta_ratio",
    "serving_latency_qps",
    "serving_latency_p50_ms",
    "serving_latency_p95_ms",
    "serving_latency_p99_ms",
    "serving_latency_shard_speedup",
    "quality_gate_pass",
    "quality_gate_families",
    "quality_gate_worst_ndcg_delta",
    "quality_gate_min_unique_sources_gain",
];

/// `--verify PATH`: structurally validates a trajectory file via the
/// [`json::parse`] DOM — strict well-formedness, the expected schema, a
/// non-empty cell list in which **every expected suite actually ran**,
/// and a summary carrying every expected key with a finite numeric value
/// (every other numeric summary entry must be finite too). This replaces
/// the old CI grep chain, which could only assert that a substring
/// appeared somewhere in the file.
fn verify_trajectory(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = json::parse(&text)?;
    let schema = doc
        .get("schema")
        .and_then(json::Value::as_str)
        .ok_or("missing \"schema\" key")?;
    if schema != "divtopk-perfbase/1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let cells = doc
        .get("cells")
        .and_then(json::Value::as_array)
        .ok_or("missing \"cells\" array")?;
    if cells.is_empty() {
        return Err("empty cell list".to_string());
    }
    let mut suites_seen: Vec<&str> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let suite = cell
            .get("suite")
            .and_then(json::Value::as_str)
            .ok_or(format!("cell {i}: missing \"suite\""))?;
        if !suites_seen.contains(&suite) {
            suites_seen.push(suite);
        }
        let status = cell
            .get("status")
            .and_then(json::Value::as_str)
            .ok_or(format!("cell {i}: missing \"status\""))?;
        if status != "done" && status != "inf" {
            return Err(format!("cell {i}: unknown status {status:?}"));
        }
        let wall = cell
            .get("wall_ns")
            .and_then(json::Value::as_f64)
            .ok_or(format!("cell {i}: missing \"wall_ns\""))?;
        if !wall.is_finite() || wall < 0.0 {
            return Err(format!("cell {i}: bad wall_ns {wall}"));
        }
    }
    for want in &EXPECTED_SUITES {
        if !suites_seen.contains(want) {
            return Err(format!("suite {want:?} produced no cells"));
        }
    }
    let summary = doc
        .get("summary")
        .and_then(json::Value::as_object)
        .ok_or("missing \"summary\" object")?;
    for want in EXPECTED_SUMMARY_KEYS {
        let value = summary
            .iter()
            .find(|(k, _)| k == want)
            .map(|(_, v)| v)
            .ok_or(format!("summary key {want:?} missing"))?;
        let n = value
            .as_f64()
            .ok_or(format!("summary key {want:?} is not a number"))?;
        if !n.is_finite() {
            return Err(format!("summary key {want:?} is not finite ({n})"));
        }
    }
    // Any other numeric summary entry must be finite too — a NaN/inf
    // statistic is always a harness bug, whatever its name.
    for (key, value) in summary {
        if let Some(n) = value.as_f64() {
            if !n.is_finite() {
                return Err(format!("summary key {key:?} is not finite ({n})"));
            }
        }
    }
    Ok(format!(
        "OK ({} cells, {} suites, {} summary keys)",
        cells.len(),
        suites_seen.len(),
        summary.len()
    ))
}

/// Outcome of the cold-start suite, for the JSON summary.
struct ColdStartReport {
    load_ns: u128,
    rebuild_ns: u128,
    snapshot_bytes: u64,
    docs: usize,
    /// First-checkpoint bytes at the full corpus size.
    checkpoint_full_bytes: u64,
    /// Incremental-checkpoint bytes after one identical mutation batch,
    /// at the small and the full corpus size. Their ratio is the
    /// O(delta) evidence: checkpoint cost must not scale with corpus
    /// size (DESIGN.md §14).
    checkpoint_delta_bytes_small: u64,
    checkpoint_delta_bytes_large: u64,
}

/// The cold-start suite (DESIGN.md §10): how fast does a serving process
/// restart from a checksummed snapshot versus rebuilding its indexes from
/// the in-memory corpus (the pre-PR-5 restart shape — and a *generous*
/// baseline: a real restart would first re-parse the documents too)?
///
/// The measured state is not a fresh build: the engine has live deletes
/// on top of the partitioned base, so the snapshot carries segments,
/// tombstones, and a non-zero generation. Every run asserts the loaded
/// engine answers **byte-identically** to the engine that saved the
/// snapshot (scans `assert_eq!` on the whole `SearchOutput`; TA on the
/// optimum) and finishes with `verify_rebuild_equivalence` on loaded
/// state.
fn cold_start_suite(
    cells: &mut Vec<Cell>,
    smoke: bool,
    runs: usize,
    budget: Duration,
) -> Option<ColdStartReport> {
    // Full size is a multiple of the document-store chunk size (1024),
    // so the base corpus fills sealed chunks exactly and the
    // incremental-checkpoint axis below measures a clean delta (the
    // mutation batch lands in a fresh tail chunk at both sizes).
    let docs = if smoke { 400 } else { 102_400 };
    let k = if smoke { 6 } else { 10 };
    let corpus = generate(&SynthConfig::reuters_like().with_num_docs(docs));
    let limits = SearchLimits {
        time_budget: Some(budget),
        max_bytes: Some(1 << 30),
        ..SearchLimits::default()
    };
    let options = SearchOptions::new(k)
        .with_tau(0.6)
        .with_limits(limits)
        .with_bound_decay(0.005);
    let config = EngineConfig::new(2);

    // The state to persist: partitioned base + a deterministic spread of
    // deletions (every 37th document). Deletion-only mutations keep the
    // rebuild baseline exact: `Engine::new` + the same `delete_docs`
    // reproduces the identical segment layout and tombstone set.
    let victims: Vec<DocId> = (0..docs as DocId).step_by(37).collect();
    let engine = Engine::new(corpus.clone(), config.clone());
    engine.delete_docs(&victims);

    let path = std::env::temp_dir().join(format!(
        "divtopk-perfbase-coldstart-{}.snapshot",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&path);
    let save_report = engine.save_snapshot(&path).expect("snapshot save");
    let snapshot_bytes = save_report.total_bytes;

    // Query set for the correctness assertion (and the score column).
    let mut queries: Vec<Query> = Vec::new();
    let mut seed = QUERY_SEED;
    while queries.len() < 4 && seed < QUERY_SEED + 10_000 {
        seed += 1;
        let band = 1 + (seed % 3) as u8;
        let terms = if queries.len() % 2 == 0 { 1 } else { 2 };
        if let Some(q) = query_for_band(&corpus, band, terms, seed) {
            let query = if q.terms.len() == 1 {
                Query::Scan(q.terms[0])
            } else {
                Query::Keywords(q)
            };
            if !queries.contains(&query) {
                queries.push(query);
            }
        }
    }
    if queries.len() < 4 {
        eprintln!("[cold_start] could not assemble the query set");
        let _ = std::fs::remove_file(&path);
        return None;
    }
    let reference: Vec<SearchOutput> = queries
        .iter()
        .map(|q| engine.search(q, &options).expect("reference query"))
        .collect();
    let score_sum: f64 = reference.iter().map(|o| o.total_score.get()).sum();

    // Correctness once, outside the timing loops: byte-equality of every
    // answer class on the loaded engine, then the data-level oracle.
    {
        let loaded = Engine::load_snapshot(&path, &config).expect("snapshot load");
        assert_eq!(
            loaded.generation(),
            engine.generation(),
            "generation must survive the round trip"
        );
        for (query, want) in queries.iter().zip(&reference) {
            let got = loaded.search(query, &options).expect("loaded query");
            match query {
                Query::Scan(_) => {
                    assert_eq!(want, &got, "loaded scan diverged from the saved engine")
                }
                Query::Keywords(_) => assert!(
                    got.total_score.approx_eq(want.total_score, 1e-9),
                    "loaded TA optimum diverged: {} vs {}",
                    got.total_score,
                    want.total_score
                ),
            }
        }
        loaded
            .verify_rebuild_equivalence()
            .expect("loaded state diverged from rebuild");
    }

    // Load path: snapshot file → serving-ready engine.
    let mut load_runs = Vec::with_capacity(runs);
    let mut load_peak = 0usize;
    for _ in 0..runs {
        let (m, ok) = measure(|| Engine::load_snapshot(&path, &config).ok().map(|_| ()));
        let Measurement::Done { time, peak_bytes } = m else {
            unreachable!("load_snapshot returns");
        };
        assert_eq!(ok, Some(()), "snapshot load failed");
        load_runs.push(time.as_nanos());
        load_peak = load_peak.max(peak_bytes);
    }
    let load_ns = median(&mut load_runs.clone());

    // Rebuild path: the same serving state from the stored documents, as
    // a restart without snapshots must produce it — vocabulary interning,
    // document frequencies and the IDF table (the frozen statistics
    // epoch), then index build + sort + the weight table + tombstone
    // replay. Still generous to the baseline: the documents arrive
    // pre-tokenized (a real restart would re-parse text first). The
    // synthetic vocabulary is deterministic, so the rebuilt epoch is
    // bit-identical to the saved one.
    let mut rebuild_runs = Vec::with_capacity(runs);
    let mut rebuild_peak = 0usize;
    for _ in 0..runs {
        let (m, ok) = measure(|| {
            let mut builder = CorpusBuilder::with_synthetic_vocab(corpus.num_terms());
            for doc in corpus.docs() {
                builder.add_document(doc.clone());
            }
            let rebuilt = Engine::new(builder.build(), config.clone());
            rebuilt.delete_docs(&victims);
            Some(())
        });
        let Measurement::Done { time, peak_bytes } = m else {
            unreachable!("closure always returns Some");
        };
        assert_eq!(ok, Some(()));
        rebuild_runs.push(time.as_nanos());
        rebuild_peak = rebuild_peak.max(peak_bytes);
    }
    let rebuild_ns = median(&mut rebuild_runs.clone());
    let _ = std::fs::remove_dir_all(&path);

    // Incremental-checkpoint axis: apply one *identical* mutation batch
    // at two corpus sizes and compare the second checkpoint's
    // bytes-written. With the segment-granular layout the delta is the
    // new segment + the tail chunk + the manifest — so the two numbers
    // must stay comparable even though the corpora differ 4x in size
    // (the old monolithic snapshot rewrote every byte, scaling 4x here).
    let checkpoint_delta = |docs_n: usize, tag: &str| -> (u64, u64, u128) {
        let corpus = generate(&SynthConfig::reuters_like().with_num_docs(docs_n));
        let n_terms = corpus.num_terms() as TermId;
        let engine = Engine::new(corpus, config.clone());
        let dir = std::env::temp_dir().join(format!(
            "divtopk-perfbase-ckpt-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let full = engine.save_snapshot(&dir).expect("full checkpoint");
        let batch: Vec<Document> = (0..64)
            .map(|i: u32| {
                Document::from_tokens(
                    format!("delta{i}"),
                    vec![(i * 7) % n_terms, (i * 13) % n_terms, (i * 29) % n_terms],
                )
            })
            .collect();
        engine.add_docs(batch);
        engine.delete_docs(&[1, 3]);
        let t0 = Instant::now();
        let delta = engine.save_snapshot(&dir).expect("incremental checkpoint");
        let delta_ns = t0.elapsed().as_nanos();
        // The incremental checkpoint must reuse the sealed prefix...
        assert!(
            delta.files_reused > 0,
            "incremental checkpoint reused nothing ({delta:?})"
        );
        // The byte bound only means something when the corpus dwarfs
        // the mutation batch and spans many chunks — at smoke scale the
        // whole doc store is one always-rewritten tail chunk, so only
        // the full run asserts it (smoke still checks reuse happened
        // and the loaded state is byte-identical).
        if !smoke {
            assert!(
                delta.bytes_written * 4 < full.bytes_written,
                "incremental checkpoint is not O(delta): wrote {} of {} bytes",
                delta.bytes_written,
                full.bytes_written
            );
        }
        // ...and still load back byte-identically.
        let loaded = Engine::load_snapshot(&dir, &config).expect("delta load");
        assert_eq!(loaded.generation(), engine.generation());
        loaded
            .verify_rebuild_equivalence()
            .expect("delta-checkpointed state diverged from rebuild");
        let _ = std::fs::remove_dir_all(&dir);
        (full.bytes_written, delta.bytes_written, delta_ns)
    };
    let (_, delta_small, delta_small_ns) = checkpoint_delta(docs / 4, "small");
    let (full_large, delta_large, delta_large_ns) = checkpoint_delta(docs, "large");
    // Same scale caveat as above: at smoke size both corpora live in a
    // single tail chunk, so the delta tracks the corpus by construction.
    if !smoke {
        assert!(
            (delta_large as f64) < (delta_small as f64) * 2.0,
            "checkpoint delta scaled with corpus size: {delta_small} -> {delta_large} bytes"
        );
    }

    eprintln!(
        "[cold_start] load {:.2} ms vs rebuild {:.2} ms ({:.2}x) · snapshot {:.2} MB · ckpt delta {:.1} KB (x4 corpus: {:.1} KB)",
        load_ns as f64 / 1e6,
        rebuild_ns as f64 / 1e6,
        rebuild_ns as f64 / load_ns as f64,
        snapshot_bytes as f64 / (1024.0 * 1024.0),
        delta_small as f64 / 1024.0,
        delta_large as f64 / 1024.0,
    );
    cells.push(Cell {
        suite: "cold_start",
        algo: "engine-load",
        kernel: "snapshot",
        seed: 0,
        n: docs,
        edges: queries.len(),
        k,
        wall_ns_runs: load_runs,
        wall_ns: load_ns,
        peak_bytes: load_peak,
        score: Some(score_sum),
    });
    cells.push(Cell {
        suite: "cold_start",
        algo: "engine-rebuild",
        kernel: "from-corpus",
        seed: 0,
        n: docs,
        edges: queries.len(),
        k,
        wall_ns_runs: rebuild_runs,
        wall_ns: rebuild_ns,
        peak_bytes: rebuild_peak,
        score: Some(score_sum),
    });
    cells.push(Cell {
        suite: "cold_start",
        algo: "checkpoint-delta",
        kernel: "small-corpus",
        seed: 0,
        n: docs / 4,
        edges: delta_small as usize,
        k,
        wall_ns_runs: vec![delta_small_ns],
        wall_ns: delta_small_ns,
        peak_bytes: 0,
        score: None,
    });
    cells.push(Cell {
        suite: "cold_start",
        algo: "checkpoint-delta",
        kernel: "large-corpus",
        seed: 0,
        n: docs,
        edges: delta_large as usize,
        k,
        wall_ns_runs: vec![delta_large_ns],
        wall_ns: delta_large_ns,
        peak_bytes: 0,
        score: None,
    });
    Some(ColdStartReport {
        load_ns,
        rebuild_ns,
        snapshot_bytes,
        docs,
        checkpoint_full_bytes: full_large,
        checkpoint_delta_bytes_small: delta_small,
        checkpoint_delta_bytes_large: delta_large,
    })
}

/// The pinned dense near-duplicate configuration behind the headline AB5
/// speedup number (dense clusters ≈ near-dup chains; see DESIGN.md §3).
/// Few large, very dense clusters: independence checks dominate the
/// search, which is exactly the regime the bitset kernel targets.
fn dense_neardup_config(smoke: bool) -> ClusterConfig {
    if smoke {
        ClusterConfig {
            clusters: 3,
            cluster_size: 12,
            intra_p: 0.95,
            bridges: 3,
            singletons: 4,
        }
    } else {
        ClusterConfig {
            clusters: 4,
            cluster_size: 60,
            intra_p: 0.95,
            bridges: 4,
            singletons: 6,
        }
    }
}

fn main() {
    let mut out_path = String::from("BENCH_9.json");
    let mut smoke = false;
    let mut runs_override: Option<usize> = None;
    let mut verify_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--runs" => {
                runs_override = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--runs needs a number"),
                );
            }
            "--verify" => verify_path = Some(args.next().expect("--verify needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perfbase [--smoke] [--out PATH] [--runs N] | --verify PATH");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = verify_path {
        match verify_trajectory(&path) {
            Ok(report) => {
                eprintln!("[verify] {path}: {report}");
            }
            Err(e) => {
                eprintln!("[verify] {path}: FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let runs = runs_override.unwrap_or(if smoke { 1 } else { 5 });
    let seeds: &[u64] = if smoke { &[1] } else { &[1, 2, 3, 4, 5] };
    let budget = if smoke {
        Duration::from_secs(10)
    } else {
        Duration::from_secs(60)
    };

    let mut cells: Vec<Cell> = Vec::new();

    // Suite 1: the default planted-cluster shape (clusters + bridges +
    // singletons — §3's corpus shape) on all three algorithms.
    let default_k = if smoke { 8 } else { 20 };
    for &seed in seeds {
        let g = testgen::planted_clusters(&ClusterConfig::default(), seed);
        for (algo, kernel) in [
            (Algo::AStar, KernelMode::Dense),
            (Algo::AStar, KernelMode::Sparse),
            (Algo::Dp, KernelMode::Auto),
            (Algo::Cut, KernelMode::Auto),
        ] {
            eprintln!(
                "[planted_default] seed {seed} {} {}",
                algo.name(),
                kernel_name(kernel)
            );
            cells.push(graph_cell(
                "planted_default",
                &g,
                seed,
                default_k,
                algo,
                kernel,
                runs,
                budget,
            ));
        }
    }

    // Suite 2 (headline): dense near-duplicate clusters — where the
    // independence checks dominate and the AB5 kernel gap is measured.
    let neardup = dense_neardup_config(smoke);
    let neardup_k = if smoke { 6 } else { 12 };
    for &seed in seeds {
        let g = testgen::planted_clusters(&neardup, seed);
        for kernel in [KernelMode::Dense, KernelMode::Sparse] {
            eprintln!(
                "[planted_dense_neardup] seed {seed} div-astar {}",
                kernel_name(kernel)
            );
            cells.push(graph_cell(
                "planted_dense_neardup",
                &g,
                seed,
                neardup_k,
                Algo::AStar,
                kernel,
                runs,
                budget,
            ));
        }
        cells.push(graph_cell(
            "planted_dense_neardup",
            &g,
            seed,
            neardup_k,
            Algo::Cut,
            KernelMode::Auto,
            runs,
            budget,
        ));
    }

    // Suite 3: a pure path (div-cut's best case, every interior node a cut
    // point).
    let path_n = if smoke { 40 } else { 200 };
    let path_k = if smoke { 8 } else { 32 };
    for &seed in seeds {
        let g = testgen::path_graph(path_n, seed);
        for algo in [Algo::Dp, Algo::Cut] {
            cells.push(graph_cell(
                "path",
                &g,
                seed,
                path_k,
                algo,
                KernelMode::Auto,
                runs,
                budget,
            ));
        }
    }

    // Suite 4: end-to-end framework queries on the synthetic corpora
    // (single-keyword scan on reuters-like, 2-keyword TA on enwiki-like).
    let docs = if smoke { 400 } else { 4000 };
    let synth_k = if smoke { 20 } else { 60 };
    {
        let config = SynthConfig::reuters_like().with_num_docs(docs);
        let corpus = generate(&config);
        let index = InvertedIndex::build(&corpus);
        eprintln!("[synth_reuters_scan] {} docs", corpus.num_docs());
        if let Some(cell) = synth_cell(
            "synth_reuters_scan",
            &corpus,
            &index,
            3,
            1,
            synth_k,
            runs,
            budget,
        ) {
            cells.push(cell);
        }
    }
    {
        let config = SynthConfig::enwiki_like().with_num_docs(docs);
        let corpus = generate(&config);
        let index = InvertedIndex::build(&corpus);
        eprintln!("[synth_enwiki_ta] {} docs", corpus.num_docs());
        if let Some(cell) = synth_cell(
            "synth_enwiki_ta",
            &corpus,
            &index,
            3,
            2,
            synth_k,
            runs,
            budget,
        ) {
            cells.push(cell);
        }
    }

    // Suite 5: serving-engine batch throughput vs shard count, plus the
    // naive uncached searcher baseline (DESIGN.md §8).
    let throughput = serving_throughput_suite(&mut cells, smoke, runs, budget);

    // Suite 6: live-update serving — interleaved add/delete/query trace,
    // segmented engine vs rebuild-per-mutation baseline (DESIGN.md §9).
    let live_update = live_update_suite(&mut cells, smoke, runs, budget);

    // Suite 7: cold-start persistence — snapshot load vs index rebuild
    // (DESIGN.md §10).
    let cold_start = cold_start_suite(&mut cells, smoke, runs, budget);

    // Suite 8: end-to-end serving latency over TCP — open-loop trace
    // against a live server per shard count (DESIGN.md §11).
    let serving_latency = serving_latency_suite(&mut cells, smoke);

    // Suite 9: query-pack quality gates — diversity and relevance deltas
    // per pack family, with the pack's own pass criteria enforced
    // (DESIGN.md §12).
    let quality = quality_gate_suite(&mut cells);

    // Suite 10: the diversifier gap × latency frontier — every
    // `DiversifyMode` against the exact optimum on both paper corpus
    // shapes (DESIGN.md §15).
    let frontier = frontier_suite(&mut cells, smoke, runs, budget);

    // Kernel oracle check: within a (suite, seed), the bitset and
    // sorted-vec div-astar cells must find the same best score.
    for suite in ["planted_default", "planted_dense_neardup"] {
        for &seed in seeds {
            let find = |kernel: &str| {
                cells.iter().find(|c| {
                    c.suite == suite
                        && c.seed == seed
                        && c.algo == "div-astar"
                        && c.kernel == kernel
                })
            };
            if let (Some(dense), Some(sparse)) = (find("bitset"), find("sorted-vec")) {
                if let (Some(a), Some(b)) = (dense.score, sparse.score) {
                    assert!(
                        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0),
                        "kernel disagreement on {suite} seed {seed}: {a} vs {b}"
                    );
                }
            }
        }
    }

    // Headline summary: per-seed sparse/dense wall-time ratios, median.
    let mut summary_lines: Vec<String> = Vec::new();
    for suite in ["planted_default", "planted_dense_neardup"] {
        let mut ratios: Vec<f64> = Vec::new();
        for &seed in seeds {
            let wall = |kernel: &str| {
                cells
                    .iter()
                    .find(|c| {
                        c.suite == suite
                            && c.seed == seed
                            && c.algo == "div-astar"
                            && c.kernel == kernel
                            && !c.is_inf()
                    })
                    .map(|c| c.wall_ns as f64)
            };
            if let (Some(dense), Some(sparse)) = (wall("bitset"), wall("sorted-vec")) {
                if dense > 0.0 {
                    ratios.push(sparse / dense);
                }
            }
        }
        ratios.sort_by(|a, b| a.total_cmp(b));
        let median_ratio = if ratios.is_empty() {
            None
        } else {
            Some(ratios[ratios.len() / 2])
        };
        let value = median_ratio
            .map(|r| format!("{r:.3}"))
            .unwrap_or_else(|| "null".to_string());
        summary_lines.push(format!("\"astar_bitset_speedup_{suite}\": {value}"));
        if let Some(r) = median_ratio {
            eprintln!("[summary] {suite}: div-astar bitset vs sorted-vec median speedup {r:.2}x");
        }
    }

    if let Some(report) = &throughput {
        summary_lines.push(format!(
            "\"throughput_qps_baseline\": {:.3}",
            report.qps_baseline
        ));
        for (shards, qps) in &report.qps_by_shards {
            summary_lines.push(format!("\"throughput_qps_shards_{shards}\": {qps:.3}"));
        }
        let qps4 = report
            .qps_by_shards
            .iter()
            .find(|(s, _)| *s == 4)
            .map(|(_, q)| *q)
            .unwrap_or(0.0);
        let speedup = qps4 / report.qps_baseline;
        summary_lines.push(format!(
            "\"throughput_speedup_4_shards_vs_baseline\": {speedup:.3}"
        ));
        summary_lines.push(format!(
            "\"throughput_cache_hit_rate_4_shards\": {:.4}",
            report.cache_hit_rate_4_shards
        ));
        summary_lines.push(format!(
            "\"throughput_distinct_queries\": {}",
            report.distinct_queries
        ));
        summary_lines.push(format!(
            "\"throughput_total_queries\": {}",
            report.total_queries
        ));
        summary_lines.push(format!("\"throughput_threads\": {}", report.threads));
        eprintln!(
            "[summary] serving throughput: engine@4 shards {speedup:.2}x vs naive baseline \
             ({:.1} vs {:.1} q/s)",
            qps4, report.qps_baseline
        );
    }

    if let Some(report) = &live_update {
        let speedup = report.qps_segmented / report.qps_rebuild;
        summary_lines.push(format!(
            "\"live_update_qps_segmented\": {:.3}",
            report.qps_segmented
        ));
        summary_lines.push(format!(
            "\"live_update_qps_rebuild\": {:.3}",
            report.qps_rebuild
        ));
        summary_lines.push(format!("\"live_update_speedup\": {speedup:.3}"));
        summary_lines.push(format!(
            "\"live_update_p95_read_ns\": {}",
            report.p95_read_ns
        ));
        summary_lines.push(format!("\"live_update_queries\": {}", report.queries));
        summary_lines.push(format!(
            "\"live_update_mutation_batches\": {}",
            report.mutation_batches
        ));
        summary_lines.push(format!(
            "\"live_update_final_segments\": {}",
            report.final_segments
        ));
        summary_lines.push(format!(
            "\"live_update_final_tombstones\": {}",
            report.final_tombstones
        ));
        summary_lines.push(format!(
            "\"live_update_compactions\": {}",
            report.compactions
        ));
        eprintln!(
            "[summary] live update: segmented engine {speedup:.2}x vs rebuild-per-mutation \
             ({:.1} vs {:.1} q/s), p95 read {:.2} ms",
            report.qps_segmented,
            report.qps_rebuild,
            report.p95_read_ns as f64 / 1e6
        );
    }

    if let Some(report) = &cold_start {
        let speedup = report.rebuild_ns as f64 / report.load_ns as f64;
        summary_lines.push(format!("\"cold_start_speedup\": {speedup:.3}"));
        summary_lines.push(format!(
            "\"cold_start_load_ms\": {:.3}",
            report.load_ns as f64 / 1e6
        ));
        summary_lines.push(format!(
            "\"cold_start_rebuild_ms\": {:.3}",
            report.rebuild_ns as f64 / 1e6
        ));
        summary_lines.push(format!(
            "\"cold_start_snapshot_bytes\": {}",
            report.snapshot_bytes
        ));
        summary_lines.push(format!("\"cold_start_docs\": {}", report.docs));
        summary_lines.push(format!(
            "\"checkpoint_full_bytes\": {}",
            report.checkpoint_full_bytes
        ));
        summary_lines.push(format!(
            "\"checkpoint_delta_bytes_small\": {}",
            report.checkpoint_delta_bytes_small
        ));
        summary_lines.push(format!(
            "\"checkpoint_delta_bytes_large\": {}",
            report.checkpoint_delta_bytes_large
        ));
        let delta_ratio = report.checkpoint_delta_bytes_large as f64
            / report.checkpoint_delta_bytes_small.max(1) as f64;
        summary_lines.push(format!("\"checkpoint_delta_ratio\": {delta_ratio:.3}"));
        eprintln!(
            "[summary] cold start: snapshot load {speedup:.2}x vs index rebuild \
             ({:.2} vs {:.2} ms); checkpoint delta ratio {delta_ratio:.2} across a 4x corpus",
            report.load_ns as f64 / 1e6,
            report.rebuild_ns as f64 / 1e6
        );
    }

    if let Some(report) = &serving_latency {
        for (shards, qps, p50, p95, p99) in &report.by_shards {
            summary_lines.push(format!("\"serving_latency_qps_shards_{shards}\": {qps:.3}"));
            summary_lines.push(format!(
                "\"serving_latency_p50_ms_shards_{shards}\": {p50:.3}"
            ));
            summary_lines.push(format!(
                "\"serving_latency_p95_ms_shards_{shards}\": {p95:.3}"
            ));
            summary_lines.push(format!(
                "\"serving_latency_p99_ms_shards_{shards}\": {p99:.3}"
            ));
        }
        // Headline numbers from the 4-shard server (measured in both
        // smoke and full configurations).
        if let Some((_, qps, p50, p95, p99)) =
            report.by_shards.iter().find(|(s, ..)| *s == 4).copied()
        {
            summary_lines.push(format!("\"serving_latency_qps\": {qps:.3}"));
            summary_lines.push(format!("\"serving_latency_p50_ms\": {p50:.3}"));
            summary_lines.push(format!("\"serving_latency_p95_ms\": {p95:.3}"));
            summary_lines.push(format!("\"serving_latency_p99_ms\": {p99:.3}"));
            // Per-request latency speedup from concurrent shard pulls:
            // p50 at 1 shard (sequential merge) over p50 at 4 shards.
            // > 1 requires a multi-core host — `pull_workers` records
            // whether the pool was even enabled (0 = single-core run).
            let p50_1 = report
                .by_shards
                .iter()
                .find(|(s, ..)| *s == 1)
                .map(|&(_, _, p50, _, _)| p50)
                .unwrap_or(0.0);
            let speedup = if p50 > 0.0 { p50_1 / p50 } else { 0.0 };
            summary_lines.push(format!("\"serving_latency_shard_speedup\": {speedup:.3}"));
            summary_lines.push(format!(
                "\"serving_latency_pull_workers\": {}",
                report.pull_workers
            ));
            summary_lines.push(format!(
                "\"serving_latency_requests_per_shard_count\": {}",
                report.requests_per_shard_count
            ));
            eprintln!(
                "[summary] serving latency @4 shards: {qps:.1} q/s, p50 {p50:.2} ms, \
                 shard speedup {speedup:.2}x ({} pull workers)",
                report.pull_workers
            );
        }
    }

    if let Some(report) = &quality {
        // The suite asserts pass, so this key is 1 whenever it appears;
        // it exists so `--verify` can prove the gates actually ran.
        summary_lines.push("\"quality_gate_pass\": 1".to_string());
        summary_lines.push(format!("\"quality_gate_families\": {}", report.families));
        summary_lines.push(format!("\"quality_gate_queries\": {}", report.queries));
        summary_lines.push(format!(
            "\"quality_gate_worst_ndcg_delta\": {:.4}",
            report.worst_ndcg_delta
        ));
        summary_lines.push(format!(
            "\"quality_gate_worst_mrr_delta\": {:.4}",
            report.worst_mrr_delta
        ));
        summary_lines.push(format!(
            "\"quality_gate_min_unique_sources_gain\": {:.4}",
            report.min_unique_sources_gain
        ));
        summary_lines.push(format!(
            "\"quality_gate_min_dissimilarity_gain\": {:.4}",
            report.min_dissimilarity_gain
        ));
        eprintln!(
            "[summary] quality gates: {} families pass, worst NDCG delta {:+.4}, \
             min unique-source gain {:+.3}",
            report.families, report.worst_ndcg_delta, report.min_unique_sources_gain
        );
    }

    if let Some(report) = &frontier {
        summary_lines.push(format!("\"frontier_modes\": {}", report.modes));
        summary_lines.push(format!("\"frontier_shapes\": {}", report.shapes));
        // The suite asserted identity before timing; the key exists so
        // `--verify` can prove the oracle check actually ran.
        summary_lines.push("\"frontier_oracle_identity_pass\": 1".to_string());
        for row in &report.rows {
            summary_lines.push(format!(
                "\"frontier_gap_{}_{}\": {:.4}",
                row.mode, row.shape, row.gap
            ));
            summary_lines.push(format!(
                "\"frontier_speedup_{}_{}\": {:.3}",
                row.mode, row.shape, row.speedup_vs_exact
            ));
            summary_lines.push(format!(
                "\"frontier_violations_{}_{}\": {}",
                row.mode, row.shape, row.violations
            ));
        }
        summary_lines.push(format!(
            "\"frontier_best_cheap_speedup\": {:.3}",
            report.best_cheap_speedup
        ));
        summary_lines.push(format!(
            "\"frontier_best_cheap_speedup_gap\": {:.4}",
            report.best_cheap_speedup_gap
        ));
        eprintln!(
            "[summary] frontier: {} modes × {} shapes; best cheap-mode speedup {:.1}x \
             at gap {:+.4}",
            report.modes, report.shapes, report.best_cheap_speedup, report.best_cheap_speedup_gap
        );
        // The headline claim is only asserted on full runs: smoke corpora
        // are too small for stable timing ratios.
        if !smoke {
            assert!(
                report.best_cheap_speedup >= 5.0,
                "no cheap diversify mode reached 5x over Exact(Cut) \
                 (best {:.2}x)",
                report.best_cheap_speedup
            );
        }
    }

    let cell_json: Vec<String> = cells
        .iter()
        .map(|c| format!("    {}", c.to_json()))
        .collect();
    let doc = format!(
        "{{\n  \"schema\": \"divtopk-perfbase/1\",\n  \"bench_id\": 9,\n  \"smoke\": {smoke},\n  \"runs_per_cell\": {runs},\n  \"cells\": [\n{}\n  ],\n  \"summary\": {{{}}}\n}}\n",
        cell_json.join(",\n"),
        summary_lines.join(", "),
    );

    // Self-check before publishing: strict well-formedness + sanity.
    json::validate(&doc).unwrap_or_else(|e| panic!("perfbase emitted malformed JSON: {e}"));
    assert!(!cells.is_empty(), "perfbase produced no cells");
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    // Re-read what landed on disk — CI asserts on the artifact, not the
    // in-memory string.
    let on_disk = std::fs::read_to_string(&out_path).expect("re-reading output");
    json::validate(&on_disk).expect("on-disk BENCH json is malformed");
    eprintln!("[done] {} cells → {out_path}", cells.len());
}
