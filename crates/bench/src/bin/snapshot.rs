//! `snapshot` — the CI cross-process persistence gate (DESIGN.md §14).
//!
//! Three subcommands; `save` and `check` run in **separate CI jobs**
//! with only the snapshot directory travelling between them as a build
//! artifact:
//!
//! ```text
//! snapshot save  --out DIR       # build the reference serving state, persist it
//! snapshot check --in  DIR       # rebuild the same state from scratch, load the
//!                                # artifact, assert byte-equality of every answer
//! snapshot incremental --dir DIR # save, mutate, save again; assert the second
//!                                # checkpoint rewrote only the new segment, the
//!                                # tail chunk, and the manifest (by content diff)
//! ```
//!
//! Both sides construct the *same deterministic reference state*
//! (seeded synthetic corpus + a scripted mutation log), so `check` can
//! compare the loaded engine against a fresh in-process rebuild without
//! any side channel. Because save and load happen in different
//! processes — and, in CI, in different jobs on different runners — the
//! comparison catches host- or build-dependence in the format (struct
//! layout leaks, endianness mistakes, uninitialized padding) that a
//! same-process round-trip test can never see.
//!
//! `check` asserts full [`SearchOutput`] equality (hits, total score,
//! metrics — early-stop point included) for scans *and* TA queries, plus
//! the data-level `verify_rebuild_equivalence` oracle on the loaded
//! state, and exits non-zero on the first divergence.

use divtopk_core::rng::Pcg;
use divtopk_engine::prelude::*;
use divtopk_text::prelude::*;

/// Deterministic seed for the reference state and query selection.
const SEED: u64 = 0x0510;

/// The reference serving state: a 700-document reuters-like base epoch
/// partitioned into 2 segments, plus a scripted add/delete/compact log —
/// so the snapshot exercises every section type (multiple segments,
/// tombstones, a bumped compaction counter, a non-zero generation).
fn reference_engine() -> Engine {
    let base_docs = 700usize;
    let pool = 60usize;
    let donor = generate(&SynthConfig::reuters_like().with_num_docs(base_docs + pool));
    let mut builder = CorpusBuilder::with_synthetic_vocab(donor.num_terms());
    for d in 0..base_docs as DocId {
        builder.add_document(donor.doc(d).clone());
    }
    let engine = Engine::new(builder.build(), EngineConfig::new(2));
    let mut rng = Pcg::new(SEED);
    let mut next = base_docs as DocId;
    for round in 0..4 {
        let batch: Vec<Document> = (next..next + 15).map(|d| donor.doc(d).clone()).collect();
        engine.add_docs(batch);
        next += 15;
        let victims: Vec<DocId> = (0..6).map(|_| rng.below(next)).collect();
        engine.delete_docs(&victims);
        if round % 2 == 1 {
            engine.compact();
        }
    }
    engine
}

/// The reference query set: scans and 2-keyword TA queries from the low
/// kfreq bands, deterministic given the corpus.
fn reference_queries(corpus: &Corpus) -> Vec<(Query, SearchOptions)> {
    let options = SearchOptions::new(8).with_tau(0.6).with_bound_decay(0.005);
    let mut queries = Vec::new();
    let mut seed = SEED;
    while queries.len() < 8 && seed < SEED + 10_000 {
        seed += 1;
        let band = 1 + (seed % 3) as u8;
        let terms = if queries.len() % 2 == 0 { 1 } else { 2 };
        if let Some(q) = query_for_band(corpus, band, terms, seed) {
            let query = if q.terms.len() == 1 {
                Query::Scan(q.terms[0])
            } else {
                Query::Keywords(q)
            };
            if !queries.iter().any(|(existing, _)| existing == &query) {
                queries.push((query, options.clone()));
            }
        }
    }
    assert!(queries.len() >= 4, "could not assemble the CI query set");
    queries
}

fn save(path: &str) {
    let engine = reference_engine();
    let report = engine
        .save_snapshot(path)
        .unwrap_or_else(|e| panic!("saving {path}: {e}"));
    eprintln!(
        "[snapshot save] generation {} · {} segments · {} tombstones → {} files, {} bytes at {path}",
        engine.generation(),
        engine.stats().segments,
        engine.stats().tombstones,
        report.files_written,
        report.bytes_written,
    );
}

fn check(path: &str) {
    let loaded = Engine::load_snapshot(path, &EngineConfig::default())
        .unwrap_or_else(|e| panic!("loading {path}: {e}"));
    let fresh = reference_engine();
    assert_eq!(
        loaded.generation(),
        fresh.generation(),
        "generation diverged across processes"
    );
    let (l, f) = (loaded.stats(), fresh.stats());
    assert_eq!(l.segments, f.segments, "segment count diverged");
    assert_eq!(l.tombstones, f.tombstones, "tombstone count diverged");
    assert!(
        l.layout_from_snapshot && !f.layout_from_snapshot,
        "layout provenance must distinguish loaded from built engines"
    );
    loaded
        .verify_rebuild_equivalence()
        .expect("loaded state failed the rebuild-equivalence oracle");
    let queries = reference_queries(&fresh.corpus());
    let n = queries.len();
    for (i, (query, options)) in queries.into_iter().enumerate() {
        let want = fresh.search(&query, &options).expect("fresh query");
        let got = loaded.search(&query, &options).expect("loaded query");
        // Full-output equality: identical bits + identical segment layout
        // mean the whole pull sequence reproduces, so even the metrics
        // and early-stop point must match byte for byte.
        assert_eq!(
            want, got,
            "query {i} diverged between the loaded artifact and the fresh rebuild"
        );
    }
    eprintln!(
        "[snapshot check] {path}: {n} queries byte-identical to a fresh rebuild ✓ \
         (generation {}, {} segments, {} tombstones)",
        l.generation, l.segments, l.tombstones
    );
}

/// Every file in the snapshot directory, by name → content bytes. The
/// directory is small (the reference state is ~1 MB), so a full read is
/// the simplest honest way to detect rewrites.
fn dir_contents(path: &str) -> std::collections::BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(path)
        .unwrap_or_else(|e| panic!("reading {path}: {e}"))
        .map(|entry| {
            let entry = entry.expect("directory entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(entry.path()).expect("snapshot file");
            (name, bytes)
        })
        .collect()
}

/// The incremental-checkpoint gate: after one mutation batch, the second
/// save must rewrite **only** the manifest and the (unsealed) tail
/// chunk, and add **only** the batch's new segment file — every other
/// file must be byte-identical on disk. This pins the O(delta) claim at
/// the file-system level, not just via `SaveReport`'s own accounting.
fn incremental(path: &str) {
    let _ = std::fs::remove_dir_all(path);
    let engine = reference_engine();
    let first = engine
        .save_snapshot(path)
        .unwrap_or_else(|e| panic!("saving {path}: {e}"));
    let before = dir_contents(path);

    let n_terms = engine.corpus().num_terms() as TermId;
    let batch: Vec<Document> = (0..10u32)
        .map(|i| {
            Document::from_tokens(
                format!("inc{i}"),
                vec![i % n_terms, (i * 3 + 1) % n_terms, (i * 7 + 2) % n_terms],
            )
        })
        .collect();
    engine.add_docs(batch);
    engine.delete_docs(&[2, 5]);
    let second = engine
        .save_snapshot(path)
        .unwrap_or_else(|e| panic!("re-saving {path}: {e}"));
    let after = dir_contents(path);

    let mut rewritten: Vec<&str> = Vec::new();
    let mut added: Vec<&str> = Vec::new();
    for (name, bytes) in &after {
        match before.get(name) {
            None => added.push(name),
            Some(old) if old != bytes => rewritten.push(name),
            Some(_) => {}
        }
    }
    let tail_chunk = before
        .keys()
        .filter(|n| n.starts_with("docs-"))
        .max()
        .cloned()
        .expect("reference snapshot has a document chunk");
    for name in &rewritten {
        assert!(
            *name == "MANIFEST" || **name == tail_chunk,
            "incremental save rewrote {name}, expected only MANIFEST and {tail_chunk}"
        );
    }
    for name in &added {
        assert!(
            name.starts_with("seg-") && name.ends_with(".bin"),
            "incremental save added unexpected file {name}"
        );
    }
    assert_eq!(added.len(), 1, "one mutation batch must add one segment");
    let unchanged = after.len() - rewritten.len() - added.len();
    assert!(
        unchanged >= 3,
        "epoch and prior segments must survive untouched (only {unchanged} unchanged)"
    );
    assert_eq!(
        second.files_written,
        rewritten.len() + added.len(),
        "SaveReport accounting disagrees with the on-disk diff"
    );
    assert!(
        second.bytes_written * 2 < first.bytes_written,
        "incremental checkpoint wrote {} of {} initial bytes — not O(delta)",
        second.bytes_written,
        first.bytes_written
    );

    let loaded = Engine::load_snapshot(path, &EngineConfig::default())
        .unwrap_or_else(|e| panic!("loading {path}: {e}"));
    assert_eq!(loaded.generation(), engine.generation());
    loaded
        .verify_rebuild_equivalence()
        .expect("incrementally-checkpointed state failed the rebuild oracle");
    eprintln!(
        "[snapshot incremental] {path}: rewrote {:?}, added {:?}, {unchanged} files untouched \
         ({} of {} bytes) ✓",
        rewritten, added, second.bytes_written, first.bytes_written
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, flag, path] if cmd == "save" && flag == "--out" => save(path),
        [cmd, flag, path] if cmd == "check" && flag == "--in" => check(path),
        [cmd, flag, path] if cmd == "incremental" && flag == "--dir" => incremental(path),
        _ => {
            eprintln!(
                "usage: snapshot save --out DIR | snapshot check --in DIR | snapshot incremental --dir DIR"
            );
            std::process::exit(2);
        }
    }
}
