//! `quality_gate` — the CI quality gate: replays a query-pack through
//! the engine twice per query (diversity on vs. off, same snapshot),
//! scores diversity and relevance, and exits non-zero naming the family
//! and metric of every gate that failed.
//!
//! ```text
//! quality_gate [--pack PATH] [--out PATH]
//! quality_gate --emit-default-pack PATH
//! ```
//!
//! With no `--pack`, the built-in default pack runs. `--out` writes the
//! self-validated `divtopk-quality/1` evidence table. The second form
//! writes the built-in pack (`divtopk-pack/1`) to PATH and exits — the
//! committed `benchmarks/query-pack.v1.json` is produced this way.

use divtopk_bench::quality::evaluate;
use divtopk_bench::workload::QueryPack;

struct Args {
    pack: Option<String>,
    out: Option<String>,
    emit_default: Option<String>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            pack: None,
            out: None,
            emit_default: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--pack" => args.pack = Some(value("--pack")?),
                "--out" => args.out = Some(value("--out")?),
                "--emit-default-pack" => {
                    args.emit_default = Some(value("--emit-default-pack")?);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(args)
    }
}

fn main() {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(why) => {
            eprintln!("quality_gate: {why}");
            eprintln!("usage: quality_gate [--pack PATH] [--out PATH] | --emit-default-pack PATH");
            std::process::exit(2);
        }
    };

    if let Some(path) = &args.emit_default {
        let text = QueryPack::default_pack().to_json_pretty();
        std::fs::write(path, text).unwrap_or_else(|e| {
            eprintln!("quality_gate: writing {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("quality_gate: wrote default pack to {path}");
        return;
    }

    let pack = match &args.pack {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("quality_gate: reading {path}: {e}");
                std::process::exit(2);
            });
            match QueryPack::from_json(&text) {
                Ok(pack) => pack,
                Err(why) => {
                    eprintln!("quality_gate: {path}: {why}");
                    std::process::exit(2);
                }
            }
        }
        None => QueryPack::default_pack(),
    };

    eprintln!(
        "quality_gate: evaluating pack {:?} ({} families)",
        pack.name,
        pack.families.len()
    );
    let report = match evaluate(&pack) {
        Ok(report) => report,
        Err(why) => {
            eprintln!("quality_gate: evaluation failed: {why}");
            std::process::exit(2);
        }
    };

    println!("{}", report.render_table());
    if let Some(path) = &args.out {
        std::fs::write(path, report.to_json_pretty()).unwrap_or_else(|e| {
            eprintln!("quality_gate: writing {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("quality_gate: wrote evidence table to {path}");
    }

    if report.pass() {
        eprintln!("quality_gate: PASS ({} families)", report.families.len());
        return;
    }
    for failure in report.failures() {
        eprintln!("quality_gate: FAIL {failure}");
    }
    std::process::exit(1);
}
