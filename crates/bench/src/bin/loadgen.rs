//! `loadgen` — the open-loop load generator: replays a deterministic
//! query trace against a running `serve` instance at a fixed arrival
//! rate and reports achieved q/s plus p50/p95/p99 latency (measured from
//! each request's *scheduled* arrival, so server-side queueing counts).
//!
//! ```text
//! loadgen --addr HOST:PORT [--rate Q/S] [--duration SECS]
//!         [--connections N] [--seed N] [--mix TA_FRACTION] [--out PATH]
//! ```
//!
//! Prints a JSON report; exits non-zero if any request drew a transport
//! failure or a typed error (backpressure rejections are *not* errors —
//! they are the server behaving as specified under overload).

use divtopk_bench::json;
use divtopk_bench::load::{LoadSpec, run_open_loop};

struct Args {
    addr: String,
    rate: f64,
    duration: f64,
    connections: usize,
    seed: u64,
    mix: f64,
    out: Option<String>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            addr: String::new(),
            rate: 200.0,
            duration: 5.0,
            connections: 4,
            seed: 1,
            mix: 0.25,
            out: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--addr" => args.addr = value("--addr")?,
                "--rate" => args.rate = parse(&value("--rate")?)?,
                "--duration" => args.duration = parse(&value("--duration")?)?,
                "--connections" => args.connections = parse(&value("--connections")?)?,
                "--seed" => args.seed = parse(&value("--seed")?)?,
                "--mix" => args.mix = parse(&value("--mix")?)?,
                "--out" => args.out = Some(value("--out")?),
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if args.addr.is_empty() {
            return Err("--addr is required".to_owned());
        }
        if !(args.rate > 0.0 && args.duration > 0.0) {
            return Err("--rate and --duration must be positive".to_owned());
        }
        Ok(args)
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad numeric value {s:?}"))
}

fn main() {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(why) => {
            eprintln!("loadgen: {why}");
            eprintln!(
                "usage: loadgen --addr HOST:PORT [--rate Q/S] [--duration SECS] \
                 [--connections N] [--seed N] [--mix TA_FRACTION] [--out PATH]"
            );
            std::process::exit(2);
        }
    };
    let spec = LoadSpec {
        addr: args.addr.clone(),
        rate: args.rate,
        total: (args.rate * args.duration).ceil().max(1.0) as usize,
        connections: args.connections,
        seed: args.seed,
        ta_fraction: args.mix,
        k: 5,
        tau: 0.5,
        shape: divtopk_bench::load::ArrivalShape::Uniform,
    };
    let report = match run_open_loop(&spec) {
        Ok(report) => report,
        Err(why) => {
            eprintln!("loadgen: {why}");
            std::process::exit(1);
        }
    };
    let rendered = format!(
        "{{\n  \"addr\": \"{}\",\n  \"rate_target\": {:.3},\n  \"sent\": {},\n  \
         \"ok\": {},\n  \"overloaded\": {},\n  \"errors\": {},\n  \
         \"qps_achieved\": {:.3},\n  \"p50_ms\": {:.3},\n  \"p95_ms\": {:.3},\n  \
         \"p99_ms\": {:.3},\n  \"elapsed_s\": {:.3}\n}}",
        json::escape_string(&args.addr),
        args.rate,
        report.sent,
        report.ok,
        report.overloaded,
        report.errors,
        report.qps(),
        report.quantile_ms(0.50),
        report.quantile_ms(0.95),
        report.quantile_ms(0.99),
        report.elapsed.as_secs_f64(),
    );
    json::validate(&rendered).unwrap_or_else(|e| panic!("loadgen emitted malformed JSON: {e}"));
    println!("{rendered}");
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{rendered}\n"))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }
    if report.errors > 0 || report.ok == 0 {
        eprintln!(
            "loadgen: FAILED ({} errors, {} ok of {} sent)",
            report.errors, report.ok, report.sent
        );
        std::process::exit(1);
    }
    eprintln!(
        "loadgen: {} ok, {} overloaded, {:.1} q/s achieved",
        report.ok,
        report.overloaded,
        report.qps()
    );
}
