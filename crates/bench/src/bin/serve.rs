//! `serve` — the standalone serving binary: builds (or loads) an engine,
//! binds the wire protocol on a TCP port, prints `LISTENING <addr>` on
//! stdout, and serves until stdin closes (how CI and scripts stop it
//! cleanly without signal handling).
//!
//! ```text
//! serve [--port N] [--shards N] [--docs N] [--snapshot PATH]
//!       [--cache N] [--pull-workers N] [--workers N] [--queue N] [--seed N]
//! ```
//!
//! Without `--snapshot` the corpus is the deterministic reuters-like
//! synthetic collection (same generator as the benchmarks), so a load
//! generator pointed at the printed address replays a reproducible
//! workload end to end.

use divtopk_engine::prelude::*;
use divtopk_text::prelude::*;
use std::io::Read;
use std::sync::Arc;

struct Args {
    port: u16,
    shards: usize,
    docs: usize,
    snapshot: Option<String>,
    cache: usize,
    pull_workers: Option<usize>,
    workers: usize,
    queue: usize,
    seed: u64,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            port: 0,
            shards: 4,
            docs: 4000,
            snapshot: None,
            cache: 256,
            pull_workers: None,
            workers: 0,
            queue: 64,
            seed: 0x0600,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--port" => args.port = parse(&value("--port")?)?,
                "--shards" => args.shards = parse(&value("--shards")?)?,
                "--docs" => args.docs = parse(&value("--docs")?)?,
                "--snapshot" => args.snapshot = Some(value("--snapshot")?),
                "--cache" => args.cache = parse(&value("--cache")?)?,
                "--pull-workers" => {
                    args.pull_workers = Some(parse(&value("--pull-workers")?)?);
                }
                "--workers" => args.workers = parse(&value("--workers")?)?,
                "--queue" => args.queue = parse(&value("--queue")?)?,
                "--seed" => args.seed = parse(&value("--seed")?)?,
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(args)
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad numeric value {s:?}"))
}

fn main() {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(why) => {
            eprintln!("serve: {why}");
            eprintln!(
                "usage: serve [--port N] [--shards N] [--docs N] [--snapshot PATH] \
                 [--cache N] [--pull-workers N] [--workers N] [--queue N] [--seed N]"
            );
            std::process::exit(2);
        }
    };
    let mut config = EngineConfig::new(args.shards).with_cache_capacity(args.cache);
    if let Some(pull_workers) = args.pull_workers {
        config = config.with_pull_workers(pull_workers);
    }
    let engine = match &args.snapshot {
        Some(path) => Engine::load_snapshot(path, &config)
            .unwrap_or_else(|e| panic!("loading snapshot {path}: {e}")),
        None => {
            let corpus = generate(
                &SynthConfig::reuters_like()
                    .with_num_docs(args.docs)
                    .with_seed(args.seed),
            );
            Engine::new(corpus, config)
        }
    };
    eprintln!(
        "[serve] generation {} · {} segments · {} docs · {} terms · {} pull workers",
        engine.generation(),
        engine.stats().segments,
        engine.corpus().num_docs(),
        engine.corpus().num_terms(),
        engine.pull_workers(),
    );
    let server_config = ServerConfig {
        workers: args.workers,
        queue_capacity: args.queue,
    };
    let server = Server::start(
        Arc::new(engine),
        &format!("127.0.0.1:{}", args.port),
        server_config,
    )
    .unwrap_or_else(|e| panic!("binding port {}: {e}", args.port));
    // The machine-readable ready line scripts and CI wait for.
    println!("LISTENING {}", server.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    // Serve until stdin closes — the portable, dependency-free stop
    // signal (CI pipes `sleep`'s stdout in; closing it stops the server).
    let mut sink = Vec::new();
    std::io::stdin().read_to_end(&mut sink).ok();
    drop(server); // Drop shuts down: drain queue, close connections, join.
    eprintln!("[serve] stdin closed, shut down cleanly");
}
