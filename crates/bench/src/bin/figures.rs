//! The figure/table harness: regenerates **every** evaluation artifact of
//! *Diversifying Top-K Results* (VLDB 2012) on the synthetic enwiki/reuters
//! stand-ins (DESIGN.md §3 and §6).
//!
//! ```text
//! cargo run --release -p divtopk-bench --bin figures -- all
//! cargo run --release -p divtopk-bench --bin figures -- fig13 fig16
//! cargo run --release -p divtopk-bench --bin figures -- --scale 0.25 --budget 5 all
//! ```
//!
//! * `fig2`  — greedy-vs-optimal star-chain family (§4, Fig. 2)
//! * `fig12` — kfreq keyword bands per dataset (Fig. 12)
//! * `fig13` — vary k on enwiki: (a/b) small-k time/memory, (c/d) large-k
//! * `fig14` — vary τ on enwiki
//! * `fig15` — vary kfreq on enwiki
//! * `fig16/17/18` — the same three sweeps on reuters
//!
//! Time cells are seconds; memory cells are the allocation peak during the
//! diversified search (counting allocator). `INF` marks runs that blew the
//! time/byte budget — the analogue of the paper's 2 GB exhaustion.

use divtopk_bench::{Measurement, PeakAlloc, measure, print_table};
use divtopk_core::prelude::*;
use divtopk_core::testgen;
use divtopk_text::prelude::*;
use std::time::Duration;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

/// Deterministic seed for query selection (shared by EXPERIMENTS.md).
const QUERY_SEED: u64 = 2012;

#[derive(Clone)]
struct Ctx {
    /// Corpus scale factor (fraction of the preset document counts).
    scale: f64,
    /// Total wall-clock budget per run; exceeding it prints INF.
    budget: Duration,
    /// Framework bound-decay throttle (see DivSearchConfig docs).
    decay: f64,
}

impl Default for Ctx {
    fn default() -> Ctx {
        Ctx {
            scale: 1.0,
            budget: Duration::from_secs(15),
            decay: 0.005,
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Dataset {
    Enwiki,
    Reuters,
}

impl Dataset {
    fn name(self) -> &'static str {
        match self {
            Dataset::Enwiki => "enwiki-like",
            Dataset::Reuters => "reuters-like",
        }
    }
}

/// Lazily built corpora, shared across the figures of one invocation.
#[derive(Default)]
struct Datasets {
    enwiki: Option<(Corpus, InvertedIndex)>,
    reuters: Option<(Corpus, InvertedIndex)>,
}

impl Datasets {
    fn get(&mut self, which: Dataset, ctx: &Ctx) -> &(Corpus, InvertedIndex) {
        let slot = match which {
            Dataset::Enwiki => &mut self.enwiki,
            Dataset::Reuters => &mut self.reuters,
        };
        if slot.is_none() {
            let base = match which {
                Dataset::Enwiki => SynthConfig::enwiki_like(),
                Dataset::Reuters => SynthConfig::reuters_like(),
            };
            let docs = ((base.num_docs as f64 * ctx.scale) as usize).max(500);
            let config = base.with_num_docs(docs);
            eprintln!(
                "[setup] generating {} corpus ({} docs)…",
                which.name(),
                docs
            );
            let t = std::time::Instant::now();
            let corpus = generate(&config);
            let index = InvertedIndex::build(&corpus);
            eprintln!(
                "[setup] {}: {} docs, {} terms, {} postings ({:.1?})",
                which.name(),
                corpus.num_docs(),
                corpus.num_terms(),
                index.num_postings(),
                t.elapsed()
            );
            *slot = Some((corpus, index));
        }
        slot.as_ref().expect("just built")
    }
}

/// Paper parameter grids.
const SMALL_K_ENWIKI: [usize; 5] = [40, 80, 120, 160, 200];
const SMALL_K_REUTERS: [usize; 5] = [60, 80, 100, 110, 120];
const LARGE_K: [usize; 5] = [500, 700, 900, 1300, 2000];
const TAUS: [f64; 5] = [0.4, 0.5, 0.6, 0.7, 0.8];
const KFREQS: [u8; 5] = [1, 2, 3, 4, 5];
const DEFAULT_TAU: f64 = 0.6;
const DEFAULT_KFREQ: u8 = 3;

fn default_small_k(ds: Dataset) -> usize {
    match ds {
        Dataset::Enwiki => 120,
        Dataset::Reuters => 100,
    }
}
const DEFAULT_LARGE_K: usize = 900;

#[derive(Clone, Copy, PartialEq)]
enum Algo {
    AStar,
    Dp,
    Cut,
}

impl Algo {
    fn name(self) -> &'static str {
        match self {
            Algo::AStar => "div-astar",
            Algo::Dp => "div-dp",
            Algo::Cut => "div-cut",
        }
    }

    fn exact(self) -> ExactAlgorithm {
        match self {
            Algo::AStar => ExactAlgorithm::AStar,
            Algo::Dp => ExactAlgorithm::Dp,
            Algo::Cut => ExactAlgorithm::Cut,
        }
    }
}

const SMALL_ALGOS: [Algo; 3] = [Algo::AStar, Algo::Dp, Algo::Cut];
const LARGE_ALGOS: [Algo; 2] = [Algo::Dp, Algo::Cut];

/// One diversified-search run; returns the measurement and, when finished,
/// the total score (for cross-algorithm consistency checks).
fn run_query(
    ds: &mut Datasets,
    which: Dataset,
    ctx: &Ctx,
    k: usize,
    tau: f64,
    kfreq: u8,
    algo: Algo,
) -> (Measurement, Option<Score>) {
    let (corpus, index) = ds.get(which, ctx);
    let limits = SearchLimits {
        time_budget: Some(ctx.budget),
        max_bytes: Some(1 << 30), // the ledger analogue of the paper's 2 GB
        ..SearchLimits::default()
    };
    let options = SearchOptions::new(k)
        .with_tau(tau)
        .with_mode(DiversifyMode::Exact(algo.exact()))
        .with_limits(limits)
        .with_bound_decay(ctx.decay);
    let searcher = DiversifiedSearcher::new(corpus, index);

    match which {
        Dataset::Enwiki => {
            // Multi-keyword query (2 terms) via the threshold algorithm.
            let Some(query) = query_for_band(corpus, kfreq, 2, QUERY_SEED) else {
                return (Measurement::Inf, None);
            };
            let (m, out) = measure(|| searcher.search_ta(&query, &options).ok());
            (m, out.map(|o| o.total_score))
        }
        Dataset::Reuters => {
            // Single-keyword query via the incremental scan.
            let Some(query) = query_for_band(corpus, kfreq, 1, QUERY_SEED) else {
                return (Measurement::Inf, None);
            };
            let term = query.terms[0];
            let (m, out) = measure(|| searcher.search_scan(term, &options).ok());
            (m, out.map(|o| o.total_score))
        }
    }
}

/// A parameter sweep producing the paper's 4-panel figure (time/memory ×
/// small-k/large-k — or a single pair when the sweep is over τ/kfreq).
#[allow(clippy::too_many_arguments)]
fn sweep<X: std::fmt::Display + Copy>(
    ds: &mut Datasets,
    which: Dataset,
    ctx: &Ctx,
    title: &str,
    x_label: &str,
    xs: &[X],
    algos: &[Algo],
    params: impl Fn(X) -> (usize, f64, u8),
) {
    let mut time_rows = Vec::new();
    let mut mem_rows = Vec::new();
    for &x in xs {
        let (k, tau, kfreq) = params(x);
        let mut times = Vec::new();
        let mut mems = Vec::new();
        let mut scores: Vec<Option<Score>> = Vec::new();
        for &algo in algos {
            let (m, score) = run_query(ds, which, ctx, k, tau, kfreq, algo);
            times.push(m.time_cell());
            mems.push(m.mem_cell());
            scores.push(score);
        }
        // Exactness cross-check: all finishing algorithms agree.
        let finished: Vec<Score> = scores.into_iter().flatten().collect();
        if let Some(first) = finished.first() {
            assert!(
                finished.iter().all(|s| s.approx_eq(*first, 1e-6)),
                "{title} x={x}: algorithms disagree: {finished:?}"
            );
        }
        time_rows.push((format!("{x}"), times));
        mem_rows.push((format!("{x}"), mems));
    }
    let names: Vec<&str> = algos.iter().map(|a| a.name()).collect();
    print_table(
        &format!("{title} — processing time (s)"),
        x_label,
        &names,
        &time_rows,
    );
    print_table(
        &format!("{title} — peak memory"),
        x_label,
        &names,
        &mem_rows,
    );
}

/// Fig. 2: greedy quality collapse on the star-chain family (+ AB5 sweep).
fn fig2(_ds: &mut Datasets, _ctx: &Ctx) {
    println!("\n## Fig. 2 — greedy vs optimal (star-chain family)");
    let mut rows = Vec::new();
    for m in [50usize, 100, 200, 400] {
        let g = testgen::star_chain(m);
        let k = m;
        let (_, greedy_score) = divtopk_core::greedy::greedy(&g, k);
        let (meas, result) = measure(|| Some(divtopk_core::cut::div_cut(&g, k)));
        let exact = result.expect("measured Some").best().score();
        rows.push((
            format!("{m}"),
            vec![
                format!("{greedy_score}"),
                format!("{exact}"),
                format!("{:.1}x", exact.get() / greedy_score.get()),
                meas.time_cell(),
            ],
        ));
    }
    print_table(
        "Fig. 2 family (k = m middles)",
        "m",
        &["greedy", "optimal", "ratio", "div-cut (s)"],
        &rows,
    );
    println!("(paper's instance is m = 100: greedy 199 vs optimal 9,900 — ~50x)");
}

/// Fig. 12: the kfreq keyword bands for both datasets.
fn fig12(ds: &mut Datasets, ctx: &Ctx) {
    println!("\n## Fig. 12 — representative keywords per kfreq band");
    for which in [Dataset::Enwiki, Dataset::Reuters] {
        let (corpus, _) = ds.get(which, ctx);
        let pi = corpus.max_doc_freq();
        let mut rows = Vec::new();
        for band in KFREQS {
            let cell = match query_for_band(corpus, band, 2, QUERY_SEED) {
                Some(q) => q
                    .terms
                    .iter()
                    .map(|&t| format!("{} (df {})", corpus.vocab().term(t), corpus.doc_freq(t)))
                    .collect::<Vec<_>>()
                    .join(", "),
                None => "(band empty)".to_string(),
            };
            rows.push((format!("{band}"), vec![cell]));
        }
        print_table(
            &format!("{} (π = {pi})", which.name()),
            "kfreq",
            &["keywords"],
            &rows,
        );
    }
}

fn vary_k(ds: &mut Datasets, which: Dataset, ctx: &Ctx, fig: &str) {
    println!("\n## {fig} — vary k ({})", which.name());
    let small = match which {
        Dataset::Enwiki => SMALL_K_ENWIKI,
        Dataset::Reuters => SMALL_K_REUTERS,
    };
    sweep(
        ds,
        which,
        ctx,
        &format!("{fig}(a,b) small k (τ = {DEFAULT_TAU}, kfreq = {DEFAULT_KFREQ})"),
        "k",
        &small,
        &SMALL_ALGOS,
        |k| (k, DEFAULT_TAU, DEFAULT_KFREQ),
    );
    vary_k_large(ds, which, ctx, fig);
}

/// The large-k panel alone (re-runnable with a bigger `--budget`).
fn vary_k_large(ds: &mut Datasets, which: Dataset, ctx: &Ctx, fig: &str) {
    sweep(
        ds,
        which,
        ctx,
        &format!("{fig}(c,d) large k (τ = {DEFAULT_TAU}, kfreq = {DEFAULT_KFREQ})"),
        "k",
        &LARGE_K,
        &LARGE_ALGOS,
        |k| (k, DEFAULT_TAU, DEFAULT_KFREQ),
    );
}

/// The large-k τ panel alone.
fn vary_tau_large(ds: &mut Datasets, which: Dataset, ctx: &Ctx, fig: &str) {
    sweep(
        ds,
        which,
        ctx,
        &format!("{fig}(c,d) large k = {DEFAULT_LARGE_K} (kfreq = {DEFAULT_KFREQ})"),
        "tau",
        &TAUS,
        &LARGE_ALGOS,
        |tau| (DEFAULT_LARGE_K, tau, DEFAULT_KFREQ),
    );
}

fn vary_tau(ds: &mut Datasets, which: Dataset, ctx: &Ctx, fig: &str) {
    println!("\n## {fig} — vary τ ({})", which.name());
    let small_k = default_small_k(which);
    sweep(
        ds,
        which,
        ctx,
        &format!("{fig}(a,b) small k = {small_k} (kfreq = {DEFAULT_KFREQ})"),
        "tau",
        &TAUS,
        &SMALL_ALGOS,
        |tau| (small_k, tau, DEFAULT_KFREQ),
    );
    sweep(
        ds,
        which,
        ctx,
        &format!("{fig}(c,d) large k = {DEFAULT_LARGE_K} (kfreq = {DEFAULT_KFREQ})"),
        "tau",
        &TAUS,
        &LARGE_ALGOS,
        |tau| (DEFAULT_LARGE_K, tau, DEFAULT_KFREQ),
    );
}

fn vary_kfreq(ds: &mut Datasets, which: Dataset, ctx: &Ctx, fig: &str) {
    println!("\n## {fig} — vary kfreq ({})", which.name());
    let small_k = default_small_k(which);
    sweep(
        ds,
        which,
        ctx,
        &format!("{fig}(a,b) small k = {small_k} (τ = {DEFAULT_TAU})"),
        "kfreq",
        &KFREQS,
        &SMALL_ALGOS,
        |f| (small_k, DEFAULT_TAU, f),
    );
    sweep(
        ds,
        which,
        ctx,
        &format!("{fig}(c,d) large k = {DEFAULT_LARGE_K} (τ = {DEFAULT_TAU})"),
        "kfreq",
        &KFREQS,
        &LARGE_ALGOS,
        |f| (DEFAULT_LARGE_K, DEFAULT_TAU, f),
    );
}

/// Quality comparison (AB5): exact diversified top-k vs greedy vs MMR on
/// the paper's objective (total score under the pairwise-τ constraint).
fn quality(ds: &mut Datasets, ctx: &Ctx) {
    use divtopk_core::{ResultSource, Scored};
    use divtopk_text::mmr::{MmrConfig, mmr_documents};
    use divtopk_text::quality::{redundancy, total_score};

    println!("\n## Quality — exact vs greedy vs MMR (AB5)");
    for which in [Dataset::Enwiki, Dataset::Reuters] {
        let (corpus, index) = ds.get(which, ctx);
        let Some(query) = query_for_band(corpus, DEFAULT_KFREQ, 2, QUERY_SEED) else {
            continue;
        };
        let searcher = DiversifiedSearcher::new(corpus, index);
        let k = 20;
        let mut rows = Vec::new();
        for tau in [0.4, 0.6, 0.8] {
            // Exact (div-cut through the framework).
            let options = SearchOptions::new(k)
                .with_tau(tau)
                .with_bound_decay(ctx.decay)
                .with_limits(SearchLimits::with_time_budget(ctx.budget));
            let exact = searcher.search_ta(&query, &options).ok();

            // Materialize all candidates once for greedy and MMR.
            let mut ta = TaSource::new(corpus, index, &query.terms);
            let mut cands: Vec<Scored<DocId>> = Vec::new();
            while let Some(r) = ta.next_result() {
                cands.push(r);
            }
            cands.sort_by_key(|r| std::cmp::Reverse(r.score));
            cands.truncate(k * 25); // the two-step baselines' top-l prefetch

            // Greedy on the materialized diversity graph.
            let (graph, perm) = divtopk_core::DiversityGraph::from_items(
                &cands,
                |r| r.score,
                |a, b| {
                    divtopk_text::jaccard::weighted_jaccard(
                        corpus,
                        corpus.doc(a.item),
                        corpus.doc(b.item),
                    ) > tau
                },
            );
            let (greedy_nodes, greedy_score) = divtopk_core::greedy::greedy(&graph, k);
            let greedy_sel: Vec<Scored<DocId>> = greedy_nodes
                .iter()
                .map(|&v| cands[perm[v as usize] as usize].clone())
                .collect();
            debug_assert_eq!(total_score(&greedy_sel), greedy_score);

            // MMR (λ = 0.7), then also report its constraint violations.
            let mmr_sel = mmr_documents(corpus, &cands, &MmrConfig::new(k).with_lambda(0.7));
            let (mmr_viol, _) = redundancy(corpus, &mmr_sel, tau);

            rows.push((
                format!("{tau}"),
                vec![
                    exact
                        .map(|o| format!("{:.4}", o.total_score.get()))
                        .unwrap_or_else(|| "INF".into()),
                    format!("{:.4}", greedy_score.get()),
                    format!("{:.4}", total_score(&mmr_sel).get()),
                    format!("{mmr_viol}"),
                ],
            ));
        }
        print_table(
            &format!(
                "{} quality at k = 20 (kfreq = {DEFAULT_KFREQ})",
                which.name()
            ),
            "tau",
            &[
                "exact (score)",
                "greedy (score)",
                "MMR (score)",
                "MMR τ-violations",
            ],
            &rows,
        );
    }
    println!("(exact ≥ greedy always; MMR scores are not comparable when it violates τ)");
}

fn usage() -> ! {
    eprintln!(
        "usage: figures [--scale F] [--budget SECS] [--decay F] EXP...\n\
         EXP: fig2 fig12 fig13 fig14 fig15 fig16 fig17 fig18 quality all quick"
    );
    std::process::exit(2);
}

fn main() {
    let mut ctx = Ctx::default();
    let mut exps: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                ctx.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--budget" => {
                let secs: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                ctx.budget = Duration::from_secs(secs);
            }
            "--decay" => {
                ctx.decay = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            other if other.starts_with("--") => usage(),
            exp => exps.push(exp.to_string()),
        }
    }
    if exps.is_empty() {
        usage();
    }
    if exps.iter().any(|e| e == "quick") {
        // A fast smoke configuration for CI / development.
        ctx.scale = ctx.scale.min(0.1);
        ctx.budget = Duration::from_secs(3);
        exps = vec![
            "fig2".into(),
            "fig12".into(),
            "fig13".into(),
            "fig16".into(),
        ];
    }
    if exps.iter().any(|e| e == "all") {
        exps = [
            "fig2", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    println!(
        "# divtopk figure harness (scale {:.2}, budget {:?}, decay {})",
        ctx.scale, ctx.budget, ctx.decay
    );
    let mut ds = Datasets::default();
    for exp in &exps {
        match exp.as_str() {
            "fig2" => fig2(&mut ds, &ctx),
            "fig12" => fig12(&mut ds, &ctx),
            "fig13" => vary_k(&mut ds, Dataset::Enwiki, &ctx, "Fig13"),
            "fig13large" => vary_k_large(&mut ds, Dataset::Enwiki, &ctx, "Fig13"),
            "fig14" => vary_tau(&mut ds, Dataset::Enwiki, &ctx, "Fig14"),
            "fig14large" => vary_tau_large(&mut ds, Dataset::Enwiki, &ctx, "Fig14"),
            "fig15" => vary_kfreq(&mut ds, Dataset::Enwiki, &ctx, "Fig15"),
            "fig16large" => vary_k_large(&mut ds, Dataset::Reuters, &ctx, "Fig16"),
            "fig16" => vary_k(&mut ds, Dataset::Reuters, &ctx, "Fig16"),
            "fig17" => vary_tau(&mut ds, Dataset::Reuters, &ctx, "Fig17"),
            "fig18" => vary_kfreq(&mut ds, Dataset::Reuters, &ctx, "Fig18"),
            "quality" => quality(&mut ds, &ctx),
            other => {
                eprintln!("unknown experiment {other:?}");
                usage();
            }
        }
    }
}
