//! Shared harness utilities for the `divtopk` benchmark suite: a
//! peak-tracking global allocator (the paper reports *peak memory* for
//! every experiment), small measurement/format helpers used by the
//! `figures` binary, and the minimal JSON support behind the `perfbase`
//! trajectory files (`BENCH_*.json`, DESIGN.md §7).

pub mod json;
pub mod load;
pub mod quality;
pub mod workload;

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A counting wrapper around the system allocator.
///
/// Install in a binary with:
/// ```ignore
/// #[global_allocator]
/// static ALLOC: divtopk_bench::PeakAlloc = divtopk_bench::PeakAlloc;
/// ```
/// then bracket measured regions with [`reset_peak`] / [`peak_since`].
pub struct PeakAlloc;

// SAFETY: every method delegates verbatim to `System` with the caller's
// own layout/pointer arguments, upholding `GlobalAlloc`'s contract
// exactly as `System` does; the counter updates never touch the
// allocation itself (and never allocate — plain atomics), so no
// reentrancy or aliasing is introduced.
unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: same contract as the outer call — `layout` is the
        // caller's, passed through unchanged.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            // RELAXED: best-effort live/peak accounting — single-threaded
            // in every bench that reads it, and a momentarily stale peak
            // only under-reports a concurrent spike; no ordering is
            // needed for a measurement counter.
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` are the caller's matched pair, passed
        // through unchanged to the allocator that produced them.
        unsafe { System.dealloc(ptr, layout) };
        // RELAXED: measurement counter — see `alloc`.
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: caller's matched `ptr`/`layout`/`new_size`, passed
        // through unchanged.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            if new_size >= layout.size() {
                // RELAXED: measurement counter — see `alloc`.
                let cur = CURRENT.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                    - layout.size();
                PEAK.fetch_max(cur, Ordering::Relaxed);
            } else {
                // RELAXED: measurement counter — see `alloc`.
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

/// Bytes currently live (as seen by the counting allocator).
pub fn current_bytes() -> usize {
    // RELAXED: measurement read — see `PeakAlloc::alloc`.
    CURRENT.load(Ordering::Relaxed)
}

/// Resets the peak to the current live size; returns the baseline.
pub fn reset_peak() -> usize {
    // RELAXED: measurement read/write — see `PeakAlloc::alloc`.
    let cur = CURRENT.load(Ordering::Relaxed);
    PEAK.store(cur, Ordering::Relaxed);
    cur
}

/// Peak bytes *above* the given baseline since the last [`reset_peak`].
pub fn peak_since(baseline: usize) -> usize {
    // RELAXED: measurement read — see `PeakAlloc::alloc`.
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

/// Outcome of one measured run: wall time + allocation peak, or `INF`
/// (budget exhausted — the paper's notation for runs that died at 2 GB).
#[derive(Debug, Clone, Copy)]
pub enum Measurement {
    Done { time: Duration, peak_bytes: usize },
    Inf,
}

impl Measurement {
    /// Formats like the paper's plots: seconds + a human byte size.
    pub fn time_cell(&self) -> String {
        match self {
            Measurement::Done { time, .. } => format!("{:.3}", time.as_secs_f64()),
            Measurement::Inf => "INF".to_string(),
        }
    }

    /// Memory column.
    pub fn mem_cell(&self) -> String {
        match self {
            Measurement::Done { peak_bytes, .. } => human_bytes(*peak_bytes),
            Measurement::Inf => "INF".to_string(),
        }
    }
}

/// Runs `f` once, measuring wall time and allocator peak. A `None` from
/// `f` means the budget tripped → `INF`.
pub fn measure<T>(f: impl FnOnce() -> Option<T>) -> (Measurement, Option<T>) {
    let baseline = reset_peak();
    let start = Instant::now();
    let out = f();
    let time = start.elapsed();
    let peak_bytes = peak_since(baseline);
    match out {
        Some(v) => (Measurement::Done { time, peak_bytes }, Some(v)),
        None => (Measurement::Inf, None),
    }
}

/// `1234567` → `"1.18MB"` (paper-style axis labels).
pub fn human_bytes(b: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = b as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b}B")
    } else {
        format!("{value:.2}{}", UNITS[unit])
    }
}

/// Prints one experiment table: header + rows of (x, cells...).
pub fn print_table(title: &str, x_label: &str, columns: &[&str], rows: &[(String, Vec<String>)]) {
    println!("\n### {title}");
    let mut header = format!("| {x_label:>8} |");
    let mut rule = String::from("|---------:|");
    for c in columns {
        header.push_str(&format!(" {c:>14} |"));
        rule.push_str("---------------:|");
    }
    println!("{header}");
    println!("{rule}");
    for (x, cells) in rows {
        let mut line = format!("| {x:>8} |");
        for c in cells {
            line.push_str(&format!(" {c:>14} |"));
        }
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.00KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00MB");
    }

    #[test]
    fn measurement_cells() {
        let m = Measurement::Done {
            time: Duration::from_millis(1500),
            peak_bytes: 1024,
        };
        assert_eq!(m.time_cell(), "1.500");
        assert_eq!(m.mem_cell(), "1.00KB");
        assert_eq!(Measurement::Inf.time_cell(), "INF");
    }

    #[test]
    fn measure_captures_success_and_inf() {
        let (m, v) = measure(|| Some(42));
        assert!(matches!(m, Measurement::Done { .. }));
        assert_eq!(v, Some(42));
        let (m, v) = measure::<u32>(|| None);
        assert!(matches!(m, Measurement::Inf));
        assert!(v.is_none());
    }
}
