//! Scores: finite, non-negative `f64` values with a total order.
//!
//! The paper assumes every result carries a relevance score `score(v)`; all
//! algorithms maximize sums of scores. We wrap `f64` in a newtype that
//! enforces *finite and non-negative* at construction, which in turn makes
//! `Ord` safe (no NaN) and keeps the upper-bound arithmetic of Lemma 1 valid
//! (`(k - i) * u` is only an upper bound when `u >= 0`).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A finite, non-negative score.
///
/// Construction via [`Score::new`] panics on NaN/infinite/negative input;
/// use [`Score::try_new`] for fallible construction. `Score` is `Copy` and
/// totally ordered, so it can live in heaps and be compared freely.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct Score(f64);

impl Score {
    /// The zero score (score of the empty solution).
    pub const ZERO: Score = Score(0.0);

    /// Creates a score, panicking if `v` is not finite or is negative.
    #[inline]
    pub fn new(v: f64) -> Score {
        Score::try_new(v).unwrap_or_else(|| panic!("invalid score: {v}"))
    }

    /// Creates a score, returning `None` if `v` is not finite or is negative.
    #[inline]
    pub fn try_new(v: f64) -> Option<Score> {
        if v.is_finite() && v >= 0.0 {
            Some(Score(v))
        } else {
            None
        }
    }

    /// The raw `f64` value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Multiplies by a non-negative integer factor (used for `(k - i) * u`
    /// in the sufficient stop condition, Lemma 1).
    #[inline]
    pub fn times(self, n: usize) -> Score {
        Score(self.0 * n as f64)
    }

    /// `true` if `self` is within relative tolerance `rel` of `other`.
    ///
    /// Different combination orders (e.g. `div-dp` vs `div-astar`) can
    /// produce last-ulp differences on float scores; tests use this.
    #[inline]
    pub fn approx_eq(self, other: Score, rel: f64) -> bool {
        let d = (self.0 - other.0).abs();
        d <= rel * self.0.abs().max(other.0.abs()).max(1.0)
    }
}

impl Eq for Score {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Score {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Values are finite by construction, so this is a true total order.
        self.0.total_cmp(&other.0)
    }
}

#[allow(clippy::non_canonical_partial_ord_impl)]
impl std::hash::Hash for Score {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl Add for Score {
    type Output = Score;
    #[inline]
    fn add(self, rhs: Score) -> Score {
        Score(self.0 + rhs.0)
    }
}

impl AddAssign for Score {
    #[inline]
    fn add_assign(&mut self, rhs: Score) {
        self.0 += rhs.0;
    }
}

impl Sub for Score {
    type Output = Score;
    /// Saturating subtraction: scores never go below zero.
    #[inline]
    fn sub(self, rhs: Score) -> Score {
        Score((self.0 - rhs.0).max(0.0))
    }
}

impl Sum for Score {
    fn sum<I: Iterator<Item = Score>>(iter: I) -> Score {
        iter.fold(Score::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Score {
    #[inline]
    fn from(v: u32) -> Score {
        Score(v as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rejects_invalid() {
        assert!(Score::try_new(f64::NAN).is_none());
        assert!(Score::try_new(f64::INFINITY).is_none());
        assert!(Score::try_new(-1.0).is_none());
        assert!(Score::try_new(0.0).is_some());
        assert!(Score::try_new(10.5).is_some());
    }

    #[test]
    #[should_panic(expected = "invalid score")]
    fn new_panics_on_nan() {
        let _ = Score::new(f64::NAN);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Score::new(3.0), Score::new(1.0), Score::new(2.0)];
        v.sort();
        assert_eq!(v, vec![Score::new(1.0), Score::new(2.0), Score::new(3.0)]);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Score::new(1.5) + Score::new(2.5), Score::new(4.0));
        assert_eq!(Score::new(3.0).times(4), Score::new(12.0));
        assert_eq!(Score::new(1.0) - Score::new(2.0), Score::ZERO);
        let s: Score = [1.0, 2.0, 3.0].into_iter().map(Score::new).sum();
        assert_eq!(s, Score::new(6.0));
    }

    #[test]
    fn approx_eq_tolerates_ulp_noise() {
        let a = Score::new(0.1 + 0.2);
        let b = Score::new(0.3);
        assert!(a.approx_eq(b, 1e-12));
        assert!(!Score::new(1.0).approx_eq(Score::new(1.1), 1e-3));
    }
}
