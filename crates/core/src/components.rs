//! Connected components of the diversity graph.
//!
//! `div-dp` (Algorithm 7) and `div-cut` (Algorithm 8) both start by splitting
//! the graph into connected components, because independent sets compose
//! freely across components (the `⊕` operator then recombines the tables).

use crate::graph::{DiversityGraph, NodeId};

/// Returns the connected components of `g` as sorted node-id lists.
///
/// Components are emitted in order of their smallest node id (i.e. their
/// highest-scored member), and each component's nodes are sorted ascending.
/// Iterative BFS — no recursion, safe for adversarial graphs.
pub fn connected_components(g: &DiversityGraph) -> Vec<Vec<NodeId>> {
    let n = g.len();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    let mut queue: Vec<NodeId> = Vec::new();
    for start in 0..n as NodeId {
        if seen[start as usize] {
            continue;
        }
        seen[start as usize] = true;
        queue.clear();
        queue.push(start);
        let mut comp = vec![start];
        while let Some(v) = queue.pop() {
            for &nb in g.neighbors(v) {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    comp.push(nb);
                    queue.push(nb);
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::Score;

    fn graph(n: usize, edges: &[(u32, u32)]) -> DiversityGraph {
        let scores = (0..n).map(|i| Score::from((n - i) as u32)).collect();
        DiversityGraph::from_sorted_scores(scores, edges)
    }

    #[test]
    fn empty_graph_has_no_components() {
        assert!(connected_components(&graph(0, &[])).is_empty());
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let comps = connected_components(&graph(3, &[]));
        assert_eq!(comps, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn components_partition_nodes() {
        // 0-1-2 chain, 3-4 pair, 5 isolated.
        let comps = connected_components(&graph(6, &[(0, 1), (1, 2), (3, 4)]));
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn fig6_two_components() {
        // Fig. 6: G1 = {v1..v6}, G2 = {u1..u5} — model as two cliques-ish
        // pieces; we only check the partition logic here.
        let comps = connected_components(&graph(
            11,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (6, 7),
                (7, 8),
                (8, 9),
                (9, 10),
            ],
        ));
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(comps[1], vec![6, 7, 8, 9, 10]);
    }

    #[test]
    fn single_component_when_connected() {
        let comps = connected_components(&graph(4, &[(0, 1), (1, 2), (2, 3)]));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![0, 1, 2, 3]);
    }
}
