//! Parallel shard pulls that are **observably identical** to sequential
//! ones: each underlying [`ResultSource`] is pumped eagerly on the
//! [`crate::pool::WorkerPool`] into a bounded queue, and the consumer-side
//! facade ([`PrefetchedSource`]) replays its emissions *and its bound
//! trajectory* in exact lockstep.
//!
//! ## Why the merge cannot tell the difference
//!
//! [`crate::merge::MergedSource`] observes a source through exactly two
//! operations: `next_result()` and `unseen_bound()`. For any sequential
//! source, the bound is a pure function of how many results have been
//! pulled — it only changes *at* a pull. The pump therefore records, with
//! every result it pulls, the source's bound **immediately after that
//! pull**, and the facade installs that recorded bound at the moment the
//! consumer pops the result. The (emission, bound-after-emission) sequence
//! the merge sees is therefore the sequential sequence, bit for bit — no
//! matter how far ahead the producer ran. Hits, total score, every metric
//! counter, and the early-stop point follow (the engine's property suites
//! pin this; see `tests/parallel_merge.rs`).
//!
//! The facade's *initial* bound is captured **before** the source moves to
//! the worker — this matters: a TA source's bound is already finite at
//! construction (its round-0 threshold), not `Unbounded`.
//!
//! ## Why the pool cannot deadlock
//!
//! Producers are **cooperative**: a pump task never blocks its worker.
//! When its queue is full it *parks* — records the fact under the queue
//! lock and returns, freeing the worker thread. The consumer re-spawns the
//! pump (onto the same scope, so the scope's completion guarantee covers
//! the respawn) the next time it pops an item and finds the feed parked.
//! With S shards, P pool threads and any P ≥ 1, every pump therefore gets
//! scheduled eventually: running pumps either finish their source or park,
//! and parked pumps occupy no thread. Early stop is the same mechanism in
//! reverse: dropping the facade cancels the feed, a parked pump is
//! finalized inline, a running pump observes the flag at its next loop
//! iteration and exits.

use crate::pool::Scope;
use crate::sources::{ResultSource, Scored, UnseenBound};
use crate::sync::{lock_unpoisoned, wait_unpoisoned};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Default bounded-queue depth per shard feed. Deep enough that a cheap
/// producer stays ahead of an expensive consumer (the exact algorithms
/// dominate per-result cost), shallow enough that early stop never leaves
/// much speculative work behind.
pub const DEFAULT_PREFETCH_DEPTH: usize = 32;

struct FeedState<S: ResultSource> {
    /// Results paired with the source's bound *after* pulling each one.
    queue: VecDeque<(Scored<S::Item>, UnseenBound)>,
    /// The source itself lives here between pump runs, so a re-spawned
    /// pump (and a cancelling consumer) can reach it without any channel.
    source: Option<S>,
    /// Producer exhausted the source (or was cancelled): no more items.
    closed: bool,
    /// Consumer is gone; producer should drop the source and exit.
    cancelled: bool,
    /// Producer parked on a full queue; the consumer must re-spawn it.
    parked: bool,
}

struct Feed<S: ResultSource> {
    state: Mutex<FeedState<S>>,
    /// Wakes a consumer blocked on an empty (but not closed) queue.
    ready: Condvar,
    depth: usize,
}

impl<S: ResultSource> Feed<S> {
    /// The producer body. Runs on a pool worker; never blocks — it parks
    /// (returns) on a full queue and exits on cancellation/exhaustion.
    fn pump(self: &Arc<Self>) {
        loop {
            let mut state = lock_unpoisoned(&self.state);
            if state.cancelled {
                state.source = None;
                state.closed = true;
                self.ready.notify_all();
                return;
            }
            if state.queue.len() >= self.depth {
                state.parked = true;
                return;
            }
            let Some(mut source) = state.source.take() else {
                state.closed = true;
                self.ready.notify_all();
                return;
            };
            // Pull outside the lock: the source's work is the whole point
            // of parallelism, and keeping user code off the mutex means a
            // source panic can never poison the feed.
            drop(state);
            let next = source.next_result();
            let bound = source.unseen_bound();
            let mut state = lock_unpoisoned(&self.state);
            match next {
                Some(result) => {
                    state.queue.push_back((result, bound));
                    state.source = Some(source);
                    self.ready.notify_all();
                }
                None => {
                    state.closed = true;
                    self.ready.notify_all();
                    return;
                }
            }
        }
    }
}

/// The consumer-side facade: a [`ResultSource`] whose emissions and bound
/// trajectory are bit-identical to the wrapped source's, while the actual
/// pulling happens ahead of time on the pool. Construct one per shard via
/// [`PrefetchedSource::spawn`] inside a [`crate::pool::WorkerPool::scope`]
/// and hand the batch to [`crate::merge::MergedSource`] as usual.
///
/// Dropping the facade cancels its producer, so early stop (the
/// framework's whole purpose) wastes at most one in-flight pull plus the
/// queue depth of speculative results per shard.
pub struct PrefetchedSource<'scope, 'env, S: ResultSource> {
    feed: Arc<Feed<S>>,
    scope: &'scope Scope<'scope, 'env>,
    bound: UnseenBound,
}

impl<'scope, 'env, S> PrefetchedSource<'scope, 'env, S>
where
    S: ResultSource + Send + 'scope,
    S::Item: Send,
{
    /// Captures the source's current (pre-pull) bound, moves the source
    /// to a pump task on the scope's pool, and returns the facade.
    ///
    /// # Panics
    /// Panics if `depth == 0` (the producer could never hand anything
    /// over).
    pub fn spawn(
        scope: &'scope Scope<'scope, 'env>,
        source: S,
        depth: usize,
    ) -> PrefetchedSource<'scope, 'env, S> {
        assert!(depth >= 1, "prefetch depth must be at least 1");
        let bound = source.unseen_bound();
        let feed = Arc::new(Feed {
            state: Mutex::new(FeedState {
                queue: VecDeque::with_capacity(depth),
                source: Some(source),
                closed: false,
                cancelled: false,
                parked: false,
            }),
            ready: Condvar::new(),
            depth,
        });
        let producer = Arc::clone(&feed);
        scope.spawn(move || producer.pump());
        PrefetchedSource { feed, scope, bound }
    }
}

impl<'scope, S> ResultSource for PrefetchedSource<'scope, '_, S>
where
    S: ResultSource + Send + 'scope,
    S::Item: Send,
{
    type Item = S::Item;

    fn next_result(&mut self) -> Option<Scored<S::Item>> {
        let mut state = lock_unpoisoned(&self.feed.state);
        loop {
            if let Some((result, bound)) = state.queue.pop_front() {
                // The pop made room; a parked producer can run again.
                if state.parked {
                    state.parked = false;
                    let producer = Arc::clone(&self.feed);
                    self.scope.spawn(move || producer.pump());
                }
                drop(state);
                self.bound = bound;
                return Some(result);
            }
            if state.closed {
                return None;
            }
            state = wait_unpoisoned(&self.feed.ready, state);
        }
    }

    fn unseen_bound(&self) -> UnseenBound {
        self.bound
    }
}

impl<S: ResultSource> Drop for PrefetchedSource<'_, '_, S> {
    fn drop(&mut self) {
        let mut state = lock_unpoisoned(&self.feed.state);
        state.cancelled = true;
        if state.parked {
            // No task is in flight for a parked feed — finalize inline.
            state.parked = false;
            state.source = None;
            state.closed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;
    use crate::score::Score;
    use crate::sources::{BoundingVecSource, IncrementalVecSource};

    fn descending(n: usize) -> Vec<Scored<usize>> {
        (0..n)
            .map(|i| Scored::new(i, Score::new((n - i) as f64)))
            .collect()
    }

    /// Drains `source`, recording every (item, bound-before, bound-after)
    /// observation a merge could make.
    fn observe<S: ResultSource>(mut source: S) -> Vec<(Scored<S::Item>, UnseenBound, UnseenBound)> {
        let mut log = Vec::new();
        loop {
            let before = source.unseen_bound();
            let Some(result) = source.next_result() else {
                return log;
            };
            let after = source.unseen_bound();
            log.push((result, before, after));
        }
    }

    #[test]
    fn prefetched_incremental_source_is_observably_identical() {
        let pool = WorkerPool::new(2);
        for n in [0usize, 1, 5, 100] {
            let want = observe(IncrementalVecSource::new(descending(n)));
            let got = pool.scope(|scope| {
                observe(PrefetchedSource::spawn(
                    scope,
                    IncrementalVecSource::new(descending(n)),
                    4,
                ))
            });
            assert_eq!(want, got, "n = {n}");
        }
    }

    #[test]
    fn prefetched_bounding_source_replays_the_bound_trajectory() {
        let pool = WorkerPool::new(2);
        let items: Vec<Scored<usize>> = [3.0, 9.0, 1.0, 7.0, 5.0]
            .iter()
            .enumerate()
            .map(|(i, &s)| Scored::new(i, Score::new(s)))
            .collect();
        let want = observe(BoundingVecSource::new(items.clone()));
        let got = pool.scope(|scope| {
            observe(PrefetchedSource::spawn(
                scope,
                BoundingVecSource::new(items),
                2,
            ))
        });
        assert_eq!(want, got);
    }

    #[test]
    fn early_drop_cancels_the_producer_without_hanging_the_scope() {
        let pool = WorkerPool::new(1);
        // Depth 1 on a long stream: the producer parks repeatedly; the
        // consumer stops after two pulls and drops.
        pool.scope(|scope| {
            let mut source =
                PrefetchedSource::spawn(scope, IncrementalVecSource::new(descending(10_000)), 1);
            assert!(source.next_result().is_some());
            assert!(source.next_result().is_some());
        });
        // Reaching here at all is the assertion: the scope joined.
    }

    #[test]
    fn many_sources_on_a_tiny_pool_all_complete() {
        // More shards than workers: parking (not blocking) is what makes
        // this terminate — a blocking producer would wedge the pool.
        let pool = WorkerPool::new(1);
        let totals: Vec<usize> = pool.scope(|scope| {
            let sources: Vec<_> = (0..8)
                .map(|_| {
                    PrefetchedSource::spawn(scope, IncrementalVecSource::new(descending(50)), 2)
                })
                .collect();
            sources.into_iter().map(|s| observe(s).len()).collect()
        });
        assert_eq!(totals, vec![50; 8]);
    }
}
