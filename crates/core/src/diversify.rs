//! The [`Diversifier`] trait — one contract for every diversification
//! strategy, exact or heuristic.
//!
//! The paper's framework (§4) deliberately separates the *result source*
//! from the *diversity search*; this module completes that separation on
//! the strategy axis. A diversifier consumes a [`ResultSource`] plus a
//! [`SimilarityOracle`] and returns diversified hits with per-call
//! metrics. Every strategy in the workspace is a leaf behind the trait:
//!
//! | leaf | guarantee | cost model |
//! |------|-----------|------------|
//! | [`ExactDiversifier`] | exact optimum (Lemmas 1/3) | NP-hard inner searches |
//! | [`NoneDiversifier`] | plain relevance top-k (diversity off) | top-k pull only |
//! | [`MmrDiversifier`] | greedy marginal-relevance ranking | `O(k·l)` sims over a top-`l` pool |
//! | [`WindowDiversifier`] | sliding-window max-per-source spread | `O(l²)` source clustering |
//! | [`DiscDiversifier`] | maximal independent set + coverage | `O(k·l)` sims |
//! | [`KnnDiversifier`] | greedy relevance × knn-dissimilarity | `O(k·l)` sims |
//!
//! Determinism is part of the contract: no seeds, no wall clock, item
//! order broken by pool position (score descending, then source arrival
//! order — which every in-repo source ties by doc id). Two runs over the
//! same stream return byte-identical selections.
//!
//! The heuristic ("rerank") leaves share a two-step shape from the
//! paper's §9 related-work family: pull the plain relevance top-`l`
//! (`l = RERANK_OVERSAMPLE · k`) through the same early-stopping
//! framework the exact path uses (an edgeless diversity graph — the
//! diversity-off oracle), then re-rank that pool. They trade the exact
//! optimum for a bounded, measured optimality gap (see the `frontier`
//! perfbase suite) at a fraction of the cost: no `O(n²)` similarity
//! phase while the stream grows, and no NP-hard inner searches.

use crate::error::SearchError;
use crate::framework::{DivSearchConfig, DivTopK, ExactAlgorithm};
use crate::limits::SearchLimits;
use crate::metrics::FrameworkMetrics;
use crate::score::Score;
use crate::sources::{ResultSource, Scored};

/// Pool oversampling factor for the rerank leaves: they fetch the plain
/// top-`RERANK_OVERSAMPLE · k` and select `k` from it. Fixed (not a
/// per-query knob) so cache keys and wire frames stay small; 4× is the
/// conventional `l > k` headroom of the two-step family.
pub const RERANK_OVERSAMPLE: usize = 4;

/// The two views of similarity a diversifier may consume.
///
/// * `above` — the thresholded predicate `sim(a, b) > τ`, possibly
///   behind an `O(1)` prefilter (how the text layer implements Eq. 4).
///   Used by the exact leaf (graph edges) and for source clustering.
/// * `value` — the raw similarity in `[0, 1]`, for leaves that *weigh*
///   redundancy instead of forbidding it (MMR, KNN).
///
/// Both must be symmetric and deterministic.
pub struct SimilarityOracle<P, V> {
    /// `sim(a, b) > τ`.
    pub above: P,
    /// `sim(a, b) ∈ [0, 1]`.
    pub value: V,
}

/// Per-call counters a diversifier reports alongside its hits.
///
/// Integer-only (like [`FrameworkMetrics`]) so outcomes stay `Eq` and
/// cache hits can be asserted bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiversifierMetrics {
    /// Candidates materialized before selection (the rerank pool size;
    /// for the streaming leaves, the results the framework pulled).
    pub candidates_pulled: u64,
    /// Similarity-oracle evaluations made during selection (predicate
    /// and value calls; the exact leaf's graph-growth checks are counted
    /// in [`FrameworkMetrics::similarity_checks`] instead).
    pub sim_evaluations: u64,
    /// Selection-order edits: window rotations, or greedy picks that
    /// overtook a higher-relevance candidate.
    pub rotations: u64,
}

/// What a diversifier returns: hits in the mode's ranking order plus the
/// run's counters.
#[derive(Debug)]
pub struct DiversifyOutcome<T> {
    /// Selected results in the mode's own ranking order (score
    /// descending for the exact/none/disc leaves; greedy selection
    /// order for MMR/KNN; rotated order for the window leaf).
    pub selected: Vec<Scored<T>>,
    /// Total relevance score of `selected`.
    pub total_score: Score,
    /// Counters of the underlying framework run (results pulled, inner
    /// searches, early stop).
    pub framework: FrameworkMetrics,
    /// The diversifier's own per-call counters.
    pub diversifier: DiversifierMetrics,
}

/// One diversification strategy: a deterministic, seed-free map from a
/// result stream to at most `k` hits plus metrics.
///
/// Implementations must be pure functions of `(source stream, oracle,
/// k)` — no randomness, no wall clock, ties broken by pool position so
/// identical streams give byte-identical selections.
pub trait Diversifier {
    /// Stable lower-case strategy name (metrics, bench tables).
    fn name(&self) -> &'static str;

    /// Runs the strategy over `source` and returns at most `k` hits.
    fn run<S, P, V>(
        &self,
        source: S,
        oracle: SimilarityOracle<P, V>,
        k: usize,
    ) -> Result<DiversifyOutcome<S::Item>, SearchError>
    where
        S: ResultSource,
        P: Fn(&S::Item, &S::Item) -> bool,
        V: Fn(&S::Item, &S::Item) -> f64;
}

// --------------------------------------------------------------- exact

/// The paper's exact diversified top-k (Lemmas 1/3 early stopping around
/// one of the `div-*` algorithms). The oracle's predicate defines the
/// diversity-graph edges; the value view is unused.
#[derive(Debug, Clone)]
pub struct ExactDiversifier {
    /// Which `div-search-current()` implementation runs.
    pub algorithm: ExactAlgorithm,
    /// Budgets for each inner search.
    pub limits: SearchLimits,
    /// The framework bound-decay throttle.
    pub bound_decay: f64,
}

impl Diversifier for ExactDiversifier {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn run<S, P, V>(
        &self,
        source: S,
        oracle: SimilarityOracle<P, V>,
        k: usize,
    ) -> Result<DiversifyOutcome<S::Item>, SearchError>
    where
        S: ResultSource,
        P: Fn(&S::Item, &S::Item) -> bool,
        V: Fn(&S::Item, &S::Item) -> f64,
    {
        let SimilarityOracle { above, .. } = oracle;
        let config = DivSearchConfig::new(k)
            .with_algorithm(self.algorithm.clone())
            .with_limits(self.limits.clone())
            .with_bound_decay(self.bound_decay);
        let out = DivTopK::new(source, above, config).run()?;
        let diversifier = DiversifierMetrics {
            candidates_pulled: out.metrics.results_generated,
            ..DiversifierMetrics::default()
        };
        Ok(DiversifyOutcome {
            selected: out.selected,
            total_score: out.total_score,
            framework: out.metrics,
            diversifier,
        })
    }
}

// ---------------------------------------------------------------- none

/// The diversity-off oracle: an edgeless diversity graph, so the same
/// source and early-stop machinery returns the plain relevance top-k
/// (score descending, doc id as tie-break). This replaces the old
/// `diversify: false` back-channel and is the baseline every quality
/// gate compares against.
#[derive(Debug, Clone)]
pub struct NoneDiversifier {
    /// Budgets for each inner search (edgeless graphs make these trivial,
    /// but the run-level time budget still applies).
    pub limits: SearchLimits,
    /// The framework bound-decay throttle.
    pub bound_decay: f64,
}

impl Diversifier for NoneDiversifier {
    fn name(&self) -> &'static str {
        "none"
    }

    fn run<S, P, V>(
        &self,
        source: S,
        _oracle: SimilarityOracle<P, V>,
        k: usize,
    ) -> Result<DiversifyOutcome<S::Item>, SearchError>
    where
        S: ResultSource,
        P: Fn(&S::Item, &S::Item) -> bool,
        V: Fn(&S::Item, &S::Item) -> f64,
    {
        let (selected, framework) = pull_plain_topk(source, k, &self.limits, self.bound_decay)?;
        let total_score = selected.iter().map(|r| r.score).sum();
        let diversifier = DiversifierMetrics {
            candidates_pulled: framework.results_generated,
            ..DiversifierMetrics::default()
        };
        Ok(DiversifyOutcome {
            selected,
            total_score,
            framework,
            diversifier,
        })
    }
}

/// A pulled relevance pool plus the framework metrics of the pull.
type PlainPool<T> = (Vec<Scored<T>>, FrameworkMetrics);

/// Plain relevance top-`k` through the framework: a constant-`false`
/// predicate makes the diversity graph edgeless, so the diversified
/// optimum *is* the score-descending top-k and the Lemma 1/3 early stops
/// stay sound. Shared by [`NoneDiversifier`] and the rerank pools.
fn pull_plain_topk<S>(
    source: S,
    k: usize,
    limits: &SearchLimits,
    bound_decay: f64,
) -> Result<PlainPool<S::Item>, SearchError>
where
    S: ResultSource,
{
    let config = DivSearchConfig::new(k)
        .with_limits(limits.clone())
        .with_bound_decay(bound_decay);
    let never = |_: &S::Item, _: &S::Item| false;
    let out = DivTopK::new(source, never, config).run()?;
    Ok((out.selected, out.metrics))
}

// ----------------------------------------------------------------- mmr

/// Greedy Maximal Marginal Relevance over a top-`l` pool: repeatedly
/// pick `argmax λ·score/max_score − (1−λ)·max_sim(·, selected)`.
/// Penalizes redundancy but never excludes it (the defining contrast
/// with the exact leaves — see the paper's §9).
#[derive(Debug, Clone)]
pub struct MmrDiversifier {
    /// Trade-off: 1.0 = pure relevance, 0.0 = pure anti-redundancy.
    pub lambda: f64,
    /// Budgets for the pool pull.
    pub limits: SearchLimits,
    /// The framework bound-decay throttle for the pool pull.
    pub bound_decay: f64,
}

impl Diversifier for MmrDiversifier {
    fn name(&self) -> &'static str {
        "mmr"
    }

    fn run<S, P, V>(
        &self,
        source: S,
        oracle: SimilarityOracle<P, V>,
        k: usize,
    ) -> Result<DiversifyOutcome<S::Item>, SearchError>
    where
        S: ResultSource,
        P: Fn(&S::Item, &S::Item) -> bool,
        V: Fn(&S::Item, &S::Item) -> f64,
    {
        let l = rerank_pool_size(k);
        let (pool, framework) = pull_plain_topk(source, l, &self.limits, self.bound_decay)?;
        let mut metrics = DiversifierMetrics {
            candidates_pulled: pool.len() as u64,
            ..DiversifierMetrics::default()
        };
        let order = mmr_select(
            &pool,
            |a, b| {
                metrics.sim_evaluations += 1;
                (oracle.value)(a, b)
            },
            self.lambda,
            k,
        );
        metrics.rotations = out_of_relevance_order(&order);
        Ok(assemble(pool, order, framework, metrics))
    }
}

/// The MMR greedy in index space: returns selected pool indices in
/// selection order. Utility ties break toward the smaller pool index
/// (better relevance rank), which is what makes the ranking seed-free.
/// Exposed for the text layer's standalone rerank entry point so both
/// paths share one implementation.
pub fn mmr_select<T>(
    pool: &[Scored<T>],
    mut sim: impl FnMut(&T, &T) -> f64,
    lambda: f64,
    k: usize,
) -> Vec<usize> {
    let n = pool.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let max_score = pool
        .iter()
        .map(|c| c.score.get())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut selected: Vec<usize> = Vec::with_capacity(k.min(n));
    let mut remaining: Vec<usize> = (0..n).collect();
    // Max similarity of each remaining candidate to the selected set,
    // maintained incrementally.
    let mut max_sim = vec![0.0f64; n];
    while selected.len() < k && !remaining.is_empty() {
        let utility =
            |i: usize| lambda * pool[i].score.get() / max_score - (1.0 - lambda) * max_sim[i];
        let mut best_pos = 0usize;
        for pos in 1..remaining.len() {
            let (a, b) = (remaining[pos], remaining[best_pos]);
            let (ua, ub) = (utility(a), utility(b));
            // Strictly better utility wins; ties go to the smaller pool
            // index. NaN cannot arise (scores and sims are finite), but
            // the comparison is written to never panic on the serving
            // path regardless.
            if ua > ub || (ua == ub && a < b) {
                best_pos = pos;
            }
        }
        let best = remaining.swap_remove(best_pos);
        for &r in &remaining {
            let s = sim(&pool[r].item, &pool[best].item);
            if s > max_sim[r] {
                max_sim[r] = s;
            }
        }
        selected.push(best);
    }
    selected
}

// -------------------------------------------------------------- window

/// Sliding-window source-spread configuration (Snippet-1 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowConfig {
    /// Window length in result positions (effective length is
    /// `min(window, result_count)`).
    pub window: usize,
    /// Maximum hits from one source cluster inside any window.
    pub max_per_source: usize,
    /// A rotation may only promote a candidate scoring at least this
    /// fraction of the hit it displaces.
    pub min_score_ratio: f64,
}

impl Default for WindowConfig {
    /// The conservative defaults: window 5, 2 per source, 0.5 floor.
    fn default() -> WindowConfig {
        WindowConfig {
            window: 5,
            max_per_source: 2,
            min_score_ratio: 0.5,
        }
    }
}

/// Sliding-window max-per-source spread over a top-`l` pool: start from
/// the plain top-k, then scan positions left to right and rotate in the
/// best different-source candidate whenever a window exceeds
/// `max_per_source` — but only when the candidate respects the score
/// floor (`min_score_ratio` of the hit it displaces). Conservative by
/// design: with no eligible candidate the concentration stands, and
/// within-source relative order is always preserved.
///
/// "Source" is not a stored label: candidates are clustered by the
/// similarity predicate (leader clustering in pool order), so a source
/// is a near-duplicate chain — the text-search analogue of Snippet 1's
/// per-file grouping.
#[derive(Debug, Clone)]
pub struct WindowDiversifier {
    /// Window/max-per-source/score-floor knobs.
    pub config: WindowConfig,
    /// Budgets for the pool pull.
    pub limits: SearchLimits,
    /// The framework bound-decay throttle for the pool pull.
    pub bound_decay: f64,
}

impl Diversifier for WindowDiversifier {
    fn name(&self) -> &'static str {
        "window"
    }

    fn run<S, P, V>(
        &self,
        source: S,
        oracle: SimilarityOracle<P, V>,
        k: usize,
    ) -> Result<DiversifyOutcome<S::Item>, SearchError>
    where
        S: ResultSource,
        P: Fn(&S::Item, &S::Item) -> bool,
        V: Fn(&S::Item, &S::Item) -> f64,
    {
        let l = rerank_pool_size(k);
        let (pool, framework) = pull_plain_topk(source, l, &self.limits, self.bound_decay)?;
        let mut metrics = DiversifierMetrics {
            candidates_pulled: pool.len() as u64,
            ..DiversifierMetrics::default()
        };
        let sources = assign_sources(&pool, |a, b| {
            metrics.sim_evaluations += 1;
            (oracle.above)(a, b)
        });
        let scores: Vec<f64> = pool.iter().map(|c| c.score.get()).collect();
        let (order, rotations) = window_spread(&scores, &sources, &self.config, k);
        metrics.rotations = rotations;
        Ok(assemble(pool, order, framework, metrics))
    }
}

/// Leader clustering of a score-ordered pool under a similarity
/// predicate: each candidate joins the first (highest-relevance) leader
/// it is similar to, or founds a new cluster. Returns one cluster id
/// (the leader's pool index) per candidate. Deterministic; `O(l ·
/// clusters)` predicate calls. Exposed so invariant tests cluster
/// exactly the way the window leaf does.
pub fn assign_sources<T>(pool: &[Scored<T>], mut above: impl FnMut(&T, &T) -> bool) -> Vec<u32> {
    let mut sources: Vec<u32> = Vec::with_capacity(pool.len());
    let mut leaders: Vec<usize> = Vec::new();
    for (i, candidate) in pool.iter().enumerate() {
        let found = leaders
            .iter()
            .find(|&&l| above(&pool[l].item, &candidate.item))
            .copied();
        match found {
            Some(leader) => sources.push(leader as u32),
            None => {
                leaders.push(i);
                sources.push(i as u32);
            }
        }
    }
    sources
}

/// The sliding-window spread pass in index space: `scores` and `sources`
/// describe the pool in relevance order; returns the selected pool
/// indices in final ranking order plus the rotation count. Pure and
/// deterministic — exposed for direct unit/property testing.
pub fn window_spread(
    scores: &[f64],
    sources: &[u32],
    config: &WindowConfig,
    k: usize,
) -> (Vec<usize>, u64) {
    let n = scores.len();
    let take = k.min(n);
    let mut selection: Vec<usize> = (0..take).collect();
    // Remaining pool candidates, kept sorted by pool index so rotation
    // scans and re-insertions preserve within-source relative order.
    let mut remaining: Vec<usize> = (take..n).collect();
    let mut rotations = 0u64;
    if take == 0 || config.window == 0 || config.max_per_source == 0 {
        return (selection, rotations);
    }
    let window = config.window.min(take);
    for p in 0..take {
        let start = (p + 1).saturating_sub(window);
        let src = sources[selection[p]];
        let in_window = |sel: &[usize], wanted: u32| {
            sel[start..=p]
                .iter()
                .filter(|&&i| sources[i] == wanted)
                .count()
        };
        if in_window(&selection, src) <= config.max_per_source {
            continue;
        }
        let floor = config.min_score_ratio * scores[selection[p]];
        // A promotion must keep same-source hits in pool (relevance)
        // order: everything of the candidate's source before `p` must
        // have a smaller pool index, everything after a larger one.
        let order_ok = |sel: &[usize], r: usize| {
            sel.iter()
                .enumerate()
                .all(|(q, &m)| q == p || sources[m] != sources[r] || (q < p) == (m < r))
        };
        let candidate = remaining.iter().position(|&r| {
            sources[r] != src
                && scores[r] >= floor
                && in_window(&selection, sources[r]) < config.max_per_source
                && order_ok(&selection, r)
        });
        if let Some(pos) = candidate {
            let promoted = remaining.remove(pos);
            let displaced = selection[p];
            selection[p] = promoted;
            // The displaced hit goes back to the pool in index order so a
            // later window may still admit it after its own cluster thins
            // out — and same-source order can never invert.
            let ins = remaining
                .iter()
                .position(|&x| x > displaced)
                .unwrap_or(remaining.len());
            remaining.insert(ins, displaced);
            rotations += 1;
        }
        // No eligible candidate: the concentration stands (conservative).
    }
    (selection, rotations)
}

// ---------------------------------------------------------------- disc

/// DisC-style dissimilarity + coverage greedy (arXiv 1208.3533) over a
/// top-`l` pool: walk the pool in relevance order, select every
/// candidate not similar to an already-selected one, stop at `k`.
///
/// Guarantees (and the invariants the property suite pins):
/// * **dissimilarity** — selected hits are pairwise non-similar;
/// * **coverage** — when fewer than `k` hits come back, every pool
///   candidate is similar to some selected hit (the selection is a
///   maximal independent set of the pool's diversity graph).
#[derive(Debug, Clone)]
pub struct DiscDiversifier {
    /// Budgets for the pool pull.
    pub limits: SearchLimits,
    /// The framework bound-decay throttle for the pool pull.
    pub bound_decay: f64,
}

impl Diversifier for DiscDiversifier {
    fn name(&self) -> &'static str {
        "disc"
    }

    fn run<S, P, V>(
        &self,
        source: S,
        oracle: SimilarityOracle<P, V>,
        k: usize,
    ) -> Result<DiversifyOutcome<S::Item>, SearchError>
    where
        S: ResultSource,
        P: Fn(&S::Item, &S::Item) -> bool,
        V: Fn(&S::Item, &S::Item) -> f64,
    {
        let l = rerank_pool_size(k);
        let (pool, framework) = pull_plain_topk(source, l, &self.limits, self.bound_decay)?;
        let mut metrics = DiversifierMetrics {
            candidates_pulled: pool.len() as u64,
            ..DiversifierMetrics::default()
        };
        let mut order: Vec<usize> = Vec::with_capacity(k.min(pool.len()));
        for i in 0..pool.len() {
            if order.len() >= k {
                break;
            }
            let independent = order.iter().all(|&s| {
                metrics.sim_evaluations += 1;
                !(oracle.above)(&pool[s].item, &pool[i].item)
            });
            if independent {
                order.push(i);
            }
        }
        Ok(assemble(pool, order, framework, metrics))
    }
}

// ----------------------------------------------------------------- knn

/// Greedy relevance × KNN-dissimilarity (the Bradley–Smyth quality
/// family, arXiv cs/0310028) over a top-`l` pool: after seeding with the
/// top-scored candidate, repeatedly pick the candidate maximizing
/// `(score / max_score) · (1 − mean of its `neighbors` largest
/// similarities to the selected set)`. Redundancy is weighed against its
/// *nearest selected neighbors* only, so one distant outlier cannot
/// launder a near-duplicate.
#[derive(Debug, Clone)]
pub struct KnnDiversifier {
    /// How many nearest selected neighbors the dissimilarity averages.
    pub neighbors: usize,
    /// Budgets for the pool pull.
    pub limits: SearchLimits,
    /// The framework bound-decay throttle for the pool pull.
    pub bound_decay: f64,
}

impl Diversifier for KnnDiversifier {
    fn name(&self) -> &'static str {
        "knn"
    }

    fn run<S, P, V>(
        &self,
        source: S,
        oracle: SimilarityOracle<P, V>,
        k: usize,
    ) -> Result<DiversifyOutcome<S::Item>, SearchError>
    where
        S: ResultSource,
        P: Fn(&S::Item, &S::Item) -> bool,
        V: Fn(&S::Item, &S::Item) -> f64,
    {
        let l = rerank_pool_size(k);
        let (pool, framework) = pull_plain_topk(source, l, &self.limits, self.bound_decay)?;
        let mut metrics = DiversifierMetrics {
            candidates_pulled: pool.len() as u64,
            ..DiversifierMetrics::default()
        };
        let n = pool.len();
        let neighbors = self.neighbors.max(1);
        let mut order: Vec<usize> = Vec::with_capacity(k.min(n));
        if n == 0 || k == 0 {
            return Ok(assemble(pool, order, framework, metrics));
        }
        let max_score = pool
            .iter()
            .map(|c| c.score.get())
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        // Per-candidate similarities to the selected set, largest kept
        // sorted descending and truncated to `neighbors`.
        let mut nearest: Vec<Vec<f64>> = vec![Vec::new(); n];
        let mut remaining: Vec<usize> = (0..n).collect();
        while order.len() < k && !remaining.is_empty() {
            let utility = |i: usize| {
                let dissim = if nearest[i].is_empty() {
                    1.0
                } else {
                    let m = nearest[i].iter().sum::<f64>() / nearest[i].len() as f64;
                    1.0 - m
                };
                (pool[i].score.get() / max_score) * dissim
            };
            let mut best_pos = 0usize;
            for pos in 1..remaining.len() {
                let (a, b) = (remaining[pos], remaining[best_pos]);
                let (ua, ub) = (utility(a), utility(b));
                if ua > ub || (ua == ub && a < b) {
                    best_pos = pos;
                }
            }
            let best = remaining.swap_remove(best_pos);
            for &r in &remaining {
                metrics.sim_evaluations += 1;
                let s = (oracle.value)(&pool[r].item, &pool[best].item);
                let slot = &mut nearest[r];
                let at = slot
                    .iter()
                    .position(|&existing| s > existing)
                    .unwrap_or(slot.len());
                slot.insert(at, s);
                slot.truncate(neighbors);
            }
            order.push(best);
        }
        metrics.rotations = out_of_relevance_order(&order);
        Ok(assemble(pool, order, framework, metrics))
    }
}

// ------------------------------------------------------------- helpers

/// The rerank pool size for a given `k` (never below `k`).
pub fn rerank_pool_size(k: usize) -> usize {
    k.saturating_mul(RERANK_OVERSAMPLE).max(k)
}

/// How many adjacent pairs of the selection invert relevance order — the
/// "edits" counter for greedy rankings.
fn out_of_relevance_order(order: &[usize]) -> u64 {
    order.windows(2).filter(|w| w[0] > w[1]).count() as u64
}

/// Moves the selected pool entries out into an outcome, preserving
/// `order`.
fn assemble<T>(
    pool: Vec<Scored<T>>,
    order: Vec<usize>,
    framework: FrameworkMetrics,
    diversifier: DiversifierMetrics,
) -> DiversifyOutcome<T> {
    let mut slots: Vec<Option<Scored<T>>> = pool.into_iter().map(Some).collect();
    let selected: Vec<Scored<T>> = order.into_iter().filter_map(|i| slots[i].take()).collect();
    let total_score = selected.iter().map(|r| r.score).sum();
    DiversifyOutcome {
        selected,
        total_score,
        framework,
        diversifier,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg;
    use crate::sources::IncrementalVecSource;

    /// Items are (id, cluster); sim = 1.0 within a cluster, 0.0 across.
    #[allow(clippy::type_complexity)]
    fn oracle() -> SimilarityOracle<
        impl Fn(&(u32, u32), &(u32, u32)) -> bool,
        impl Fn(&(u32, u32), &(u32, u32)) -> f64,
    > {
        SimilarityOracle {
            above: |a: &(u32, u32), b: &(u32, u32)| a.1 == b.1,
            value: |a: &(u32, u32), b: &(u32, u32)| if a.1 == b.1 { 1.0 } else { 0.0 },
        }
    }

    fn make_items(seed: u64, n: usize, clusters: u32) -> Vec<Scored<(u32, u32)>> {
        let mut rng = Pcg::new(seed);
        let mut items: Vec<Scored<(u32, u32)>> = (0..n as u32)
            .map(|i| Scored::new((i, rng.below(clusters)), Score::from(rng.range(1, 1000))))
            .collect();
        items.sort_by_key(|r| std::cmp::Reverse(r.score));
        items
    }

    fn source(items: &[Scored<(u32, u32)>]) -> IncrementalVecSource<(u32, u32)> {
        IncrementalVecSource::new(items.to_vec())
    }

    #[test]
    fn exact_leaf_matches_framework_byte_for_byte() {
        for seed in 0..10 {
            let items = make_items(seed, 30, 5);
            let leaf = ExactDiversifier {
                algorithm: ExactAlgorithm::Cut,
                limits: SearchLimits::unlimited(),
                bound_decay: 0.0,
            };
            let got = leaf.run(source(&items), oracle(), 4).unwrap();
            let want = DivTopK::new(
                source(&items),
                |a: &(u32, u32), b: &(u32, u32)| a.1 == b.1,
                DivSearchConfig::new(4),
            )
            .run()
            .unwrap();
            assert_eq!(got.selected, want.selected, "seed {seed}");
            assert_eq!(got.total_score, want.total_score);
            assert_eq!(got.framework, want.metrics);
        }
    }

    #[test]
    fn none_leaf_is_plain_topk() {
        let items = make_items(3, 25, 3);
        let leaf = NoneDiversifier {
            limits: SearchLimits::unlimited(),
            bound_decay: 0.0,
        };
        let out = leaf.run(source(&items), oracle(), 5).unwrap();
        let want: Vec<_> = items.iter().take(5).cloned().collect();
        assert_eq!(out.selected, want);
    }

    #[test]
    fn every_leaf_is_deterministic() {
        let items = make_items(11, 40, 4);
        let limits = SearchLimits::unlimited();
        macro_rules! twice {
            ($leaf:expr) => {{
                let leaf = $leaf;
                let a = leaf.run(source(&items), oracle(), 6).unwrap();
                let b = leaf.run(source(&items), oracle(), 6).unwrap();
                assert_eq!(a.selected, b.selected, "{}", leaf.name());
                assert_eq!(a.diversifier, b.diversifier, "{}", leaf.name());
                a
            }};
        }
        twice!(ExactDiversifier {
            algorithm: ExactAlgorithm::Cut,
            limits: limits.clone(),
            bound_decay: 0.0
        });
        twice!(NoneDiversifier {
            limits: limits.clone(),
            bound_decay: 0.0
        });
        twice!(MmrDiversifier {
            lambda: 0.7,
            limits: limits.clone(),
            bound_decay: 0.0
        });
        twice!(WindowDiversifier {
            config: WindowConfig::default(),
            limits: limits.clone(),
            bound_decay: 0.0
        });
        twice!(DiscDiversifier {
            limits: limits.clone(),
            bound_decay: 0.0
        });
        twice!(KnnDiversifier {
            neighbors: 3,
            limits,
            bound_decay: 0.0
        });
    }

    #[test]
    fn disc_selection_is_maximal_independent_set() {
        for seed in 0..10 {
            let items = make_items(100 + seed, 30, 4);
            let leaf = DiscDiversifier {
                limits: SearchLimits::unlimited(),
                bound_decay: 0.0,
            };
            let out = leaf.run(source(&items), oracle(), 3).unwrap();
            // Pairwise dissimilar.
            for i in 0..out.selected.len() {
                for j in (i + 1)..out.selected.len() {
                    assert_ne!(out.selected[i].item.1, out.selected[j].item.1);
                }
            }
            // Coverage: short selections are maximal over the pool.
            if out.selected.len() < 3 {
                let pool_len = rerank_pool_size(3).min(items.len());
                for c in &items[..pool_len] {
                    assert!(
                        out.selected.iter().any(|s| s.item.1 == c.item.1),
                        "seed {seed}: {:?} uncovered",
                        c.item
                    );
                }
            }
        }
    }

    #[test]
    fn window_spread_caps_windows_when_alternates_exist() {
        // Pool: 4 candidates of source 0 up front, then distinct sources
        // with scores above the floor — every window must end up capped.
        let scores = vec![10.0, 9.9, 9.8, 9.7, 9.0, 8.9, 8.8, 8.7];
        let sources = vec![0, 0, 0, 0, 4, 5, 6, 7];
        let config = WindowConfig::default();
        let (sel, rotations) = window_spread(&scores, &sources, &config, 6);
        assert!(rotations > 0);
        let window = config.window.min(sel.len());
        for end in (window - 1)..sel.len() {
            let start = end + 1 - window;
            for src in sel[start..=end].iter().map(|&i| sources[i]) {
                let count = sel[start..=end]
                    .iter()
                    .filter(|&&i| sources[i] == src)
                    .count();
                assert!(
                    count <= config.max_per_source,
                    "window {start}..={end} has {count} of source {src}: {sel:?}"
                );
            }
        }
    }

    #[test]
    fn window_spread_respects_score_floor() {
        // The only alternates score below half the displaced hit — the
        // conservative pass must leave the concentration alone.
        let scores = vec![10.0, 9.9, 9.8, 9.7, 1.0, 1.0];
        let sources = vec![0, 0, 0, 0, 1, 2];
        let (sel, rotations) = window_spread(&scores, &sources, &WindowConfig::default(), 4);
        assert_eq!(sel, vec![0, 1, 2, 3]);
        assert_eq!(rotations, 0);
    }

    #[test]
    fn window_spread_leaves_diverse_rankings_alone() {
        let scores = vec![9.0, 8.0, 7.0, 6.0, 5.0];
        let sources = vec![0, 1, 2, 3, 4];
        let (sel, rotations) = window_spread(&scores, &sources, &WindowConfig::default(), 5);
        assert_eq!(sel, vec![0, 1, 2, 3, 4]);
        assert_eq!(rotations, 0);
    }

    #[test]
    fn window_preserves_within_source_order() {
        for seed in 0..20 {
            let mut rng = Pcg::new(300 + seed);
            let n = 24;
            let scores: Vec<f64> = {
                let mut s: Vec<f64> = (0..n).map(|_| rng.range(1, 1000) as f64).collect();
                s.sort_by(|a, b| b.total_cmp(a));
                s
            };
            let sources: Vec<u32> = (0..n).map(|_| rng.below(5)).collect();
            let (sel, _) = window_spread(&scores, &sources, &WindowConfig::default(), 10);
            // Same-source hits appear in pool (relevance) order.
            for src in 0..5u32 {
                let positions: Vec<usize> = sel
                    .iter()
                    .filter(|&&i| sources[i] == src)
                    .copied()
                    .collect();
                assert!(
                    positions.windows(2).all(|w| w[0] < w[1]),
                    "seed {seed} source {src}: {positions:?}"
                );
            }
        }
    }

    #[test]
    fn mmr_select_matches_relevance_when_lambda_is_one() {
        let items = make_items(7, 12, 3);
        let order = mmr_select(&items, |_, _| 1.0, 1.0, 4);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn mmr_penalty_demotes_duplicates() {
        let pool = vec![
            Scored::new((0u32, 0u32), Score::new(10.0)),
            Scored::new((1, 0), Score::new(9.9)),
            Scored::new((2, 1), Score::new(6.0)),
        ];
        let order = mmr_select(&pool, |a, b| if a.1 == b.1 { 0.95 } else { 0.0 }, 0.5, 2);
        assert_eq!(order, vec![0, 2], "the duplicate must lose");
    }

    #[test]
    fn knn_leaf_prefers_distinct_clusters() {
        let items = vec![
            Scored::new((0u32, 0u32), Score::new(10.0)),
            Scored::new((1, 0), Score::new(9.9)),
            Scored::new((2, 1), Score::new(6.0)),
        ];
        let leaf = KnnDiversifier {
            neighbors: 2,
            limits: SearchLimits::unlimited(),
            bound_decay: 0.0,
        };
        let out = leaf.run(source(&items), oracle(), 2).unwrap();
        let ids: Vec<u32> = out.selected.iter().map(|r| r.item.0).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn rerank_pool_size_never_shrinks_k() {
        assert_eq!(rerank_pool_size(0), 0);
        assert_eq!(rerank_pool_size(3), 12);
        assert!(rerank_pool_size(usize::MAX) >= usize::MAX / RERANK_OVERSAMPLE);
    }
}
