//! `div-dp` — connected-component decomposition + dynamic programming
//! (Algorithm 7, §6).
//!
//! Independent sets never cross component boundaries, so each connected
//! component is searched independently with `div-astar` and the per-size
//! tables are folded together with the `⊕` operator (commutative and
//! associative, so fold order is free). The search space shrinks from
//! exponential in `|V(G)|` to exponential in the largest component.
//!
//! The inner searches inherit the bitset kernel automatically: every
//! component goes through
//! [`induced_subgraph`](crate::graph::DiversityGraph::induced_subgraph),
//! which relabels to a dense `0..|component|` id space and rebuilds the
//! (component-sized) adjacency bitmap — so even a graph too large to
//! carry a bitmap itself runs its per-component `div-astar` calls on the
//! dense kernel (DESIGN.md §7). The fold uses the allocation-free
//! [`combine_disjoint_in_place`] with lazily remapped witnesses.

use crate::astar::{AStarConfig, div_astar_ledger};
use crate::components::connected_components;
use crate::error::SearchError;
use crate::graph::DiversityGraph;
use crate::limits::{BudgetLedger, SearchLimits};
use crate::metrics::SearchMetrics;
use crate::ops::combine_disjoint_in_place;
use crate::solution::SearchResult;

/// Exact diversified top-k via component decomposition, no limits.
pub fn div_dp(g: &DiversityGraph, k: usize) -> SearchResult {
    let mut metrics = SearchMetrics::default();
    let mut ledger = SearchLimits::unlimited().start();
    div_dp_ledger(g, k, &AStarConfig::default(), &mut ledger, &mut metrics)
        .expect("unlimited search cannot exhaust budgets")
}

/// Exact diversified top-k via component decomposition under budgets.
pub fn div_dp_limited(
    g: &DiversityGraph,
    k: usize,
    limits: &SearchLimits,
) -> Result<(SearchResult, SearchMetrics), SearchError> {
    let mut metrics = SearchMetrics::default();
    let mut ledger = limits.start();
    let result = div_dp_ledger(g, k, &AStarConfig::default(), &mut ledger, &mut metrics)?;
    Ok((result, metrics))
}

pub(crate) fn div_dp_ledger(
    g: &DiversityGraph,
    k: usize,
    config: &AStarConfig,
    ledger: &mut BudgetLedger,
    metrics: &mut SearchMetrics,
) -> Result<SearchResult, SearchError> {
    let mut combined = SearchResult::empty(k);
    if k == 0 {
        return Ok(combined);
    }
    for comp in connected_components(g) {
        let (sub, map) = g.induced_subgraph(&comp);
        let local = div_astar_ledger(&sub, k, config, ledger, metrics)?;
        let global = local.map_nodes(&map);
        combine_disjoint_in_place(&mut combined, &global);
        metrics.plus_ops += 1;
        ledger.check_deadline()?;
    }
    Ok(combined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use crate::score::Score;
    use crate::testgen;

    fn s(v: u32) -> Score {
        Score::from(v)
    }

    /// Builds the two-component graph of Fig. 6: G1 = v1..v6 (scores
    /// 10,8,7,7,6,1 — the Fig. 1 graph) and G2 = u1..u5 (scores 10,9,8,7,6)
    /// wired so that D2 of G2 = {u1, u3} = 18 and D3 = {u2, u4, u5} = 22,
    /// matching the tables of Fig. 7.
    fn fig6_graph() -> DiversityGraph {
        // Global sorted scores: u1=10, v1=10, u2=9, u3=8, v2=8, u4=7, u5=6,
        // v3=7, v4=7, v5=6, v6=1 — interleaved. Easier: build unsorted and
        // let the constructor relabel.
        let scores = [
            s(10), // 0: v1
            s(8),  // 1: v2
            s(7),  // 2: v3
            s(7),  // 3: v4
            s(6),  // 4: v5
            s(1),  // 5: v6
            s(10), // 6: u1
            s(9),  // 7: u2
            s(8),  // 8: u3
            s(7),  // 9: u4
            s(6),  // 10: u5
        ];
        let edges = [
            // G1 = Fig. 1 edges.
            (0u32, 2u32),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 3),
            (1, 4),
            (3, 5),
            (4, 5),
            // G2: from Fig. 7, D1 = {u1} = 10, D2 = {u1, u3} = 18,
            // D3 = {u2, u4, u5} = 22, D4 = ∅ (no independent set of 4).
            // Edges achieving this: u1-u2, u1-u4, u1-u5, u2-u3, u3-u4, u3-u5.
            (6, 7),
            (6, 9),
            (6, 10),
            (7, 8),
            (8, 9),
            (8, 10),
        ];
        DiversityGraph::from_unsorted_scores(&scores, &edges).0
    }

    #[test]
    fn fig7_example3_combination() {
        // Example 3: k = 5, combining D1 (G1) and D2 (G2) gives
        // D.solution_5 with score 40 = 18 (2 nodes from G1) + 22 (3 from G2).
        let g = fig6_graph();
        let r = div_dp(&g, 5);
        assert_eq!(r.score(5), Some(s(40)));
        assert_eq!(r.prefix_best_score(5), s(40));
        // Fig. 7's combined table: sizes 1..5 = 10, 20, 28, 36, 40.
        assert_eq!(r.score(1), Some(s(10)));
        assert_eq!(r.score(2), Some(s(20)));
        assert_eq!(r.score(3), Some(s(28)));
        assert_eq!(r.score(4), Some(s(36)));
        r.assert_well_formed(Some(&g));
    }

    #[test]
    fn matches_astar_on_multi_component_graphs() {
        for seed in 0..25 {
            // Sparse → many components.
            let g = testgen::random_graph(16, 0.12, seed);
            for k in [1, 3, 6, 10] {
                let dp = div_dp(&g, k);
                let want = exhaustive(&g, k);
                dp.assert_well_formed(Some(&g));
                for i in 0..=k {
                    assert_eq!(
                        dp.prefix_best_score(i),
                        want.prefix_best_score(i),
                        "seed {seed} k {k} size {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn k_larger_than_graph() {
        let g = testgen::random_graph(6, 0.2, 3);
        let r = div_dp(&g, 10);
        let want = exhaustive(&g, 10);
        assert_eq!(r.best().score(), want.best().score());
    }

    #[test]
    fn empty_graph() {
        let g = DiversityGraph::from_sorted_scores(vec![], &[]);
        assert_eq!(div_dp(&g, 4).best().len(), 0);
    }

    #[test]
    fn budget_propagates_to_components() {
        let g = testgen::star_chain(50);
        let limits = SearchLimits {
            max_expansions: Some(2),
            ..SearchLimits::default()
        };
        assert!(div_dp_limited(&g, 25, &limits).is_err());
    }

    #[test]
    fn metrics_count_components() {
        // 3 isolated nodes → 3 components → 3 astar calls, 3 ⊕ folds.
        let g = DiversityGraph::from_sorted_scores(vec![s(3), s(2), s(1)], &[]);
        let (r, m) = div_dp_limited(&g, 2, &SearchLimits::unlimited()).unwrap();
        assert_eq!(r.best().score(), s(5));
        assert_eq!(m.astar_calls, 3);
        assert_eq!(m.plus_ops, 3);
    }
}
