//! The greedy baseline (§4, "Greedy is Not Good").
//!
//! Repeatedly takes the highest-scored remaining node, then deletes it and
//! its neighbors, until `k` nodes are chosen or the graph is exhausted.
//! Fast (`O(V + E)` given score-sorted ids) but its approximation ratio is
//! unbounded: on the paper's Fig. 2 family greedy scores 199 while the
//! optimum is 9,900. Provided as the comparison baseline for the quality
//! experiments and as a cheap seed/incumbent.

use crate::graph::{DiversityGraph, NodeId};
use crate::score::Score;
use crate::solution::SearchResult;

/// Runs the greedy heuristic, returning the chosen nodes (sorted) and score.
pub fn greedy(g: &DiversityGraph, k: usize) -> (Vec<NodeId>, Score) {
    let mut blocked = vec![false; g.len()];
    let mut chosen = Vec::with_capacity(k.min(g.len()));
    let mut total = Score::ZERO;
    // Node ids are already sorted by non-increasing score.
    for v in g.nodes() {
        if chosen.len() == k {
            break;
        }
        if blocked[v as usize] {
            continue;
        }
        chosen.push(v);
        total += g.score(v);
        for &nb in g.neighbors(v) {
            blocked[nb as usize] = true;
        }
    }
    (chosen, total)
}

/// Greedy packaged as a [`SearchResult`]: each prefix of the greedy pick
/// fills one size entry, so the table is feasible but — unlike the exact
/// algorithms — carries **no** prefix-max optimality guarantee.
pub fn greedy_result(g: &DiversityGraph, k: usize) -> SearchResult {
    let (chosen, _) = greedy(g, k);
    let mut out = SearchResult::empty(k);
    let mut prefix = Vec::new();
    let mut score = Score::ZERO;
    for v in chosen {
        prefix.push(v);
        score += g.score(v);
        out.offer(prefix.clone(), score);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u32) -> Score {
        Score::from(v)
    }

    #[test]
    fn empty_graph() {
        let g = DiversityGraph::from_sorted_scores(vec![], &[]);
        let (nodes, score) = greedy(&g, 3);
        assert!(nodes.is_empty());
        assert_eq!(score, Score::ZERO);
    }

    #[test]
    fn respects_k() {
        let g = DiversityGraph::from_sorted_scores(vec![s(5), s(4), s(3)], &[]);
        let (nodes, score) = greedy(&g, 2);
        assert_eq!(nodes, vec![0, 1]);
        assert_eq!(score, s(9));
    }

    #[test]
    fn fig1_greedy_is_suboptimal_at_k3() {
        // Greedy on Fig. 1 picks v1 (10), blocking v3, v4, v5; then v2 (8),
        // then v6 (1): total 19 < optimal 20.
        let g = DiversityGraph::paper_fig1();
        let (nodes, score) = greedy(&g, 3);
        assert_eq!(nodes, vec![0, 1, 5]);
        assert_eq!(score, s(19));
    }

    #[test]
    fn greedy_result_prefixes() {
        let g = DiversityGraph::paper_fig1();
        let r = greedy_result(&g, 3);
        assert_eq!(r.score(1), Some(s(10)));
        assert_eq!(r.score(2), Some(s(18)));
        assert_eq!(r.score(3), Some(s(19)));
        r.assert_well_formed(Some(&g));
    }

    #[test]
    fn greedy_picks_are_independent() {
        let g = DiversityGraph::paper_fig1();
        let (nodes, _) = greedy(&g, 6);
        assert!(g.is_independent_set(&nodes));
    }
}
