//! `div-cut` — the cut-point decomposition search (Algorithms 8–10, §7).
//!
//! Each connected component is first *compressed* (Lemma 7), then
//! decomposed along its cut points into a **cptree**: every tree node `o`
//! owns a cut point, an *entry graph* (the part of `o`'s territory that
//! touches the parent's cut point), a *left graph* (cut-point-free
//! remainder), and child subtrees. Results are computed bottom-up; each
//! node produces two tables — `result_0` (cut point excluded) and
//! `result_1` (included) — combined with `⊕`/`⊗`. Entry graphs are searched
//! up to four times (parent in/out × child in/out) with *mark counters*
//! suppressing nodes adjacent to included cut points; left and entry
//! graphs are searched by recursing into `div-cut` itself, so nested
//! cut structure keeps decomposing.
//!
//! ## Structural invariant that makes bottom-up reuse sound
//!
//! When a child `o'` (territory `C`, a component of `territory(o) −
//! o.cut_point`) is built, its entry graph collects **every** component of
//! `C − o'.cut_point` containing a neighbor of `o.cut_point`. Hence all of
//! `o.cut_point`'s neighbors inside `C` lie in `o'.entry_graph ∪
//! {o'.cut_point}` — so `o'.result_j` (which covers `C` *minus* the entry
//! graph) is valid regardless of whether `o.cut_point` is included; the
//! parent only re-searches the entry graph under the appropriate marks and
//! forbids the `both-included` case for adjacent cut points
//! (Algorithm 10 lines 10–11).

use crate::astar::{AStarConfig, div_astar_ledger};
use crate::components::connected_components;
use crate::compress::compress;
use crate::cutpoints::articulation_points;
use crate::error::SearchError;
use crate::graph::{DiversityGraph, NodeId};
use crate::limits::{BudgetLedger, SearchLimits};
use crate::metrics::SearchMetrics;
use crate::ops::{combine_alternative_in_place, combine_disjoint, combine_disjoint_in_place};
use crate::solution::SearchResult;

/// How the root cut point of each cptree is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootHeuristic {
    /// Minimize the largest component left after removing the root (paper
    /// default).
    MinMaxComponent,
    /// Take the first (highest-scored) cut point — ablation AB2 control.
    First,
}

/// How non-root cut points are chosen within their territory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildHeuristic {
    /// Maximize the entry graph (paper text + worked example; default).
    LargestEntryGraph,
    /// Minimize the entry graph (the pseudocode's line 2) — ablation AB2.
    SmallestEntryGraph,
    /// Take the first cut point — ablation AB2 control.
    First,
}

/// Tuning knobs for `div-cut`; defaults reproduce the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct CutConfig {
    /// Inner A\* configuration.
    pub astar: AStarConfig,
    /// Apply Lemma 7 compression before decomposing (ablation AB1).
    pub compress: bool,
    /// Root selection strategy.
    pub root_heuristic: RootHeuristic,
    /// Non-root selection strategy.
    pub child_heuristic: ChildHeuristic,
    /// At most this many candidate cut points are evaluated per selection
    /// (evenly sampled) — caps the `O(|cut points| · (V + E))` selection
    /// scan on adversarial graphs without affecting exactness.
    pub selection_scan_cap: usize,
    /// Maximum `div-cut` nesting depth (entry/left graphs recurse into
    /// `div-cut`); beyond it the subgraph falls back to plain `div-astar`,
    /// which is still exact.
    pub max_nest_depth: usize,
}

impl Default for CutConfig {
    fn default() -> CutConfig {
        CutConfig {
            astar: AStarConfig::default(),
            compress: true,
            root_heuristic: RootHeuristic::MinMaxComponent,
            child_heuristic: ChildHeuristic::LargestEntryGraph,
            selection_scan_cap: 32,
            max_nest_depth: 64,
        }
    }
}

/// One node of the cptree (arena-allocated; children have larger indices).
#[derive(Debug)]
pub(crate) struct CpNode {
    pub(crate) cut_point: NodeId,
    /// Nodes of the entry graph (may span several components; may be empty).
    pub(crate) entry_graph: Vec<NodeId>,
    /// Nodes of the cut-point-free remainder (may be empty / disconnected).
    pub(crate) left_graph: Vec<NodeId>,
    /// Arena indices of child cptree nodes.
    pub(crate) children: Vec<usize>,
}

/// Exact diversified top-k via cut-point decomposition, no limits.
///
/// ```
/// use divtopk_core::prelude::*;
///
/// // A path v0—v1—v2 with scores 10, 9, 1. v1 is a cut point; the best
/// // independent pair is {v0, v2} even though {v0, v1} scores higher
/// // before feasibility.
/// let g = DiversityGraph::from_sorted_scores(
///     vec![Score::new(10.0), Score::new(9.0), Score::new(1.0)],
///     &[(0, 1), (1, 2)],
/// );
/// let result = div_cut(&g, 2);
/// assert_eq!(result.best().score(), Score::new(11.0));
/// assert_eq!(result.best().nodes(), vec![0, 2]);
/// ```
pub fn div_cut(g: &DiversityGraph, k: usize) -> SearchResult {
    let mut metrics = SearchMetrics::default();
    let mut ledger = SearchLimits::unlimited().start();
    div_cut_ledger(g, k, &CutConfig::default(), &mut ledger, &mut metrics, 0)
        .expect("unlimited search cannot exhaust budgets")
}

/// Exact diversified top-k via cut-point decomposition under budgets.
pub fn div_cut_limited(
    g: &DiversityGraph,
    k: usize,
    limits: &SearchLimits,
) -> Result<(SearchResult, SearchMetrics), SearchError> {
    div_cut_configured(g, k, &CutConfig::default(), limits)
}

/// Fully configurable entry point (heuristics + budgets).
pub fn div_cut_configured(
    g: &DiversityGraph,
    k: usize,
    config: &CutConfig,
    limits: &SearchLimits,
) -> Result<(SearchResult, SearchMetrics), SearchError> {
    let mut metrics = SearchMetrics::default();
    let mut ledger = limits.start();
    let result = div_cut_ledger(g, k, config, &mut ledger, &mut metrics, 0)?;
    Ok((result, metrics))
}

/// Algorithm 8: components → compress → cptree (or astar when no cut points).
pub(crate) fn div_cut_ledger(
    g: &DiversityGraph,
    k: usize,
    config: &CutConfig,
    ledger: &mut BudgetLedger,
    metrics: &mut SearchMetrics,
    depth: usize,
) -> Result<SearchResult, SearchError> {
    let mut combined = SearchResult::empty(k);
    if k == 0 || g.is_empty() {
        return Ok(combined);
    }
    for comp in connected_components(g) {
        let (sub, map) = g.induced_subgraph(&comp);
        let local = cut_component(&sub, k, config, ledger, metrics, depth)?;
        combine_disjoint_in_place(&mut combined, &local.map_nodes(&map));
        metrics.plus_ops += 1;
        ledger.check_deadline()?;
    }
    Ok(combined)
}

/// Handles one *connected* component.
fn cut_component(
    g: &DiversityGraph,
    k: usize,
    config: &CutConfig,
    ledger: &mut BudgetLedger,
    metrics: &mut SearchMetrics,
    depth: usize,
) -> Result<SearchResult, SearchError> {
    if config.compress {
        let kept = compress(g);
        if kept.len() < g.len() {
            metrics.compressed_nodes += (g.len() - kept.len()) as u64;
            let (cg, map) = g.induced_subgraph(&kept);
            // Compression can disconnect the component; restart the full
            // body on the strictly smaller graph (compression is
            // idempotent, so this cannot loop).
            let inner = div_cut_ledger(&cg, k, config, ledger, metrics, depth)?;
            return Ok(inner.map_nodes(&map));
        }
    }
    let cut_points = articulation_points(g);
    if cut_points.is_empty() || depth >= config.max_nest_depth {
        return div_astar_ledger(g, k, &config.astar, ledger, metrics);
    }
    let tree = construct_cptree(g, &cut_points, config);
    metrics.cptree_nodes += tree.len() as u64;
    cp_search(g, &tree, k, config, ledger, metrics, depth)
}

/// Membership scratch with epoch stamps (avoids reallocating per query).
struct Territory {
    stamp: Vec<u32>,
    epoch: u32,
}

impl Territory {
    fn new(n: usize) -> Territory {
        Territory {
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    fn set(&mut self, nodes: &[NodeId]) {
        self.epoch += 1;
        for &v in nodes {
            self.stamp[v as usize] = self.epoch;
        }
    }

    /// Starts a fresh empty stamp generation (marks added via [`mark`](Territory::mark)).
    fn begin(&mut self) {
        self.epoch += 1;
    }

    #[inline]
    fn mark(&mut self, v: NodeId) {
        self.stamp[v as usize] = self.epoch;
    }

    #[inline]
    fn contains(&self, v: NodeId) -> bool {
        self.stamp[v as usize] == self.epoch
    }
}

/// Reusable scratch for cptree construction: territory membership stamps,
/// BFS visited stamps and the BFS work stack. The cut-point selection scan
/// calls [`sub_components`] O(|candidates|) times per territory; with the
/// stamps reused, those calls allocate only the component vectors
/// themselves.
struct CpScratch {
    membership: Territory,
    visited: Territory,
    stack: Vec<NodeId>,
}

impl CpScratch {
    fn new(n: usize) -> CpScratch {
        CpScratch {
            membership: Territory::new(n),
            visited: Territory::new(n),
            stack: Vec::new(),
        }
    }
}

/// Connected components of `territory − {excluded}` (BFS within stamps).
fn sub_components(
    g: &DiversityGraph,
    territory: &[NodeId],
    excluded: NodeId,
    scratch: &mut CpScratch,
) -> Vec<Vec<NodeId>> {
    scratch.membership.set(territory);
    scratch.visited.begin();
    scratch.visited.mark(excluded);
    let mut out = Vec::new();
    for &start in territory {
        if scratch.visited.contains(start) {
            continue;
        }
        let mut comp = vec![start];
        scratch.visited.mark(start);
        scratch.stack.clear();
        scratch.stack.push(start);
        while let Some(v) = scratch.stack.pop() {
            for &nb in g.neighbors(v) {
                if scratch.membership.contains(nb) && !scratch.visited.contains(nb) {
                    scratch.visited.mark(nb);
                    comp.push(nb);
                    scratch.stack.push(nb);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// Evenly samples at most `cap` candidates (deterministic).
fn sample_candidates(candidates: &[NodeId], cap: usize) -> Vec<NodeId> {
    if candidates.len() <= cap {
        return candidates.to_vec();
    }
    let step = candidates.len() as f64 / cap as f64;
    (0..cap)
        .map(|i| candidates[(i as f64 * step) as usize])
        .collect()
}

/// Algorithm 9's cut-point selection for one territory.
fn select_cut_point(
    g: &DiversityGraph,
    territory: &[NodeId],
    candidates: &[NodeId],
    parent_cut: Option<NodeId>,
    config: &CutConfig,
    scratch: &mut CpScratch,
) -> NodeId {
    debug_assert!(!candidates.is_empty());
    match parent_cut {
        None if config.root_heuristic == RootHeuristic::First => candidates[0],
        Some(_) if config.child_heuristic == ChildHeuristic::First => candidates[0],
        None => {
            // Root: minimize the largest remaining component.
            let sampled = sample_candidates(candidates, config.selection_scan_cap);
            let mut best = sampled[0];
            let mut best_max = usize::MAX;
            for &v in &sampled {
                let comps = sub_components(g, territory, v, scratch);
                let max = comps.iter().map(|c| c.len()).max().unwrap_or(0);
                if max < best_max {
                    best_max = max;
                    best = v;
                }
            }
            best
        }
        Some(p) => {
            // Child: optimize the entry-graph size per the heuristic.
            let sampled = sample_candidates(candidates, config.selection_scan_cap);
            let want_largest = config.child_heuristic == ChildHeuristic::LargestEntryGraph;
            let mut best = sampled[0];
            let mut best_size: Option<usize> = None;
            for &v in &sampled {
                let comps = sub_components(g, territory, v, scratch);
                let entry: usize = comps
                    .iter()
                    .filter(|c| c.iter().any(|&x| g.are_adjacent(x, p)))
                    .map(|c| c.len())
                    .sum();
                let better = match best_size {
                    None => true,
                    Some(cur) => {
                        if want_largest {
                            entry > cur
                        } else {
                            entry < cur
                        }
                    }
                };
                if better {
                    best_size = Some(entry);
                    best = v;
                }
            }
            best
        }
    }
}

/// Algorithm 9, iterative: builds the cptree arena for one connected graph.
///
/// Children are always appended after their parent, so iterating the arena
/// in reverse index order visits children before parents (a post-order).
pub(crate) fn construct_cptree(
    g: &DiversityGraph,
    cut_points: &[NodeId],
    config: &CutConfig,
) -> Vec<CpNode> {
    let n = g.len();
    let mut is_cp = vec![false; n];
    for &c in cut_points {
        is_cp[c as usize] = true;
    }
    let mut scratch = CpScratch::new(n);
    let mut arena: Vec<CpNode> = Vec::new();

    struct WorkItem {
        territory: Vec<NodeId>,
        parent: Option<usize>,
        parent_cut: Option<NodeId>,
    }
    let mut work = vec![WorkItem {
        territory: g.nodes().collect(),
        parent: None,
        parent_cut: None,
    }];

    while let Some(item) = work.pop() {
        let candidates: Vec<NodeId> = item
            .territory
            .iter()
            .copied()
            .filter(|&v| is_cp[v as usize])
            .collect();
        debug_assert!(
            !candidates.is_empty(),
            "work items are only created for territories containing cut points"
        );
        let v = select_cut_point(
            g,
            &item.territory,
            &candidates,
            item.parent_cut,
            config,
            &mut scratch,
        );
        let comps = sub_components(g, &item.territory, v, &mut scratch);
        let mut entry_graph: Vec<NodeId> = Vec::new();
        let mut rest: Vec<Vec<NodeId>> = Vec::new();
        for comp in comps {
            let is_entry = match item.parent_cut {
                Some(p) => comp.iter().any(|&x| g.are_adjacent(x, p)),
                None => false,
            };
            if is_entry {
                entry_graph.extend(comp);
            } else {
                rest.push(comp);
            }
        }
        entry_graph.sort_unstable();

        let idx = arena.len();
        arena.push(CpNode {
            cut_point: v,
            entry_graph,
            left_graph: Vec::new(),
            children: Vec::new(),
        });
        if let Some(p) = item.parent {
            arena[p].children.push(idx);
        }
        let mut left: Vec<NodeId> = Vec::new();
        for comp in rest {
            if comp.iter().any(|&x| is_cp[x as usize]) {
                work.push(WorkItem {
                    territory: comp,
                    parent: Some(idx),
                    parent_cut: Some(v),
                });
            } else {
                left.extend(comp);
            }
        }
        left.sort_unstable();
        arena[idx].left_graph = left;
    }
    arena
}

/// Adjusts the mark counters around `v`'s neighborhood.
fn mark_adjacent(g: &DiversityGraph, marks: &mut [u32], v: NodeId, add: bool) {
    for &nb in g.neighbors(v) {
        if add {
            marks[nb as usize] += 1;
        } else {
            debug_assert!(marks[nb as usize] > 0, "unbalanced unmark");
            marks[nb as usize] -= 1;
        }
    }
}

/// `remove-mark(subgraph)` + recursive `div-cut`: searches the unmarked
/// nodes of `node_set` and maps the table back to this graph's ids.
#[allow(clippy::too_many_arguments)]
fn search_filtered(
    g: &DiversityGraph,
    node_set: &[NodeId],
    marks: &[u32],
    k: usize,
    config: &CutConfig,
    ledger: &mut BudgetLedger,
    metrics: &mut SearchMetrics,
    depth: usize,
) -> Result<SearchResult, SearchError> {
    let keep: Vec<NodeId> = node_set
        .iter()
        .copied()
        .filter(|&v| marks[v as usize] == 0)
        .collect();
    if keep.is_empty() {
        return Ok(SearchResult::empty(k));
    }
    let (sub, map) = g.induced_subgraph(&keep);
    let local = div_cut_ledger(&sub, k, config, ledger, metrics, depth + 1)?;
    Ok(local.map_nodes(&map))
}

/// Algorithm 10, iterative bottom-up over the arena.
fn cp_search(
    g: &DiversityGraph,
    tree: &[CpNode],
    k: usize,
    config: &CutConfig,
    ledger: &mut BudgetLedger,
    metrics: &mut SearchMetrics,
    depth: usize,
) -> Result<SearchResult, SearchError> {
    let mut marks = vec![0u32; g.len()];
    let mut results: Vec<Option<[SearchResult; 2]>> = Vec::new();
    results.resize_with(tree.len(), || None);

    for idx in (0..tree.len()).rev() {
        ledger.check_deadline()?;
        let node = &tree[idx];
        let mut pair = [SearchResult::empty(k), SearchResult::empty(k)];
        for include in [false, true] {
            if include {
                mark_adjacent(g, &mut marks, node.cut_point, true);
            }
            // Left graph under the current marks (Algorithm 10 line 6).
            let mut r = search_filtered(
                g,
                &node.left_graph,
                &marks,
                k,
                config,
                ledger,
                metrics,
                depth,
            )?;
            for &child_idx in &node.children {
                let child = &tree[child_idx];
                let child_results = results[child_idx]
                    .as_ref()
                    .expect("children are processed before parents");
                let mut alt: Option<SearchResult> = None;
                for child_include in [false, true] {
                    // Both cut points included but adjacent → infeasible
                    // (lines 10–11).
                    if child_include && include && g.are_adjacent(node.cut_point, child.cut_point) {
                        break;
                    }
                    if child_include {
                        mark_adjacent(g, &mut marks, child.cut_point, true);
                    }
                    let entry = search_filtered(
                        g,
                        &child.entry_graph,
                        &marks,
                        k,
                        config,
                        ledger,
                        metrics,
                        depth,
                    )?;
                    let branch =
                        combine_disjoint(&child_results[usize::from(child_include)], &entry);
                    metrics.plus_ops += 1;
                    alt = Some(match alt {
                        None => branch,
                        Some(mut prev) => {
                            metrics.otimes_ops += 1;
                            combine_alternative_in_place(&mut prev, &branch);
                            prev
                        }
                    });
                    if child_include {
                        mark_adjacent(g, &mut marks, child.cut_point, false);
                    }
                }
                let alt = alt.expect("child_include=false always runs");
                combine_disjoint_in_place(&mut r, &alt);
                metrics.plus_ops += 1;
            }
            if include {
                r = r.shift_include(node.cut_point, g.score(node.cut_point));
                mark_adjacent(g, &mut marks, node.cut_point, false);
            }
            pair[usize::from(include)] = r;
        }
        results[idx] = Some(pair);
    }

    let [mut r0, r1] = results[0].take().expect("root processed last");
    metrics.otimes_ops += 1;
    combine_alternative_in_place(&mut r0, &r1);
    Ok(r0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use crate::score::Score;
    use crate::testgen;

    fn s(v: u32) -> Score {
        Score::from(v)
    }

    /// The paper's Fig. 8 graph, reconstructed from Examples 4–5 and
    /// Figs. 9/11: `G′1` is the Fig. 1 graph (v1..v6), `G′2` is Fig. 6's G2
    /// (u1..u5), the hub `w2` (13) is adjacent to v2, v4, u2, u3;
    /// `w1` (12) duplicates `w2`'s neighborhood and is dominated by it;
    /// pendant chains w4–w3 hang off v6 and w5–w6 off u5.
    ///
    /// Returns `(graph, perm)` with `perm[new_id] = index into NAMES`.
    pub(crate) fn fig8_graph() -> (DiversityGraph, Vec<u32>) {
        // Indices into `scores`: 0..5 = v1..v6, 6..10 = u1..u5,
        // 11 = w1, 12 = w2, 13 = w3, 14 = w4, 15 = w5, 16 = w6.
        let scores = [
            s(10),
            s(8),
            s(7),
            s(7),
            s(6),
            s(1), // v1..v6
            s(10),
            s(9),
            s(8),
            s(7),
            s(6), // u1..u5
            s(12),
            s(13),
            s(1),
            s(1),
            s(1),
            s(1), // w1, w2, w3, w4, w5, w6
        ];
        let edges = [
            // G′1 (Fig. 1 edges).
            (0u32, 2u32),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 3),
            (1, 4),
            (3, 5),
            (4, 5),
            // G′2 (Fig. 6's G2 edges).
            (6, 7),
            (6, 9),
            (6, 10),
            (7, 8),
            (8, 9),
            (8, 10),
            // Hub w2 and its shadow w1.
            (12, 1),
            (12, 3),
            (12, 7),
            (12, 8),
            (12, 11),
            (11, 1),
            (11, 3),
            (11, 7),
            (11, 8),
            // Pendant chains.
            (14, 5),
            (14, 13),
            (15, 10),
            (15, 16),
        ];
        DiversityGraph::from_unsorted_scores(&scores, &edges)
    }

    #[test]
    fn fig11_final_table() {
        // Fig. 11's final (⊗-combined) table for k = 5:
        // sizes 1..5 score 13, 23, 33, 36, 40.
        let (g, _) = fig8_graph();
        let r = div_cut(&g, 5);
        assert_eq!(r.prefix_best_score(1), s(13));
        assert_eq!(r.prefix_best_score(2), s(23));
        assert_eq!(r.prefix_best_score(3), s(33));
        assert_eq!(r.prefix_best_score(4), s(36));
        assert_eq!(r.prefix_best_score(5), s(40));
        assert_eq!(r.best().score(), s(40));
        r.assert_well_formed(Some(&g));
        // Cross-check the whole table against the oracle.
        let want = exhaustive(&g, 5);
        for i in 0..=5 {
            assert_eq!(r.prefix_best_score(i), want.prefix_best_score(i));
        }
    }

    #[test]
    fn fig9_compression_removes_w1() {
        // Example 4 removes w1 (dominated by w2). A *fixpoint* of Lemma 7
        // is stronger than the paper's one-step illustration: with all
        // pendant scores equal to 1, leaf w3 also dominates its support w4
        // (N[w3] = {w3, w4} ⊆ N[w4], scores tie) and w6 dominates w5 — so
        // our compression removes {w1, w4, w5}. Exactness is untouched
        // (`fig11_final_table` checks the optimum against the oracle).
        let (g, perm) = fig8_graph();
        let kept = compress(&g);
        let removed: Vec<u32> = g
            .nodes()
            .filter(|v| !kept.contains(v))
            .map(|v| perm[v as usize])
            .collect();
        let w1 = 11u32;
        assert!(removed.contains(&w1), "w1 must be compressed away");
        let mut removed = removed;
        removed.sort_unstable();
        assert_eq!(removed, vec![w1, 14, 15]); // w1, w4 (leaf w3 wins), w5
    }

    #[test]
    fn fig11_cptree_shape() {
        // The paper's Fig. 9/11 apply only Example 4's single removal (w1).
        // Reproduce exactly that state and check the cptree is
        // w2 → {w4, w5} with entry graphs G′1 (6 nodes) / G′2 (5 nodes)
        // and left graphs {w3} / {w6} (Fig. 11, leftmost panel).
        let (g, perm) = fig8_graph();
        let w1_new = perm.iter().position(|&o| o == 11).unwrap() as NodeId;
        let kept: Vec<NodeId> = g.nodes().filter(|&v| v != w1_new).collect();
        let (cg, map) = g.induced_subgraph(&kept);
        // Identify original labels in compressed-graph id space.
        let orig_of = |cid: NodeId| perm[map[cid as usize] as usize];
        let cps = articulation_points(&cg);
        let tree = construct_cptree(&cg, &cps, &CutConfig::default());
        assert_eq!(orig_of(tree[0].cut_point), 12, "root must be w2");
        assert_eq!(tree[0].children.len(), 2);
        assert!(tree[0].entry_graph.is_empty());
        assert!(tree[0].left_graph.is_empty());
        let mut child_info: Vec<(u32, usize, Vec<u32>)> = tree[0]
            .children
            .iter()
            .map(|&c| {
                (
                    orig_of(tree[c].cut_point),
                    tree[c].entry_graph.len(),
                    tree[c]
                        .left_graph
                        .iter()
                        .map(|&v| orig_of(v))
                        .collect::<Vec<u32>>(),
                )
            })
            .collect();
        child_info.sort();
        // w4 (index 14): entry = G′1 (v1..v6, 6 nodes), left = {w3 = 13}.
        // w5 (index 15): entry = G′2 (u1..u5, 5 nodes), left = {w6 = 16}.
        assert_eq!(child_info[0], (14, 6, vec![13]));
        assert_eq!(child_info[1], (15, 5, vec![16]));
    }

    /// Structural invariants of the cptree over one connected graph:
    /// 1. cut points + entry graphs + left graphs partition the node set;
    /// 2. every neighbor of a node's cut point inside a child's territory
    ///    lies in that child's entry graph or is the child's cut point
    ///    (the property cp-search's bottom-up reuse relies on).
    fn assert_cptree_invariants(g: &DiversityGraph, tree: &[CpNode]) {
        use std::collections::HashSet;
        let mut seen: HashSet<NodeId> = HashSet::new();
        for node in tree {
            for &v in std::iter::once(&node.cut_point)
                .chain(&node.entry_graph)
                .chain(&node.left_graph)
            {
                assert!(seen.insert(v), "node {v} appears twice in the cptree");
            }
        }
        assert_eq!(seen.len(), g.len(), "cptree must cover every node");

        // Invariant 2: parent's cut-point neighbors within each child's
        // subtree lie in the child's entry graph ∪ {child.cut_point}.
        for (idx, node) in tree.iter().enumerate() {
            for &child_idx in &node.children {
                // Collect the child's full subtree coverage.
                let mut coverage: HashSet<NodeId> = HashSet::new();
                let mut stack = vec![child_idx];
                while let Some(i) = stack.pop() {
                    let c = &tree[i];
                    coverage.insert(c.cut_point);
                    coverage.extend(&c.entry_graph);
                    coverage.extend(&c.left_graph);
                    stack.extend(&c.children);
                }
                let child = &tree[child_idx];
                let entry: HashSet<NodeId> = child.entry_graph.iter().copied().collect();
                for &nb in g.neighbors(node.cut_point) {
                    if coverage.contains(&nb) {
                        assert!(
                            entry.contains(&nb) || nb == child.cut_point,
                            "cpnode {idx}: parent-adjacent node {nb} deep in child {child_idx}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cptree_invariants_on_random_connected_graphs() {
        for seed in 0..40 {
            let g = testgen::random_graph(18, 0.12, 3000 + seed);
            for comp in crate::components::connected_components(&g) {
                let (sub, _) = g.induced_subgraph(&comp);
                let cps = articulation_points(&sub);
                if cps.is_empty() {
                    continue;
                }
                let tree = construct_cptree(&sub, &cps, &CutConfig::default());
                assert_cptree_invariants(&sub, &tree);
            }
        }
        // Paths exercise deep chains.
        for n in [10usize, 40, 120] {
            let g = testgen::path_graph(n, n as u64 + 5);
            let cps = articulation_points(&g);
            let tree = construct_cptree(&g, &cps, &CutConfig::default());
            assert_cptree_invariants(&g, &tree);
        }
    }

    #[test]
    fn matches_exhaustive_on_random_graphs() {
        for seed in 0..30 {
            let g = testgen::random_graph(14, 0.2, seed);
            for k in [1, 3, 5, 9, 14] {
                let got = div_cut(&g, k);
                let want = exhaustive(&g, k);
                got.assert_well_formed(Some(&g));
                for i in 0..=k {
                    assert_eq!(
                        got.prefix_best_score(i),
                        want.prefix_best_score(i),
                        "seed {seed} k {k} size {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_exhaustive_on_clustered_graphs() {
        let config = testgen::ClusterConfig {
            clusters: 3,
            cluster_size: 5,
            intra_p: 0.7,
            bridges: 3,
            singletons: 2,
        };
        for seed in 0..20 {
            let g = testgen::planted_clusters(&config, seed);
            let got = div_cut(&g, 6);
            let want = exhaustive(&g, 6);
            for i in 0..=6 {
                assert_eq!(
                    got.prefix_best_score(i),
                    want.prefix_best_score(i),
                    "seed {seed} size {i}"
                );
            }
        }
    }

    #[test]
    fn matches_exhaustive_on_paths_and_stars() {
        for n in [2usize, 3, 5, 9, 16] {
            let g = testgen::path_graph(n, n as u64);
            let got = div_cut(&g, n);
            let want = exhaustive(&g, n);
            for i in 0..=n {
                assert_eq!(
                    got.prefix_best_score(i),
                    want.prefix_best_score(i),
                    "path n={n} i={i}"
                );
            }
        }
        let g = testgen::star_chain(12);
        let got = div_cut(&g, 12);
        let want = exhaustive(&g, 12);
        assert_eq!(got.best().score(), want.best().score());
    }

    #[test]
    fn all_heuristic_combinations_are_exact() {
        let heuristics = [
            (
                RootHeuristic::MinMaxComponent,
                ChildHeuristic::LargestEntryGraph,
            ),
            (
                RootHeuristic::MinMaxComponent,
                ChildHeuristic::SmallestEntryGraph,
            ),
            (RootHeuristic::First, ChildHeuristic::First),
            (RootHeuristic::First, ChildHeuristic::LargestEntryGraph),
        ];
        for seed in 0..12 {
            let g = testgen::random_graph(12, 0.18, seed);
            let want = exhaustive(&g, 6);
            for (root, child) in heuristics {
                let config = CutConfig {
                    root_heuristic: root,
                    child_heuristic: child,
                    ..CutConfig::default()
                };
                let (got, _) =
                    div_cut_configured(&g, 6, &config, &SearchLimits::unlimited()).unwrap();
                for i in 0..=6 {
                    assert_eq!(
                        got.prefix_best_score(i),
                        want.prefix_best_score(i),
                        "seed {seed} {root:?}/{child:?} size {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn compression_off_is_still_exact() {
        let config = CutConfig {
            compress: false,
            ..CutConfig::default()
        };
        for seed in 0..12 {
            let g = testgen::random_graph(13, 0.25, seed);
            let (got, _) = div_cut_configured(&g, 6, &config, &SearchLimits::unlimited()).unwrap();
            let want = exhaustive(&g, 6);
            for i in 0..=6 {
                assert_eq!(got.prefix_best_score(i), want.prefix_best_score(i));
            }
        }
    }

    #[test]
    fn nest_depth_fallback_is_exact() {
        let config = CutConfig {
            max_nest_depth: 1,
            ..CutConfig::default()
        };
        for seed in 0..8 {
            let g = testgen::random_graph(12, 0.15, seed);
            let (got, _) = div_cut_configured(&g, 6, &config, &SearchLimits::unlimited()).unwrap();
            let want = exhaustive(&g, 6);
            assert_eq!(got.best().score(), want.best().score(), "seed {seed}");
        }
    }

    #[test]
    fn budgets_propagate() {
        let g = testgen::planted_clusters(&testgen::ClusterConfig::default(), 3);
        let limits = SearchLimits {
            max_expansions: Some(1),
            ..SearchLimits::default()
        };
        assert!(div_cut_limited(&g, 10, &limits).is_err());
    }

    #[test]
    fn metrics_record_decomposition() {
        let (g, _) = fig8_graph();
        let (_, m) = div_cut_limited(&g, 5, &SearchLimits::unlimited()).unwrap();
        assert_eq!(m.compressed_nodes, 3); // w1, w4, w5 (fixpoint of Lemma 7)
        assert!(m.cptree_nodes >= 1); // at least the hub w2
        assert!(m.plus_ops > 0);
        assert!(m.otimes_ops > 0);
    }

    #[test]
    fn metrics_on_paper_compressed_graph() {
        // With only w1 removed (the paper's illustration), the cptree has
        // the three nodes of Fig. 11 and compression inside div-cut then
        // still removes w4/w5 within sub-searches.
        let (g, perm) = fig8_graph();
        let w1_new = perm.iter().position(|&o| o == 11).unwrap() as NodeId;
        let kept: Vec<NodeId> = g.nodes().filter(|&v| v != w1_new).collect();
        let (cg, _) = g.induced_subgraph(&kept);
        let config = CutConfig {
            compress: false,
            ..CutConfig::default()
        };
        let (r, m) = div_cut_configured(&cg, 5, &config, &SearchLimits::unlimited()).unwrap();
        assert_eq!(r.prefix_best_score(5), s(40));
        assert!(
            m.cptree_nodes >= 3,
            "w2, w4, w5 at least; got {}",
            m.cptree_nodes
        );
    }

    #[test]
    fn moderate_path_graph_is_exact_and_fast() {
        // Every interior node is a cut point: exercises deep cptrees.
        let g = testgen::path_graph(60, 9);
        let got = div_cut(&g, 20);
        let want = crate::dp::div_dp(&g, 20);
        for i in 0..=20 {
            assert_eq!(
                got.prefix_best_score(i),
                want.prefix_best_score(i),
                "size {i}"
            );
        }
    }
}
