//! `div-astar` — the A\*-based exact search (Algorithm 4, §5).
//!
//! Partial solutions live in a max-heap ranked by an admissible upper bound
//! (`astar-bound`): the best score any extension of the partial solution
//! (using only nodes at later positions, up to `k'` total) could reach.
//! Because node ids are sorted by non-increasing score, the bound simply
//! greedily sums the best *compatible* later nodes.
//!
//! One heap is **reused** across the per-size rounds `k' = k, k-1, …, 1`
//! (Lemma 6): after the round for `k'`, every surviving entry's bound is
//! recomputed for `k' − 1` and the heap is rebuilt, instead of restarting
//! the search from scratch. After the round for `k'`, the table's prefix
//! maximum at `k'` is exact (see `solution.rs` docs for why prefix-max is
//! the right contract).

use crate::error::SearchError;
use crate::graph::{DiversityGraph, NodeId};
use crate::limits::{BudgetLedger, SearchLimits};
use crate::metrics::SearchMetrics;
use crate::score::Score;
use crate::solution::SearchResult;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A partial solution in the A\* frontier.
///
/// `first_untried` is `e.pos + 1` in the paper's notation: the smallest node
/// id not yet considered for extension (all solution members have smaller
/// ids).
#[derive(Debug, Clone)]
struct Entry {
    bound: Score,
    score: Score,
    first_untried: NodeId,
    solution: Vec<NodeId>,
}

impl Entry {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Entry>() + self.solution.capacity() * std::mem::size_of::<NodeId>()
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by bound; ties broken by realized score (prefer more
        // complete solutions), then by position for determinism.
        self.bound
            .cmp(&other.bound)
            .then(self.score.cmp(&other.score))
            .then(other.first_untried.cmp(&self.first_untried))
    }
}

/// Scratch space for bound computations: two stamp arrays avoid clearing
/// `O(V)` buffers per entry.
struct Scratch {
    /// Stamped with `epoch` for nodes adjacent to the popped entry's solution.
    excl: Vec<u32>,
    /// Stamped with `cand_epoch` for nodes adjacent to the candidate node.
    cand: Vec<u32>,
    epoch: u32,
    cand_epoch: u32,
}

impl Scratch {
    fn new(n: usize) -> Scratch {
        Scratch {
            excl: vec![0; n],
            cand: vec![0; n],
            epoch: 0,
            cand_epoch: 0,
        }
    }

    /// Marks everything adjacent to `solution` (fresh epoch).
    fn mark_solution(&mut self, g: &DiversityGraph, solution: &[NodeId]) {
        self.epoch += 1;
        for &v in solution {
            for &nb in g.neighbors(v) {
                self.excl[nb as usize] = self.epoch;
            }
        }
    }

    /// Marks everything adjacent to `v` (fresh candidate epoch).
    fn mark_candidate(&mut self, g: &DiversityGraph, v: NodeId) {
        self.cand_epoch += 1;
        for &nb in g.neighbors(v) {
            self.cand[nb as usize] = self.cand_epoch;
        }
    }

    #[inline]
    fn excluded(&self, v: NodeId) -> bool {
        self.excl[v as usize] == self.epoch
    }

    #[inline]
    fn cand_excluded(&self, v: NodeId) -> bool {
        self.cand[v as usize] == self.cand_epoch
    }
}

/// `astar-bound(G, e, k')` (Algorithm 4 lines 18–26) given pre-marked
/// exclusion stamps: extends from `first_untried`, greedily adding the
/// highest-scored compatible nodes until `k'` total.
///
/// `use_cand` selects whether the candidate stamp array participates
/// (true when bounding a child `e ∪ {v}` whose neighbors were just marked).
fn bound_from_marks(
    g: &DiversityGraph,
    scratch: &Scratch,
    use_cand: bool,
    mut size: usize,
    base_score: Score,
    first_untried: NodeId,
    k_prime: usize,
) -> Score {
    let n = g.len() as NodeId;
    let mut bound = base_score;
    let mut i = first_untried;
    while size < k_prime && i < n {
        if !scratch.excluded(i) && (!use_cand || !scratch.cand_excluded(i)) {
            bound += g.score(i);
            size += 1;
        }
        i += 1;
    }
    bound
}

/// Standalone `astar-bound` for one entry (used when re-bounding the heap
/// between rounds). Marks the entry's exclusions itself.
fn astar_bound(g: &DiversityGraph, scratch: &mut Scratch, e: &Entry, k_prime: usize) -> Score {
    scratch.mark_solution(g, &e.solution);
    bound_from_marks(
        g,
        scratch,
        false,
        e.solution.len(),
        e.score,
        e.first_untried,
        k_prime,
    )
}

/// Configuration knobs for `div-astar` (ablations; defaults match the paper).
#[derive(Debug, Clone)]
pub struct AStarConfig {
    /// Reuse the heap across `k'` rounds (Lemma 6). Disabling restarts the
    /// search from scratch for every `k'` — ablation AB4.
    pub reuse_heap: bool,
}

impl Default for AStarConfig {
    fn default() -> AStarConfig {
        AStarConfig { reuse_heap: true }
    }
}

/// Exact diversified top-k on `g` with default config and no limits.
///
/// Infallible (no budgets); worst-case exponential time — prefer
/// [`div_astar_limited`] on untrusted inputs or use `div-dp`/`div-cut`.
pub fn div_astar(g: &DiversityGraph, k: usize) -> SearchResult {
    let mut metrics = SearchMetrics::default();
    let mut ledger = SearchLimits::unlimited().start();
    div_astar_ledger(g, k, &AStarConfig::default(), &mut ledger, &mut metrics)
        .expect("unlimited search cannot exhaust budgets")
}

/// Exact diversified top-k with explicit configuration and budgets
/// (ablation AB4 toggles heap reuse here).
pub fn div_astar_configured(
    g: &DiversityGraph,
    k: usize,
    config: &AStarConfig,
    limits: &SearchLimits,
) -> Result<(SearchResult, SearchMetrics), SearchError> {
    let mut metrics = SearchMetrics::default();
    let mut ledger = limits.start();
    let result = div_astar_ledger(g, k, config, &mut ledger, &mut metrics)?;
    Ok((result, metrics))
}

/// Exact diversified top-k on `g` under resource budgets.
pub fn div_astar_limited(
    g: &DiversityGraph,
    k: usize,
    limits: &SearchLimits,
) -> Result<(SearchResult, SearchMetrics), SearchError> {
    let mut metrics = SearchMetrics::default();
    let mut ledger = limits.start();
    let result = div_astar_ledger(g, k, &AStarConfig::default(), &mut ledger, &mut metrics)?;
    Ok((result, metrics))
}

/// Core implementation with a shared ledger (so `div-dp`/`div-cut` budgets
/// span all inner calls) and accumulated metrics.
pub(crate) fn div_astar_ledger(
    g: &DiversityGraph,
    k: usize,
    config: &AStarConfig,
    ledger: &mut BudgetLedger,
    metrics: &mut SearchMetrics,
) -> Result<SearchResult, SearchError> {
    metrics.astar_calls += 1;
    let n = g.len();
    let mut result = SearchResult::empty(k);
    if n == 0 || k == 0 {
        return Ok(result);
    }
    // Solutions cannot exceed n nodes: rounds beyond n are no-ops.
    let k_cap = k.min(n);
    let mut scratch = Scratch::new(n);

    if config.reuse_heap {
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        push_root(g, &mut scratch, &mut heap, k_cap, ledger, metrics)?;
        for k_prime in (1..=k_cap).rev() {
            if k_prime < k_cap {
                rebound_heap(g, &mut scratch, &mut heap, k_prime);
            }
            astar_search(
                g,
                &mut scratch,
                &mut heap,
                &mut result,
                k_prime,
                ledger,
                metrics,
            )?;
        }
    } else {
        // Ablation AB4: fresh search per k'.
        for k_prime in (1..=k_cap).rev() {
            let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
            push_root(g, &mut scratch, &mut heap, k_prime, ledger, metrics)?;
            astar_search(
                g,
                &mut scratch,
                &mut heap,
                &mut result,
                k_prime,
                ledger,
                metrics,
            )?;
        }
    }
    Ok(result)
}

fn push_root(
    g: &DiversityGraph,
    scratch: &mut Scratch,
    heap: &mut BinaryHeap<Entry>,
    k_prime: usize,
    ledger: &mut BudgetLedger,
    metrics: &mut SearchMetrics,
) -> Result<(), SearchError> {
    let mut root = Entry {
        bound: Score::ZERO,
        score: Score::ZERO,
        first_untried: 0,
        solution: Vec::new(),
    };
    root.bound = astar_bound(g, scratch, &root, k_prime);
    ledger.add_bytes(root.heap_bytes())?;
    metrics.pushes += 1;
    heap.push(root);
    Ok(())
}

/// Recomputes every surviving entry's bound for the next round's `k'`
/// (Algorithm 4 lines 5–7) and rebuilds the heap.
fn rebound_heap(
    g: &DiversityGraph,
    scratch: &mut Scratch,
    heap: &mut BinaryHeap<Entry>,
    k_prime: usize,
) {
    let mut entries = std::mem::take(heap).into_vec();
    for e in &mut entries {
        e.bound = astar_bound(g, scratch, e, k_prime);
    }
    *heap = BinaryHeap::from(entries);
}

/// `astar-search(G, H, D, k')` (Algorithm 4 lines 9–17).
#[allow(clippy::too_many_arguments)]
fn astar_search(
    g: &DiversityGraph,
    scratch: &mut Scratch,
    heap: &mut BinaryHeap<Entry>,
    result: &mut SearchResult,
    k_prime: usize,
    ledger: &mut BudgetLedger,
    metrics: &mut SearchMetrics,
) -> Result<(), SearchError> {
    let n = g.len() as NodeId;
    loop {
        // Stop when the frontier cannot beat the incumbent for sizes ≤ k'.
        let incumbent = result.prefix_best_score(k_prime);
        match heap.peek() {
            None => return Ok(()),
            Some(top) if top.bound <= incumbent => return Ok(()),
            Some(_) => {}
        }
        let e = heap.pop().expect("peeked entry");
        ledger.release_bytes(e.heap_bytes());
        ledger.record_expansion()?;
        metrics.expansions += 1;

        if e.solution.len() >= k_prime {
            continue;
        }
        scratch.mark_solution(g, &e.solution);
        for v in e.first_untried..n {
            if scratch.excluded(v) {
                continue; // adjacent to the current solution
            }
            // Child solution e' = e.solution ∪ {v}.
            let mut child_solution = Vec::with_capacity(e.solution.len() + 1);
            child_solution.extend_from_slice(&e.solution);
            child_solution.push(v);
            let child_score = e.score + g.score(v);
            scratch.mark_candidate(g, v);
            let child_bound = bound_from_marks(
                g,
                scratch,
                true,
                child_solution.len(),
                child_score,
                v + 1,
                k_prime,
            );
            // Line 17: a child with j elements is itself a candidate D_j.
            result.offer(child_solution.clone(), child_score);
            // Push every extensible child (Algorithm 4 line 16). Children
            // whose bound trails the incumbent must NOT be dropped here:
            // later rounds run with smaller k' and a *lower* incumbent, so a
            // child useless now can still seed the optimum for a smaller
            // size (the heap is reused across rounds, Lemma 6). Children at
            // size k' can never extend in this or any later round.
            if child_solution.len() < k_prime {
                let child = Entry {
                    bound: child_bound,
                    score: child_score,
                    first_untried: v + 1,
                    solution: child_solution,
                };
                ledger.add_bytes(child.heap_bytes())?;
                metrics.pushes += 1;
                heap.push(child);
                ledger.check_heap(heap.len())?;
                metrics.peak_heap = metrics.peak_heap.max(heap.len());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use crate::testgen;

    fn s(v: u32) -> Score {
        Score::from(v)
    }

    /// Checks the prefix-max contract of `got` against the point-wise-exact
    /// oracle `want` on `g`.
    fn assert_prefix_max_matches(g: &DiversityGraph, got: &SearchResult, want: &SearchResult) {
        got.assert_well_formed(Some(g));
        for i in 0..=got.k() {
            assert_eq!(
                got.prefix_best_score(i),
                want.prefix_best_score(i),
                "prefix-max mismatch at size {i}"
            );
        }
    }

    #[test]
    fn fig1_example2_walkthrough() {
        // Example 2: k = 3 on Fig. 1 → D3 = {v3, v4, v5} score 20;
        // then k = 2 → best score 18 ({v1, v2}).
        let g = DiversityGraph::paper_fig1();
        let r = div_astar(&g, 3);
        assert_eq!(r.best().score(), s(20));
        assert_eq!(r.best().nodes(), &[2, 3, 4]);
        assert_eq!(r.prefix_best_score(2), s(18));
        assert_eq!(r.prefix_best_score(1), s(10));
        r.assert_well_formed(Some(&g));
    }

    #[test]
    fn fig4_initial_bounds() {
        // Example 2's bound values for singleton entries at k' = 3:
        // {v1}: 19, {v2}: 9, {v3}: 20, {v4}: 13, {v5}: 6, {v6}: 1.
        let g = DiversityGraph::paper_fig1();
        let mut scratch = Scratch::new(g.len());
        let expected = [19u32, 9, 20, 13, 6, 1];
        for (v, &want) in expected.iter().enumerate() {
            let e = Entry {
                bound: Score::ZERO,
                score: g.score(v as NodeId),
                first_untried: v as NodeId + 1,
                solution: vec![v as NodeId],
            };
            assert_eq!(
                astar_bound(&g, &mut scratch, &e, 3),
                s(want),
                "bound of {{v{}}}",
                v + 1
            );
        }
    }

    #[test]
    fn fig5_rebound_for_k2() {
        // When k' drops to 2, {v1}'s bound becomes 18 (Fig. 5).
        let g = DiversityGraph::paper_fig1();
        let mut scratch = Scratch::new(g.len());
        let e = Entry {
            bound: Score::ZERO,
            score: s(10),
            first_untried: 1,
            solution: vec![0],
        };
        assert_eq!(astar_bound(&g, &mut scratch, &e, 2), s(18));
    }

    #[test]
    fn empty_graph_and_k_zero() {
        let g = DiversityGraph::from_sorted_scores(vec![], &[]);
        assert_eq!(div_astar(&g, 5).best().len(), 0);
        let g = DiversityGraph::paper_fig1();
        assert_eq!(div_astar(&g, 0).best().len(), 0);
    }

    #[test]
    fn matches_exhaustive_on_random_graphs() {
        for seed in 0..40 {
            let g = testgen::random_graph(12, 0.3, seed);
            for k in [1, 2, 4, 8, 12] {
                let got = div_astar(&g, k);
                let want = exhaustive(&g, k);
                assert_prefix_max_matches(&g, &got, &want);
            }
        }
    }

    #[test]
    fn matches_exhaustive_on_dense_graphs() {
        for seed in 100..110 {
            let g = testgen::random_graph(14, 0.7, seed);
            let got = div_astar(&g, 6);
            let want = exhaustive(&g, 6);
            assert_prefix_max_matches(&g, &got, &want);
        }
    }

    #[test]
    fn no_reuse_ablation_matches() {
        let config = AStarConfig { reuse_heap: false };
        for seed in 0..10 {
            let g = testgen::random_graph(10, 0.4, seed);
            let mut m1 = SearchMetrics::default();
            let mut l1 = SearchLimits::unlimited().start();
            let got = div_astar_ledger(&g, 5, &config, &mut l1, &mut m1).unwrap();
            let want = exhaustive(&g, 5);
            assert_prefix_max_matches(&g, &got, &want);
        }
    }

    #[test]
    fn expansion_budget_aborts() {
        let g = testgen::random_graph(30, 0.1, 7);
        let limits = SearchLimits {
            max_expansions: Some(3),
            ..SearchLimits::default()
        };
        let err = div_astar_limited(&g, 10, &limits).unwrap_err();
        assert!(matches!(err, SearchError::ResourceExhausted(_)));
    }

    #[test]
    fn byte_budget_aborts_on_star_chain() {
        let g = testgen::star_chain(100);
        let limits = SearchLimits::with_max_bytes(512);
        let err = div_astar_limited(&g, 50, &limits).unwrap_err();
        assert!(matches!(err, SearchError::ResourceExhausted(_)));
    }

    #[test]
    fn metrics_are_populated() {
        let g = DiversityGraph::paper_fig1();
        let (r, m) = div_astar_limited(&g, 3, &SearchLimits::unlimited()).unwrap();
        assert_eq!(r.best().score(), s(20));
        assert!(m.expansions > 0);
        assert!(m.pushes > m.expansions / 2);
        assert_eq!(m.astar_calls, 1);
        assert!(m.peak_heap > 0);
    }
}
