//! `div-astar` — the A\*-based exact search (Algorithm 4, §5).
//!
//! Partial solutions live in a max-heap ranked by an admissible upper bound
//! (`astar-bound`): the best score any extension of the partial solution
//! (using only nodes at later positions, up to `k'` total) could reach.
//! Because node ids are sorted by non-increasing score, the bound simply
//! greedily sums the best *compatible* later nodes.
//!
//! One heap is **reused** across the per-size rounds `k' = k, k-1, …, 1`
//! (Lemma 6): after the round for `k'`, every surviving entry's bound is
//! recomputed for `k' − 1` and the heap is rebuilt, instead of restarting
//! the search from scratch. After the round for `k'`, the table's prefix
//! maximum at `k'` is exact (see `solution.rs` docs for why prefix-max is
//! the right contract).
//!
//! ## The bitset kernel (DESIGN.md §7)
//!
//! The search's inner loops are compatibility tests: "which nodes after
//! `e.pos` are independent of the partial solution `S`?" With the default
//! [`KernelMode::Auto`] these run on dense `u64` bitsets — the exclusion
//! set of `S` is the word-level OR of the graph's precomputed adjacency
//! bitmap rows, candidate enumeration skips excluded nodes a word (64 ids)
//! at a time, and bounding a child `S ∪ {v}` needs no marking at all: the
//! child's exclusion set is just `excl | adjacency_row(v)`, evaluated on
//! the fly. Partial solutions themselves are parent-linked entries in an
//! append-only arena (8 bytes per push), so the expansion loop's steady
//! state performs **zero allocations**: no per-child `Vec`, no per-offer
//! clone (`offer_extended` copies only on improvement), only amortized
//! arena/heap growth. [`KernelMode::Sparse`] keeps the pre-kernel
//! epoch-stamp implementation alive for the AB5 ablation and for graphs
//! too large to carry an adjacency bitmap.

use crate::error::SearchError;
use crate::graph::{DiversityGraph, NodeId};
use crate::limits::{BudgetLedger, SearchLimits};
use crate::metrics::SearchMetrics;
use crate::score::Score;
use crate::solution::SearchResult;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Minimal word buffer for the kernel's exclusion sets: the same layout as
/// [`DenseNodeSet`](crate::nodeset::DenseNodeSet) (bit `v % 64` of word
/// `v / 64`), without the cardinality bookkeeping — the search only ever
/// scans words, and maintaining `len` would cost a popcount per word on
/// every row OR of the hottest loop.
#[derive(Debug)]
struct WordBuf {
    words: Vec<u64>,
}

impl WordBuf {
    fn new(capacity: usize) -> WordBuf {
        WordBuf {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    fn clear(&mut self) {
        self.words.fill(0);
    }

    #[inline]
    fn insert(&mut self, v: NodeId) {
        self.words[(v / 64) as usize] |= 1u64 << (v % 64);
    }

    #[inline]
    fn or_row(&mut self, row: &[u64]) {
        debug_assert_eq!(self.words.len(), row.len(), "universe mismatch");
        for (w, &r) in self.words.iter_mut().zip(row) {
            *w |= r;
        }
    }

    #[inline]
    fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Sentinel arena index for the empty solution.
const NIL: u32 = u32::MAX;

/// One parent link in the solution arena: `(node, parent index)`.
type Link = (NodeId, u32);

/// Heap-entry bytes charged to the ledger while an entry is in the heap.
const ENTRY_BYTES: usize = std::mem::size_of::<Entry>();
/// Arena bytes charged per pushed child (released when the search ends).
const LINK_BYTES: usize = std::mem::size_of::<Link>();

/// Append-only arena of parent-linked partial solutions.
///
/// A heap entry stores only the index of its last link; the full node set
/// is the chain up to [`NIL`]. Pushing a child is one 8-byte append —
/// no per-entry `Vec`, no teardown cost when entries are popped.
#[derive(Debug, Default)]
struct SolutionArena {
    links: Vec<Link>,
}

impl SolutionArena {
    fn push(&mut self, node: NodeId, parent: u32) -> u32 {
        let idx = self.links.len() as u32;
        self.links.push((node, parent));
        idx
    }

    fn len(&self) -> usize {
        self.links.len()
    }

    /// Drops all links, keeping the allocation. Only valid when no live
    /// heap entry references the arena (e.g. between AB4's fresh rounds).
    fn clear(&mut self) {
        self.links.clear();
    }

    /// Materializes the chain ending at `tail` into `out`, ascending (nodes
    /// are appended in increasing id order, so the chain walks descending).
    fn materialize(&self, mut tail: u32, out: &mut Vec<NodeId>) {
        out.clear();
        while tail != NIL {
            let (node, parent) = self.links[tail as usize];
            out.push(node);
            tail = parent;
        }
        out.reverse();
    }
}

/// A partial solution in the A\* frontier.
///
/// `first_untried` is `e.pos + 1` in the paper's notation: the smallest node
/// id not yet considered for extension (all solution members have smaller
/// ids). `tail` is the solution's last link in the arena ([`NIL`] = empty).
#[derive(Debug, Clone, Copy)]
struct Entry {
    bound: Score,
    score: Score,
    first_untried: NodeId,
    len: u32,
    tail: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by bound; ties broken by realized score (prefer more
        // complete solutions), then by position for determinism.
        self.bound
            .cmp(&other.bound)
            .then(self.score.cmp(&other.score))
            .then(other.first_untried.cmp(&self.first_untried))
    }
}

/// Which independence-check kernel `div-astar` runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Dense bitset kernel when the graph carries an adjacency bitmap
    /// (see [`crate::graph::DENSE_ADJ_MAX_NODES`]), stamp kernel otherwise.
    #[default]
    Auto,
    /// Force the dense bitset kernel. On graphs without an adjacency
    /// bitmap, candidate rows are built on the fly (correct, but the
    /// per-candidate clear costs O(n/64); prefer `Auto`).
    Dense,
    /// Force the pre-kernel epoch-stamp implementation — the sorted-vec
    /// baseline kept runnable for the AB5 ablation (DESIGN.md §6/§7).
    Sparse,
}

/// Kernel-specific exclusion state. Allocated once per search, reused
/// across every expansion.
#[derive(Debug)]
enum KernelScratch {
    Dense {
        /// Nodes adjacent to the current popped solution (bitset).
        excl: WordBuf,
        /// Fallback candidate row, used only when the graph has no
        /// adjacency bitmap.
        cand: WordBuf,
    },
    Sparse {
        /// Stamped with `epoch` for nodes adjacent to the popped solution.
        excl: Vec<u32>,
        /// Stamped with `cand_epoch` for nodes adjacent to the candidate.
        cand: Vec<u32>,
        epoch: u32,
        cand_epoch: u32,
    },
}

/// Reusable per-search state: kernel scratch, the solution arena, and the
/// materialization buffer. Nothing here is allocated per expansion.
#[derive(Debug)]
struct Scratch {
    kernel: KernelScratch,
    arena: SolutionArena,
    /// The popped entry's solution, materialized ascending.
    sol_buf: Vec<NodeId>,
}

impl Scratch {
    fn new(g: &DiversityGraph, mode: KernelMode) -> Scratch {
        let n = g.len();
        let dense = match mode {
            KernelMode::Auto => g.has_adjacency_bitmap(),
            KernelMode::Dense => true,
            KernelMode::Sparse => false,
        };
        let kernel = if dense {
            KernelScratch::Dense {
                excl: WordBuf::new(n),
                cand: WordBuf::new(n),
            }
        } else {
            KernelScratch::Sparse {
                excl: vec![0; n],
                cand: vec![0; n],
                epoch: 0,
                cand_epoch: 0,
            }
        };
        Scratch {
            kernel,
            arena: SolutionArena::default(),
            sol_buf: Vec::new(),
        }
    }

    /// Materializes `tail`'s solution into `sol_buf` and marks everything
    /// adjacent to it as excluded.
    fn mark_solution(&mut self, g: &DiversityGraph, tail: u32) {
        self.arena.materialize(tail, &mut self.sol_buf);
        match &mut self.kernel {
            KernelScratch::Dense { excl, .. } => {
                excl.clear();
                for &v in &self.sol_buf {
                    if let Some(row) = g.adjacency_row(v) {
                        excl.or_row(row);
                    } else {
                        for &nb in g.neighbors(v) {
                            excl.insert(nb);
                        }
                    }
                }
            }
            KernelScratch::Sparse { excl, epoch, .. } => {
                *epoch += 1;
                for &v in &self.sol_buf {
                    for &nb in g.neighbors(v) {
                        excl[nb as usize] = *epoch;
                    }
                }
            }
        }
    }

    /// Smallest node `≥ from` compatible with the marked solution, or
    /// `None`. The dense kernel skips excluded nodes 64 ids at a time.
    fn next_free(&self, g: &DiversityGraph, from: NodeId) -> Option<NodeId> {
        let n = g.len() as NodeId;
        match &self.kernel {
            KernelScratch::Dense { excl, .. } => next_zero_bit(excl.words(), None, from, n),
            KernelScratch::Sparse { excl, epoch, .. } => {
                (from..n).find(|&v| excl[v as usize] != *epoch)
            }
        }
    }

    /// `astar-bound` for the child `solution ∪ {v}` (Algorithm 4 lines
    /// 18–26), assuming the parent solution is already marked. The dense
    /// kernel evaluates `excl | adjacency_row(v)` on the fly — no marking.
    fn child_bound(
        &mut self,
        g: &DiversityGraph,
        v: NodeId,
        size: usize,
        base_score: Score,
        k_prime: usize,
    ) -> Score {
        match &mut self.kernel {
            KernelScratch::Dense { excl, cand } => {
                let row: &[u64] = match g.adjacency_row(v) {
                    Some(row) => row,
                    None => {
                        cand.clear();
                        for &nb in g.neighbors(v) {
                            cand.insert(nb);
                        }
                        cand.words()
                    }
                };
                bound_zero_scan(g, excl.words(), Some(row), size, base_score, v + 1, k_prime)
            }
            KernelScratch::Sparse {
                excl,
                cand,
                epoch,
                cand_epoch,
            } => {
                *cand_epoch += 1;
                for &nb in g.neighbors(v) {
                    cand[nb as usize] = *cand_epoch;
                }
                let n = g.len() as NodeId;
                let mut bound = base_score;
                let mut size = size;
                let mut i = v + 1;
                while size < k_prime && i < n {
                    if excl[i as usize] != *epoch && cand[i as usize] != *cand_epoch {
                        bound += g.score(i);
                        size += 1;
                    }
                    i += 1;
                }
                bound
            }
        }
    }

    /// Standalone `astar-bound` for one entry (used for the root and when
    /// re-bounding the heap between rounds). Marks the entry's exclusions
    /// itself.
    fn solution_bound(&mut self, g: &DiversityGraph, e: &Entry, k_prime: usize) -> Score {
        self.mark_solution(g, e.tail);
        match &self.kernel {
            KernelScratch::Dense { excl, .. } => bound_zero_scan(
                g,
                excl.words(),
                None,
                e.len as usize,
                e.score,
                e.first_untried,
                k_prime,
            ),
            KernelScratch::Sparse { excl, epoch, .. } => {
                let n = g.len() as NodeId;
                let mut bound = e.score;
                let mut size = e.len as usize;
                let mut i = e.first_untried;
                while size < k_prime && i < n {
                    if excl[i as usize] != *epoch {
                        bound += g.score(i);
                        size += 1;
                    }
                    i += 1;
                }
                bound
            }
        }
    }
}

/// Smallest id `≥ from` whose bit is clear in `a | b` (b optional), or
/// `None`. Scans whole zero words with one test each.
fn next_zero_bit(a: &[u64], b: Option<&[u64]>, from: NodeId, n: NodeId) -> Option<NodeId> {
    if from >= n {
        return None;
    }
    let combined = |wi: usize| a[wi] | b.map_or(0, |b| b[wi]);
    let mut wi = (from / 64) as usize;
    let mut free = !combined(wi) & (!0u64 << (from % 64));
    loop {
        if free != 0 {
            let v = wi as u32 * 64 + free.trailing_zeros();
            // Bits at or past `n` are universe padding, not nodes; no
            // later word can hold a valid id either.
            return (v < n).then_some(v);
        }
        wi += 1;
        if wi >= a.len() {
            return None;
        }
        free = !combined(wi);
    }
}

/// Greedy bound accumulation over the zero bits of `a | b`, starting at
/// `first` with `size` nodes and `bound` score already committed.
fn bound_zero_scan(
    g: &DiversityGraph,
    a: &[u64],
    b: Option<&[u64]>,
    mut size: usize,
    mut bound: Score,
    first: NodeId,
    k_prime: usize,
) -> Score {
    let n = g.len() as NodeId;
    let mut i = first;
    while size < k_prime {
        match next_zero_bit(a, b, i, n) {
            Some(v) => {
                bound += g.score(v);
                size += 1;
                i = v + 1;
            }
            None => break,
        }
    }
    bound
}

/// Configuration knobs for `div-astar` (ablations; defaults match the paper
/// plus the bitset kernel).
#[derive(Debug, Clone, PartialEq)]
pub struct AStarConfig {
    /// Reuse the heap across `k'` rounds (Lemma 6). Disabling restarts the
    /// search from scratch for every `k'` — ablation AB4.
    pub reuse_heap: bool,
    /// Independence-check kernel — ablation AB5 forces [`KernelMode::Sparse`].
    pub kernel: KernelMode,
}

impl AStarConfig {
    /// The paper's configuration: heap reuse on, kernel auto-selected.
    pub fn new() -> AStarConfig {
        AStarConfig {
            reuse_heap: true,
            kernel: KernelMode::Auto,
        }
    }
}

impl Default for AStarConfig {
    fn default() -> AStarConfig {
        AStarConfig::new()
    }
}

/// Exact diversified top-k on `g` with default config and no limits.
///
/// Infallible (no budgets); worst-case exponential time — prefer
/// [`div_astar_limited`] on untrusted inputs or use `div-dp`/`div-cut`.
pub fn div_astar(g: &DiversityGraph, k: usize) -> SearchResult {
    let mut metrics = SearchMetrics::default();
    let mut ledger = SearchLimits::unlimited().start();
    div_astar_ledger(g, k, &AStarConfig::new(), &mut ledger, &mut metrics)
        .expect("unlimited search cannot exhaust budgets")
}

/// Exact diversified top-k with explicit configuration and budgets
/// (ablation AB4 toggles heap reuse here, AB5 the kernel).
pub fn div_astar_configured(
    g: &DiversityGraph,
    k: usize,
    config: &AStarConfig,
    limits: &SearchLimits,
) -> Result<(SearchResult, SearchMetrics), SearchError> {
    let mut metrics = SearchMetrics::default();
    let mut ledger = limits.start();
    let result = div_astar_ledger(g, k, config, &mut ledger, &mut metrics)?;
    Ok((result, metrics))
}

/// Exact diversified top-k on `g` under resource budgets.
pub fn div_astar_limited(
    g: &DiversityGraph,
    k: usize,
    limits: &SearchLimits,
) -> Result<(SearchResult, SearchMetrics), SearchError> {
    let mut metrics = SearchMetrics::default();
    let mut ledger = limits.start();
    let result = div_astar_ledger(g, k, &AStarConfig::new(), &mut ledger, &mut metrics)?;
    Ok((result, metrics))
}

/// Core implementation with a shared ledger (so `div-dp`/`div-cut` budgets
/// span all inner calls) and accumulated metrics.
pub(crate) fn div_astar_ledger(
    g: &DiversityGraph,
    k: usize,
    config: &AStarConfig,
    ledger: &mut BudgetLedger,
    metrics: &mut SearchMetrics,
) -> Result<SearchResult, SearchError> {
    metrics.astar_calls += 1;
    let n = g.len();
    let mut result = SearchResult::empty(k);
    if n == 0 || k == 0 {
        return Ok(result);
    }
    // Solutions cannot exceed n nodes: rounds beyond n are no-ops.
    let k_cap = k.min(n);
    let mut scratch = Scratch::new(g, config.kernel);

    if config.reuse_heap {
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        push_root(g, &mut scratch, &mut heap, k_cap, ledger, metrics)?;
        for k_prime in (1..=k_cap).rev() {
            if k_prime < k_cap {
                rebound_heap(g, &mut scratch, &mut heap, k_prime);
            }
            astar_search(
                g,
                &mut scratch,
                &mut heap,
                &mut result,
                k_prime,
                ledger,
                metrics,
            )?;
        }
        ledger.release_bytes(heap.len() * ENTRY_BYTES);
    } else {
        // Ablation AB4: fresh search per k'.
        for k_prime in (1..=k_cap).rev() {
            // Each round rebuilds its heap from scratch, so no entry can
            // reference earlier rounds' links: reclaim them instead of
            // letting dead chains accumulate against the byte budget.
            ledger.release_bytes(scratch.arena.len() * LINK_BYTES);
            scratch.arena.clear();
            let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
            push_root(g, &mut scratch, &mut heap, k_prime, ledger, metrics)?;
            astar_search(
                g,
                &mut scratch,
                &mut heap,
                &mut result,
                k_prime,
                ledger,
                metrics,
            )?;
            ledger.release_bytes(heap.len() * ENTRY_BYTES);
        }
    }
    // The arena (and with it every surviving solution chain) dies here.
    ledger.release_bytes(scratch.arena.len() * LINK_BYTES);
    Ok(result)
}

fn push_root(
    g: &DiversityGraph,
    scratch: &mut Scratch,
    heap: &mut BinaryHeap<Entry>,
    k_prime: usize,
    ledger: &mut BudgetLedger,
    metrics: &mut SearchMetrics,
) -> Result<(), SearchError> {
    let mut root = Entry {
        bound: Score::ZERO,
        score: Score::ZERO,
        first_untried: 0,
        len: 0,
        tail: NIL,
    };
    root.bound = scratch.solution_bound(g, &root, k_prime);
    ledger.add_bytes(ENTRY_BYTES)?;
    metrics.pushes += 1;
    heap.push(root);
    Ok(())
}

/// Recomputes every surviving entry's bound for the next round's `k'`
/// (Algorithm 4 lines 5–7) and rebuilds the heap.
fn rebound_heap(
    g: &DiversityGraph,
    scratch: &mut Scratch,
    heap: &mut BinaryHeap<Entry>,
    k_prime: usize,
) {
    let mut entries = std::mem::take(heap).into_vec();
    for e in &mut entries {
        e.bound = scratch.solution_bound(g, e, k_prime);
    }
    *heap = BinaryHeap::from(entries);
}

/// `astar-search(G, H, D, k')` (Algorithm 4 lines 9–17).
#[allow(clippy::too_many_arguments)]
fn astar_search(
    g: &DiversityGraph,
    scratch: &mut Scratch,
    heap: &mut BinaryHeap<Entry>,
    result: &mut SearchResult,
    k_prime: usize,
    ledger: &mut BudgetLedger,
    metrics: &mut SearchMetrics,
) -> Result<(), SearchError> {
    loop {
        // Stop when the frontier cannot beat the incumbent for sizes ≤ k'.
        let incumbent = result.prefix_best_score(k_prime);
        match heap.peek() {
            None => return Ok(()),
            Some(top) if top.bound <= incumbent => return Ok(()),
            Some(_) => {}
        }
        let e = heap.pop().expect("peeked entry");
        ledger.release_bytes(ENTRY_BYTES);
        ledger.record_expansion()?;
        metrics.expansions += 1;

        if e.len as usize >= k_prime {
            continue;
        }
        scratch.mark_solution(g, e.tail);
        let mut from = e.first_untried;
        while let Some(v) = scratch.next_free(g, from) {
            from = v + 1;
            // Child solution e' = e.solution ∪ {v}.
            let child_len = e.len as usize + 1;
            let child_score = e.score + g.score(v);
            let child_bound = scratch.child_bound(g, v, child_len, child_score, k_prime);
            // Line 17: a child with j elements is itself a candidate D_j.
            result.offer_extended(&scratch.sol_buf, v, child_score);
            // Push every extensible child (Algorithm 4 line 16). Children
            // whose bound trails the incumbent must NOT be dropped here:
            // later rounds run with smaller k' and a *lower* incumbent, so a
            // child useless now can still seed the optimum for a smaller
            // size (the heap is reused across rounds, Lemma 6). Children at
            // size k' can never extend in this or any later round.
            if child_len < k_prime {
                let tail = scratch.arena.push(v, e.tail);
                ledger.add_bytes(ENTRY_BYTES + LINK_BYTES)?;
                metrics.pushes += 1;
                heap.push(Entry {
                    bound: child_bound,
                    score: child_score,
                    first_untried: v + 1,
                    len: child_len as u32,
                    tail,
                });
                ledger.check_heap(heap.len())?;
                metrics.peak_heap = metrics.peak_heap.max(heap.len());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use crate::nodeset::DenseNodeSet;
    use crate::testgen;

    fn s(v: u32) -> Score {
        Score::from(v)
    }

    const ALL_KERNELS: [KernelMode; 3] = [KernelMode::Auto, KernelMode::Dense, KernelMode::Sparse];

    /// Checks the prefix-max contract of `got` against the point-wise-exact
    /// oracle `want` on `g`.
    fn assert_prefix_max_matches(g: &DiversityGraph, got: &SearchResult, want: &SearchResult) {
        got.assert_well_formed(Some(g));
        for i in 0..=got.k() {
            assert_eq!(
                got.prefix_best_score(i),
                want.prefix_best_score(i),
                "prefix-max mismatch at size {i}"
            );
        }
    }

    /// Builds a singleton entry `{v}` in `scratch`'s arena.
    fn singleton_entry(scratch: &mut Scratch, g: &DiversityGraph, v: NodeId) -> Entry {
        let tail = scratch.arena.push(v, NIL);
        Entry {
            bound: Score::ZERO,
            score: g.score(v),
            first_untried: v + 1,
            len: 1,
            tail,
        }
    }

    #[test]
    fn fig1_example2_walkthrough() {
        // Example 2: k = 3 on Fig. 1 → D3 = {v3, v4, v5} score 20;
        // then k = 2 → best score 18 ({v1, v2}).
        let g = DiversityGraph::paper_fig1();
        let r = div_astar(&g, 3);
        assert_eq!(r.best().score(), s(20));
        assert_eq!(r.best().nodes(), &[2, 3, 4]);
        assert_eq!(r.prefix_best_score(2), s(18));
        assert_eq!(r.prefix_best_score(1), s(10));
        r.assert_well_formed(Some(&g));
    }

    #[test]
    fn fig4_initial_bounds_on_every_kernel() {
        // Example 2's bound values for singleton entries at k' = 3:
        // {v1}: 19, {v2}: 9, {v3}: 20, {v4}: 13, {v5}: 6, {v6}: 1.
        let g = DiversityGraph::paper_fig1();
        let expected = [19u32, 9, 20, 13, 6, 1];
        for mode in ALL_KERNELS {
            let mut scratch = Scratch::new(&g, mode);
            for (v, &want) in expected.iter().enumerate() {
                let e = singleton_entry(&mut scratch, &g, v as NodeId);
                assert_eq!(
                    scratch.solution_bound(&g, &e, 3),
                    s(want),
                    "bound of {{v{}}} under {mode:?}",
                    v + 1
                );
            }
        }
    }

    #[test]
    fn fig5_rebound_for_k2() {
        // When k' drops to 2, {v1}'s bound becomes 18 (Fig. 5).
        let g = DiversityGraph::paper_fig1();
        for mode in ALL_KERNELS {
            let mut scratch = Scratch::new(&g, mode);
            let e = singleton_entry(&mut scratch, &g, 0);
            assert_eq!(scratch.solution_bound(&g, &e, 2), s(18), "{mode:?}");
        }
    }

    #[test]
    fn child_bound_matches_standalone_bound() {
        // Bounding e ∪ {v} via `child_bound` must agree with building the
        // child entry and re-bounding it from scratch, on every kernel.
        for seed in 0..10 {
            let g = testgen::random_graph(40, 0.3, 500 + seed);
            for mode in ALL_KERNELS {
                let mut scratch = Scratch::new(&g, mode);
                let root = Entry {
                    bound: Score::ZERO,
                    score: Score::ZERO,
                    first_untried: 0,
                    len: 0,
                    tail: NIL,
                };
                scratch.mark_solution(&g, root.tail);
                for v in 0..6u32 {
                    let via_child = scratch.child_bound(&g, v, 1, g.score(v), 4);
                    let mut fresh = Scratch::new(&g, mode);
                    let child = singleton_entry(&mut fresh, &g, v);
                    let standalone = fresh.solution_bound(&g, &child, 4);
                    assert_eq!(via_child, standalone, "seed {seed} v {v} {mode:?}");
                    // `child_bound` must not disturb the parent's marks.
                    scratch.mark_solution(&g, root.tail);
                }
            }
        }
    }

    #[test]
    fn next_zero_bit_scans_words() {
        // 130-bit universe, everything excluded except 3, 64 and 129.
        let mut excl = DenseNodeSet::new(130);
        for v in 0..130u32 {
            excl.insert(v);
        }
        for v in [3u32, 64, 129] {
            excl.remove(v);
        }
        assert_eq!(next_zero_bit(excl.words(), None, 0, 130), Some(3));
        assert_eq!(next_zero_bit(excl.words(), None, 4, 130), Some(64));
        assert_eq!(next_zero_bit(excl.words(), None, 65, 130), Some(129));
        assert_eq!(next_zero_bit(excl.words(), None, 130, 130), None);
        // Padding bits past n are never reported as free.
        excl.insert(129);
        assert_eq!(next_zero_bit(excl.words(), None, 65, 130), None);
    }

    #[test]
    fn empty_graph_and_k_zero() {
        let g = DiversityGraph::from_sorted_scores(vec![], &[]);
        assert_eq!(div_astar(&g, 5).best().len(), 0);
        let g = DiversityGraph::paper_fig1();
        assert_eq!(div_astar(&g, 0).best().len(), 0);
    }

    #[test]
    fn matches_exhaustive_on_random_graphs() {
        for seed in 0..40 {
            let g = testgen::random_graph(12, 0.3, seed);
            for k in [1, 2, 4, 8, 12] {
                let got = div_astar(&g, k);
                let want = exhaustive(&g, k);
                assert_prefix_max_matches(&g, &got, &want);
            }
        }
    }

    #[test]
    fn matches_exhaustive_on_dense_graphs() {
        for seed in 100..110 {
            let g = testgen::random_graph(14, 0.7, seed);
            let got = div_astar(&g, 6);
            let want = exhaustive(&g, 6);
            assert_prefix_max_matches(&g, &got, &want);
        }
    }

    #[test]
    fn every_kernel_matches_exhaustive() {
        for seed in 200..215 {
            let g = testgen::random_graph(13, 0.35, seed);
            let want = exhaustive(&g, 6);
            for mode in ALL_KERNELS {
                let config = AStarConfig {
                    kernel: mode,
                    ..AStarConfig::new()
                };
                let (got, _) =
                    div_astar_configured(&g, 6, &config, &SearchLimits::unlimited()).unwrap();
                assert_prefix_max_matches(&g, &got, &want);
            }
        }
    }

    #[test]
    fn dense_kernel_without_bitmap_matches() {
        // Forcing the bitset kernel on a stripped graph exercises the
        // build-candidate-row-on-the-fly fallback.
        for seed in 300..310 {
            let mut g = testgen::random_graph(12, 0.4, seed);
            g.strip_adjacency_bitmap();
            let want = exhaustive(&g, 5);
            let config = AStarConfig {
                kernel: KernelMode::Dense,
                ..AStarConfig::new()
            };
            let (got, _) =
                div_astar_configured(&g, 5, &config, &SearchLimits::unlimited()).unwrap();
            assert_prefix_max_matches(&g, &got, &want);
        }
    }

    #[test]
    fn no_reuse_ablation_matches() {
        let config = AStarConfig {
            reuse_heap: false,
            ..AStarConfig::new()
        };
        for seed in 0..10 {
            let g = testgen::random_graph(10, 0.4, seed);
            let mut m1 = SearchMetrics::default();
            let mut l1 = SearchLimits::unlimited().start();
            let got = div_astar_ledger(&g, 5, &config, &mut l1, &mut m1).unwrap();
            let want = exhaustive(&g, 5);
            assert_prefix_max_matches(&g, &got, &want);
        }
    }

    #[test]
    fn expansion_budget_aborts() {
        let g = testgen::random_graph(30, 0.1, 7);
        let limits = SearchLimits {
            max_expansions: Some(3),
            ..SearchLimits::default()
        };
        let err = div_astar_limited(&g, 10, &limits).unwrap_err();
        assert!(matches!(err, SearchError::ResourceExhausted(_)));
    }

    #[test]
    fn byte_budget_aborts_on_star_chain() {
        let g = testgen::star_chain(100);
        let limits = SearchLimits::with_max_bytes(512);
        let err = div_astar_limited(&g, 50, &limits).unwrap_err();
        assert!(matches!(err, SearchError::ResourceExhausted(_)));
    }

    #[test]
    fn metrics_are_populated() {
        let g = DiversityGraph::paper_fig1();
        let (r, m) = div_astar_limited(&g, 3, &SearchLimits::unlimited()).unwrap();
        assert_eq!(r.best().score(), s(20));
        assert!(m.expansions > 0);
        assert!(m.pushes > m.expansions / 2);
        assert_eq!(m.astar_calls, 1);
        assert!(m.peak_heap > 0);
    }
}
