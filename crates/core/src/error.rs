//! Error types for diversified top-k search.

use std::fmt;

/// Why a search could not be completed.
///
/// (`PartialEq` only — [`SearchError::InvalidTau`] carries the rejected
/// `f64`, which has no total equality.)
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// A configured resource budget was exhausted before the exact answer
    /// was found. This is the library analogue of the paper's `INF` entries
    /// (runs that exhausted the 2 GB testbed memory).
    ResourceExhausted(ExhaustedResource),
    /// The requested `k` is invalid for this operation (e.g. `k == 0` where
    /// a non-empty result is required).
    InvalidK {
        /// The rejected `k` value as supplied by the caller.
        k: usize,
    },
    /// The requested similarity threshold is not a number in `[0, 1]`.
    /// Rejected at admission: a NaN or out-of-range `τ` silently corrupts
    /// every `sim(a, b) > τ` comparison downstream (NaN compares false, so
    /// *nothing* is ever similar and near-duplicates sail through).
    InvalidTau {
        /// The rejected `τ` value as supplied by the caller (may be NaN).
        tau: f64,
    },
    /// A query referenced a term id outside the index vocabulary.
    /// Rejected at admission — malformed client input must surface as a
    /// typed error, not an out-of-bounds panic inside a serving worker.
    UnknownTerm {
        /// The rejected term id.
        term: u32,
    },
    /// A diversification-mode parameter is out of range (λ outside
    /// `[0, 1]`, a zero window, …). Rejected at admission like
    /// [`SearchError::InvalidTau`]: a bad knob must be a typed error, not
    /// a silently degenerate ranking.
    InvalidMode {
        /// Which parameter was rejected and why (static description).
        detail: &'static str,
    },
}

/// Which budget from [`crate::limits::SearchLimits`] ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustedResource {
    /// The A* heap grew past `max_heap_entries`.
    HeapEntries,
    /// More than `max_expansions` partial solutions were expanded.
    Expansions,
    /// The wall-clock `deadline` passed.
    Deadline,
    /// Estimated working-set bytes exceeded `max_bytes`.
    Bytes,
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::ResourceExhausted(r) => {
                write!(f, "search aborted: resource budget exhausted ({r:?})")
            }
            SearchError::InvalidK { k } => write!(f, "invalid k: {k}"),
            SearchError::InvalidTau { tau } => {
                write!(
                    f,
                    "invalid similarity threshold τ: {tau} (must be in [0, 1])"
                )
            }
            SearchError::UnknownTerm { term } => {
                write!(f, "unknown term id: {term} (outside the index vocabulary)")
            }
            SearchError::InvalidMode { detail } => {
                write!(f, "invalid diversify mode: {detail}")
            }
        }
    }
}

impl std::error::Error for SearchError {}

/// Convenient result alias for search entry points.
pub type SearchOutcome<T> = Result<T, SearchError>;
