//! Error types for diversified top-k search.

use std::fmt;

/// Why a search could not be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// A configured resource budget was exhausted before the exact answer
    /// was found. This is the library analogue of the paper's `INF` entries
    /// (runs that exhausted the 2 GB testbed memory).
    ResourceExhausted(ExhaustedResource),
    /// The requested `k` is invalid for this operation (e.g. `k == 0` where
    /// a non-empty result is required).
    InvalidK {
        /// The rejected `k` value as supplied by the caller.
        k: usize,
    },
}

/// Which budget from [`crate::limits::SearchLimits`] ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustedResource {
    /// The A* heap grew past `max_heap_entries`.
    HeapEntries,
    /// More than `max_expansions` partial solutions were expanded.
    Expansions,
    /// The wall-clock `deadline` passed.
    Deadline,
    /// Estimated working-set bytes exceeded `max_bytes`.
    Bytes,
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::ResourceExhausted(r) => {
                write!(f, "search aborted: resource budget exhausted ({r:?})")
            }
            SearchError::InvalidK { k } => write!(f, "invalid k: {k}"),
        }
    }
}

impl std::error::Error for SearchError {}

/// Convenient result alias for search entry points.
pub type SearchOutcome<T> = Result<T, SearchError>;
