//! Lightweight counters describing what a search did, plus the small
//! dependency-free rank-quality helpers the quality harness is built on.
//!
//! The counters are used by the benchmark harness (ablations AB3/AB4 in
//! DESIGN.md) and by the framework to expose how much work the early-stop
//! conditions saved. The rank helpers (DCG/NDCG, reciprocal rank, label
//! concentration) live here rather than in the bench crate so they stay
//! testable against hand-computed fixtures without pulling in a corpus.

/// Counters for a single `div-search-current` invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchMetrics {
    /// Heap pops across all A* rounds (all components / cptree nodes).
    pub expansions: u64,
    /// Entries pushed into A* heaps.
    pub pushes: u64,
    /// Largest heap size observed.
    pub peak_heap: usize,
    /// Number of `div-astar` invocations (1 for plain astar; one per
    /// component for `div-dp`; one per searched subgraph for `div-cut`).
    pub astar_calls: u64,
    /// Nodes removed by Lemma 7 compression (div-cut only).
    pub compressed_nodes: u64,
    /// cptree nodes searched (div-cut only).
    pub cptree_nodes: u64,
    /// `⊕` operator applications.
    pub plus_ops: u64,
    /// `⊗` operator applications.
    pub otimes_ops: u64,
}

impl SearchMetrics {
    /// Merges counters from a sub-search into this one.
    pub fn absorb(&mut self, other: &SearchMetrics) {
        self.expansions += other.expansions;
        self.pushes += other.pushes;
        self.peak_heap = self.peak_heap.max(other.peak_heap);
        self.astar_calls += other.astar_calls;
        self.compressed_nodes += other.compressed_nodes;
        self.cptree_nodes += other.cptree_nodes;
        self.plus_ops += other.plus_ops;
        self.otimes_ops += other.otimes_ops;
    }
}

/// Counters for a whole framework run ([`crate::framework`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameworkMetrics {
    /// Results pulled from the underlying top-k source.
    pub results_generated: u64,
    /// Similarity evaluations performed while growing the diversity graph.
    pub similarity_checks: u64,
    /// Edges present in the final diversity graph.
    pub edges: u64,
    /// Times `necessary()` was evaluated.
    pub necessary_checks: u64,
    /// Times `div-search-current()` actually ran (gated by `necessary()`).
    pub inner_searches: u64,
    /// Accumulated metrics of all inner searches.
    pub search: SearchMetrics,
    /// True when the run ended because `sufficient()` held (early stop),
    /// false when the source was exhausted first.
    pub early_stopped: bool,
}

/// Discounted cumulative gain of a ranking whose per-position gains are
/// `gains[0..]` (position 0 first): `Σ gains[i] / log2(i + 2)`.
///
/// Gains are used raw (no `2^rel − 1` exponentiation) because our
/// relevance grades are already real-valued Eq. 3 scores, not integer
/// judgment levels.
pub fn dcg(gains: &[f64]) -> f64 {
    gains
        .iter()
        .enumerate()
        .map(|(i, g)| g / ((i + 2) as f64).log2())
        .sum()
}

/// Normalized DCG: `dcg(gains) / dcg(ideal_gains)`.
///
/// `ideal_gains` must be the gain vector of the best possible ranking
/// (scores in descending order). When the ideal DCG is zero — an empty or
/// all-zero-gain ideal, where every ranking is equally good — returns 1.0
/// rather than dividing by zero.
pub fn ndcg(gains: &[f64], ideal_gains: &[f64]) -> f64 {
    let ideal = dcg(ideal_gains);
    if ideal <= 0.0 {
        1.0
    } else {
        dcg(gains) / ideal
    }
}

/// Reciprocal rank of `target` in `ranking`: `1 / (position + 1)`, or
/// 0.0 when absent. Position is 0-based, so a top-1 hit scores 1.0.
pub fn reciprocal_rank<T: PartialEq>(ranking: &[T], target: &T) -> f64 {
    ranking
        .iter()
        .position(|r| r == target)
        .map_or(0.0, |pos| 1.0 / (pos + 1) as f64)
}

/// Number of distinct labels among `labels` (unique-source@k when the
/// labels are the source/topic ids of a result page).
pub fn unique_labels(labels: &[u32]) -> usize {
    let mut seen: Vec<u32> = labels.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Share of the most frequent label: `max count / len`, 0.0 when empty
/// (max-share@k — 1.0 means one source monopolized the page).
pub fn max_share(labels: &[u32]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<u32> = labels.to_vec();
    sorted.sort_unstable();
    let mut best = 0usize;
    let mut run = 0usize;
    let mut prev: Option<u32> = None;
    for &l in &sorted {
        run = if prev == Some(l) { run + 1 } else { 1 };
        prev = Some(l);
        best = best.max(run);
    }
    best as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn dcg_matches_hand_computation() {
        // Gains [3, 2, 1]: 3/log2(2) + 2/log2(3) + 1/log2(4)
        //                = 3 + 2/1.584962500721156 + 0.5
        let expected = 3.0 + 2.0 / 3.0f64.log2() + 0.5;
        close(dcg(&[3.0, 2.0, 1.0]), expected);
        close(dcg(&[]), 0.0);
        close(dcg(&[5.0]), 5.0); // log2(2) = 1
    }

    #[test]
    fn ndcg_is_one_for_ideal_order_and_degrades_for_swaps() {
        let ideal = [3.0, 2.0, 1.0];
        close(ndcg(&ideal, &ideal), 1.0);
        // Swapping positions 0 and 2: [1, 2, 3].
        let swapped = [1.0, 2.0, 3.0];
        let expected = dcg(&swapped) / dcg(&ideal);
        close(ndcg(&swapped, &ideal), expected);
        assert!(ndcg(&swapped, &ideal) < 1.0);
    }

    #[test]
    fn ndcg_all_tied_scores_is_one_any_order() {
        // All-tied gains: every permutation has the same DCG, so NDCG = 1.
        close(ndcg(&[2.0, 2.0, 2.0], &[2.0, 2.0, 2.0]), 1.0);
        // Zero ideal (empty result set, k > result count): defined as 1.
        close(ndcg(&[], &[]), 1.0);
        close(ndcg(&[0.0], &[0.0]), 1.0);
    }

    #[test]
    fn reciprocal_rank_hand_fixtures() {
        let ranking = [7u32, 3, 9];
        close(reciprocal_rank(&ranking, &7), 1.0);
        close(reciprocal_rank(&ranking, &3), 0.5);
        close(reciprocal_rank(&ranking, &9), 1.0 / 3.0);
        close(reciprocal_rank(&ranking, &42), 0.0);
        close(reciprocal_rank(&[] as &[u32], &42), 0.0);
    }

    #[test]
    fn label_concentration_hand_fixtures() {
        // [a, a, b, c]: 3 unique, max share 2/4.
        assert_eq!(unique_labels(&[1, 1, 2, 3]), 3);
        close(max_share(&[1, 1, 2, 3]), 0.5);
        // Monoculture.
        assert_eq!(unique_labels(&[4, 4, 4]), 1);
        close(max_share(&[4, 4, 4]), 1.0);
        // Empty (k > result count collapses to this).
        assert_eq!(unique_labels(&[]), 0);
        close(max_share(&[]), 0.0);
        // All distinct.
        assert_eq!(unique_labels(&[5, 9, 1]), 3);
        close(max_share(&[5, 9, 1]), 1.0 / 3.0);
    }

    #[test]
    fn absorb_accumulates_and_maxes() {
        let mut a = SearchMetrics {
            expansions: 5,
            pushes: 10,
            peak_heap: 7,
            astar_calls: 1,
            ..Default::default()
        };
        let b = SearchMetrics {
            expansions: 2,
            pushes: 3,
            peak_heap: 11,
            astar_calls: 2,
            plus_ops: 4,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.expansions, 7);
        assert_eq!(a.pushes, 13);
        assert_eq!(a.peak_heap, 11);
        assert_eq!(a.astar_calls, 3);
        assert_eq!(a.plus_ops, 4);
    }
}
