//! Lightweight counters describing what a search did.
//!
//! Used by the benchmark harness (ablations AB3/AB4 in DESIGN.md) and by the
//! framework to expose how much work the early-stop conditions saved.

/// Counters for a single `div-search-current` invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchMetrics {
    /// Heap pops across all A* rounds (all components / cptree nodes).
    pub expansions: u64,
    /// Entries pushed into A* heaps.
    pub pushes: u64,
    /// Largest heap size observed.
    pub peak_heap: usize,
    /// Number of `div-astar` invocations (1 for plain astar; one per
    /// component for `div-dp`; one per searched subgraph for `div-cut`).
    pub astar_calls: u64,
    /// Nodes removed by Lemma 7 compression (div-cut only).
    pub compressed_nodes: u64,
    /// cptree nodes searched (div-cut only).
    pub cptree_nodes: u64,
    /// `⊕` operator applications.
    pub plus_ops: u64,
    /// `⊗` operator applications.
    pub otimes_ops: u64,
}

impl SearchMetrics {
    /// Merges counters from a sub-search into this one.
    pub fn absorb(&mut self, other: &SearchMetrics) {
        self.expansions += other.expansions;
        self.pushes += other.pushes;
        self.peak_heap = self.peak_heap.max(other.peak_heap);
        self.astar_calls += other.astar_calls;
        self.compressed_nodes += other.compressed_nodes;
        self.cptree_nodes += other.cptree_nodes;
        self.plus_ops += other.plus_ops;
        self.otimes_ops += other.otimes_ops;
    }
}

/// Counters for a whole framework run ([`crate::framework`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameworkMetrics {
    /// Results pulled from the underlying top-k source.
    pub results_generated: u64,
    /// Similarity evaluations performed while growing the diversity graph.
    pub similarity_checks: u64,
    /// Edges present in the final diversity graph.
    pub edges: u64,
    /// Times `necessary()` was evaluated.
    pub necessary_checks: u64,
    /// Times `div-search-current()` actually ran (gated by `necessary()`).
    pub inner_searches: u64,
    /// Accumulated metrics of all inner searches.
    pub search: SearchMetrics,
    /// True when the run ended because `sufficient()` held (early stop),
    /// false when the source was exhausted first.
    pub early_stopped: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates_and_maxes() {
        let mut a = SearchMetrics {
            expansions: 5,
            pushes: 10,
            peak_heap: 7,
            astar_calls: 1,
            ..Default::default()
        };
        let b = SearchMetrics {
            expansions: 2,
            pushes: 3,
            peak_heap: 11,
            astar_calls: 2,
            plus_ops: 4,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.expansions, 7);
        assert_eq!(a.pushes, 13);
        assert_eq!(a.peak_heap, 11);
        assert_eq!(a.astar_calls, 3);
        assert_eq!(a.plus_ops, 4);
    }
}
