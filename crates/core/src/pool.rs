//! A dependency-free work-stealing worker pool with scoped (borrowing)
//! tasks — built in-repo for the same reason [`crate::fxhash`] was: the
//! serving tier needs it on the hot path and the toolchain is offline.
//!
//! ## Shape
//!
//! A [`WorkerPool`] owns N persistent worker threads and N mutex-guarded
//! deques. Spawns are distributed round-robin across the deques; a worker
//! pops its own deque from the back (LIFO — cache-warm) and **steals from
//! the front of its siblings' deques** (FIFO — oldest work first) when its
//! own runs dry. Task granularity in this repo is coarse (one task pumps
//! one per-shard result source), so a lock per deque operation is noise
//! next to the work a task performs; the stealing is what matters — it
//! keeps every core busy regardless of which deque a burst landed on.
//!
//! ## Scoped tasks
//!
//! [`WorkerPool::scope`] mirrors [`std::thread::scope`]: tasks spawned
//! inside the scope may borrow from the enclosing frame, and the scope
//! does not return until every one of them has finished — **including
//! when the scope body panics** (the tasks may borrow locals the unwind
//! is about to destroy, so the wait is unconditional). The first task
//! panic is captured and re-raised on the caller thread after the wait,
//! exactly like a scoped `join`.
//!
//! Tasks must never *block on pool capacity*: a task that parks its
//! worker waiting for another task that has not been scheduled yet can
//! deadlock an N-thread pool. The prefetch layer ([`crate::prefetch`])
//! is written cooperatively around this rule — producers park themselves
//! (return) when their queue is full and are re-spawned by the consumer,
//! so a pool of **any** size ≥ 1 makes progress.

use crate::sync::{lock_unpoisoned, wait_unpoisoned};
use std::collections::VecDeque;
use std::panic::{AssertUnwindSafe, catch_unwind, resume_unwind};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// An erased, heap-allocated task. Lifetime-erased to `'static` at spawn;
/// soundness is the scope's job (it refuses to return before the task
/// does).
type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    /// One deque per worker. Spawns land round-robin; owners pop the
    /// back, thieves steal the front.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Wakes idle workers. The paired mutex guards nothing by itself —
    /// it only serializes the sleep/notify handshake so a push between
    /// "scanned empty" and "went to sleep" cannot be missed.
    signal: Mutex<()>,
    bell: Condvar,
    shutdown: AtomicBool,
    next_deque: AtomicUsize,
}

impl PoolShared {
    fn inject(&self, task: Task) {
        // RELAXED: round-robin placement only — the counter orders nothing;
        // any interleaving of slot choices is equally correct.
        let slot = self.next_deque.fetch_add(1, Ordering::Relaxed) % self.deques.len();
        lock_unpoisoned(&self.deques[slot]).push_back(task);
        // Serialize against sleepers (see `signal`), then ring.
        drop(lock_unpoisoned(&self.signal));
        self.bell.notify_one();
    }

    /// Pop own work (LIFO), else steal oldest work from a sibling (FIFO).
    fn find_task(&self, me: usize) -> Option<Task> {
        if let Some(task) = lock_unpoisoned(&self.deques[me]).pop_back() {
            return Some(task);
        }
        let n = self.deques.len();
        (1..n).find_map(|step| lock_unpoisoned(&self.deques[(me + step) % n]).pop_front())
    }

    fn worker_loop(&self, me: usize) {
        loop {
            while let Some(task) = self.find_task(me) {
                task();
            }
            let guard = lock_unpoisoned(&self.signal);
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Re-check under the signal lock: a task injected after the
            // scan above has already taken (or is about to take) this
            // lock to notify, so it cannot slip past the wait.
            if let Some(task) = self.find_task(me) {
                drop(guard);
                task();
                continue;
            }
            drop(wait_unpoisoned(&self.bell, guard));
        }
    }
}

/// The pool: persistent worker threads + work-stealing deques. Dropping
/// the pool shuts the workers down and joins them (queued tasks of live
/// scopes always finish first — a scope cannot outlive its pool because
/// it borrows the pool).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads` persistent workers.
    ///
    /// # Panics
    /// Panics if `threads == 0` (a configuration error: a zero-thread
    /// pool can never run anything).
    pub fn new(threads: usize) -> WorkerPool {
        assert!(threads >= 1, "worker pool needs at least one thread");
        let shared = Arc::new(PoolShared {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            signal: Mutex::new(()),
            bell: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_deque: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("divtopk-pool-{me}"))
                    .spawn(move || shared.worker_loop(me))
                    // LINT-ALLOW(panic): thread spawn fails only on OS
                    // resource exhaustion at pool construction, before any
                    // query is in flight — fail fast, nothing to degrade.
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `body` with a [`Scope`] on which borrowing tasks can be
    /// spawned, then waits for all of them (even if `body` panics — see
    /// the module docs). The first captured task panic is re-raised here
    /// after the wait; a panic in `body` itself wins if both happen.
    pub fn scope<'env, F, R>(&'env self, body: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                remaining: Mutex::new(0),
                done: Condvar::new(),
                panic: Mutex::new(None),
            }),
            _scope: std::marker::PhantomData,
            _env: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| body(&scope)));
        scope.state.wait_all();
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = lock_unpoisoned(&scope.state.panic).take() {
                    resume_unwind(payload);
                }
                value
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let _guard = lock_unpoisoned(&self.shared.signal);
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.bell.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

struct ScopeState {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl ScopeState {
    fn wait_all(&self) {
        let mut remaining = lock_unpoisoned(&self.remaining);
        while *remaining > 0 {
            remaining = wait_unpoisoned(&self.done, remaining);
        }
    }
}

/// A spawn handle tied to one [`WorkerPool::scope`] call. `'scope` is
/// invariant (the marker below), exactly like [`std::thread::Scope`] —
/// tasks may borrow anything that outlives the scope body.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'env WorkerPool,
    state: Arc<ScopeState>,
    _scope: std::marker::PhantomData<&'scope mut &'scope ()>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'scope> Scope<'scope, '_> {
    /// Spawns `task` onto the pool. The task may borrow data from the
    /// enclosing frame; the scope waits for it before returning. A panic
    /// inside the task is captured (first one wins) and re-raised when
    /// the scope closes — it never takes a pool worker down.
    pub fn spawn<F>(&'scope self, task: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        *lock_unpoisoned(&self.state.remaining) += 1;
        let state = Arc::clone(&self.state);
        let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                let mut slot = lock_unpoisoned(&state.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut remaining = lock_unpoisoned(&state.remaining);
            *remaining -= 1;
            if *remaining == 0 {
                state.done.notify_all();
            }
        });
        // SAFETY: the closure only borrows data alive for 'scope, and the
        // scope (via `ScopeState::wait_all`, run unconditionally before
        // `WorkerPool::scope` returns) guarantees the task has completed
        // before any of those borrows can dangle. This is the standard
        // scoped-pool erasure, the same argument `std::thread::scope`
        // makes for its own join-before-return.
        let wrapped: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(wrapped) };
        self.pool.shared.inject(wrapped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scoped_tasks_borrow_and_all_run() {
        let pool = WorkerPool::new(3);
        let counter = AtomicU64::new(0);
        let data: Vec<u64> = (0..100).collect();
        pool.scope(|scope| {
            for chunk in data.chunks(7) {
                scope.spawn(|| {
                    let s: u64 = chunk.iter().sum();
                    counter.fetch_add(s, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (0..100).sum::<u64>());
    }

    #[test]
    fn a_single_thread_pool_still_completes_everything() {
        let pool = WorkerPool::new(1);
        let counter = AtomicU64::new(0);
        pool.scope(|scope| {
            for _ in 0..50 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn scopes_are_reusable_and_sequential_scopes_do_not_interfere() {
        let pool = WorkerPool::new(2);
        for round in 0..20u64 {
            let counter = AtomicU64::new(0);
            pool.scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(|| {
                        counter.fetch_add(round + 1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 8 * (round + 1));
        }
    }

    #[test]
    fn task_panic_propagates_to_the_scope_caller_not_the_worker() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("task boom"));
            });
        }));
        assert!(result.is_err());
        // The pool survives: its workers caught the panic and kept going.
        let counter = AtomicU64::new(0);
        pool.scope(|scope| {
            scope.spawn(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn body_panic_still_waits_for_inflight_tasks() {
        let pool = WorkerPool::new(2);
        let ran = Arc::new(AtomicU64::new(0));
        let ran2 = Arc::clone(&ran);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                let ran = Arc::clone(&ran2);
                scope.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    ran.fetch_add(1, Ordering::Relaxed);
                });
                panic!("body boom");
            });
        }));
        assert!(result.is_err());
        // The scope refused to unwind past the live task.
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stealing_drains_an_imbalanced_load() {
        // 64 tasks land round-robin on 4 deques; each task busy-spins a
        // little so completion requires every worker to participate.
        let pool = WorkerPool::new(4);
        let counter = AtomicU64::new(0);
        let counter = &counter;
        pool.scope(|scope| {
            for i in 0..64u64 {
                scope.spawn(move || {
                    let mut x = i;
                    for _ in 0..1000 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    std::hint::black_box(x); // keep the spin from folding away
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }
}
