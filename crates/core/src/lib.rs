//! # divtopk-core — exact diversified top-k search
//!
//! A faithful, production-grade Rust implementation of
//! *Diversifying Top-K Results* (Qin, Yu, Chang — PVLDB 5(11), 2012).
//!
//! ## The problem
//!
//! A plain top-k query returns the `k` highest-scored results, which in
//! practice are often near-duplicates of each other. The **diversified
//! top-k** instead returns at most `k` results such that *no two are
//! similar* (given a user predicate `sim(a, b) > τ`) and the total score is
//! **maximized** — an NP-hard problem equivalent to maximum-weight
//! independent set with a size constraint on the *diversity graph*
//! (results = nodes, similar pairs = edges).
//!
//! ## What this crate provides
//!
//! * [`graph::DiversityGraph`] — the score-sorted diversity graph.
//! * Three exact algorithms for a fixed result set
//!   (`div-search-current()` in the paper):
//!   [`astar::div_astar`] (A\* over partial solutions),
//!   [`dp::div_dp`] (connected components + `⊕` dynamic programming),
//!   [`cut::div_cut`] (compression + cut-point tree decomposition) —
//!   plus the [`greedy::greedy`] baseline (fast, arbitrarily bad) and an
//!   [`exhaustive::exhaustive`] oracle for testing.
//! * The early-stopping [`framework::DivTopK`] engine that wraps **any**
//!   incremental or bounding top-k [`sources::ResultSource`] and returns
//!   the exact diversified top-k of the *entire* stream while generating
//!   as few results as possible (sufficient/necessary stop conditions,
//!   Lemmas 1 and 3).
//! * Resource budgets ([`limits::SearchLimits`]) so NP-hard searches fail
//!   cleanly instead of eating the machine (the paper's `INF` runs).
//!
//! ## Quick example
//!
//! ```
//! use divtopk_core::prelude::*;
//!
//! // Results with scores; two results are similar iff same category.
//! let results = vec![
//!     Scored::new(("apple logo 1", "logo"), Score::new(10.0)),
//!     Scored::new(("apple logo 2", "logo"), Score::new(9.5)),
//!     Scored::new(("apple pie", "food"), Score::new(8.0)),
//!     Scored::new(("apple orchard", "farm"), Score::new(7.0)),
//! ];
//! let source = IncrementalVecSource::new(results);
//! let similar = |a: &(&str, &str), b: &(&str, &str)| a.1 == b.1;
//! let out = DivTopK::new(source, similar, DivSearchConfig::new(3))
//!     .run()
//!     .unwrap();
//! let names: Vec<_> = out.selected.iter().map(|r| r.item.0).collect();
//! assert_eq!(names, ["apple logo 1", "apple pie", "apple orchard"]);
//! assert_eq!(out.total_score, Score::new(25.0));
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod astar;
pub mod component_cache;
pub mod components;
pub mod compress;
pub mod cut;
pub mod cutpoints;
pub mod diversify;
pub mod dp;
pub mod error;
pub mod exhaustive;
pub mod framework;
pub mod fxhash;
pub mod graph;
pub mod greedy;
pub mod limits;
pub mod merge;
pub mod metrics;
pub mod nodeset;
pub mod ops;
pub mod pool;
pub mod prefetch;
pub mod rng;
pub mod score;
pub mod sim;
pub mod solution;
pub mod sources;
pub mod sync;
pub mod testgen;

/// One-stop imports for typical users of the crate.
pub mod prelude {
    pub use crate::astar::{
        AStarConfig, KernelMode, div_astar, div_astar_configured, div_astar_limited,
    };
    pub use crate::component_cache::ComponentCache;
    pub use crate::cut::{
        ChildHeuristic, CutConfig, RootHeuristic, div_cut, div_cut_configured, div_cut_limited,
    };
    pub use crate::diversify::{
        DiscDiversifier, Diversifier, DiversifierMetrics, DiversifyOutcome, ExactDiversifier,
        KnnDiversifier, MmrDiversifier, NoneDiversifier, RERANK_OVERSAMPLE, SimilarityOracle,
        WindowConfig, WindowDiversifier,
    };
    pub use crate::dp::{div_dp, div_dp_limited};
    pub use crate::error::{ExhaustedResource, SearchError};
    pub use crate::framework::{DivSearchConfig, DivSearchOutput, DivTopK, ExactAlgorithm};
    pub use crate::fxhash::{FxBuildHasher, FxHashMap, FxHasher};
    pub use crate::graph::{DENSE_ADJ_MAX_NODES, DiversityGraph, NodeId};
    pub use crate::greedy::{greedy, greedy_result};
    pub use crate::limits::SearchLimits;
    pub use crate::merge::MergedSource;
    pub use crate::metrics::{FrameworkMetrics, SearchMetrics};
    pub use crate::nodeset::{DenseNodeSet, NodeSet};
    pub use crate::pool::{Scope, WorkerPool};
    pub use crate::prefetch::{DEFAULT_PREFETCH_DEPTH, PrefetchedSource};
    pub use crate::score::Score;
    pub use crate::sim::{Similarity, ThresholdSimilarity};
    pub use crate::solution::{SearchResult, SizedSolution};
    pub use crate::sources::{
        BoundingVecSource, IncrementalVecSource, ResultSource, Scored, UnseenBound,
    };
}

pub use prelude::*;
