//! Cut points (articulation points) via Tarjan's algorithm (§7).
//!
//! `div-cut` decomposes each connected component along cut points. The
//! classical low-link computation runs in `O(V + E)`; the implementation is
//! fully iterative so adversarial inputs (long paths — every interior node
//! is a cut point) cannot overflow the stack.

use crate::graph::{DiversityGraph, NodeId};

/// Returns all articulation points of `g`, ascending by node id.
///
/// Works on disconnected graphs (each component is rooted separately). A
/// node `v` is an articulation point iff removing it increases the number
/// of connected components.
pub fn articulation_points(g: &DiversityGraph) -> Vec<NodeId> {
    let n = g.len();
    let mut disc = vec![0u32; n]; // 0 = unvisited; discovery times start at 1
    let mut low = vec![0u32; n];
    let mut is_cut = vec![false; n];
    let mut time = 0u32;
    // DFS frame: (node, parent, index of next neighbor to examine).
    let mut stack: Vec<(NodeId, NodeId, usize)> = Vec::new();
    const NO_PARENT: NodeId = NodeId::MAX;

    for root in 0..n as NodeId {
        if disc[root as usize] != 0 {
            continue;
        }
        time += 1;
        disc[root as usize] = time;
        low[root as usize] = time;
        stack.push((root, NO_PARENT, 0));
        let mut root_children = 0usize;

        while let Some(frame) = stack.last_mut() {
            let (v, parent, idx) = (frame.0, frame.1, frame.2);
            let neighbors = g.neighbors(v);
            if idx < neighbors.len() {
                frame.2 += 1;
                let w = neighbors[idx];
                if disc[w as usize] == 0 {
                    // Tree edge: descend.
                    time += 1;
                    disc[w as usize] = time;
                    low[w as usize] = time;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((w, v, 0));
                } else if w != parent {
                    // Back edge.
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                // Finished v: propagate low-link to the parent.
                stack.pop();
                if let Some(pframe) = stack.last_mut() {
                    let p = pframe.0;
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    if p != root && low[v as usize] >= disc[p as usize] {
                        is_cut[p as usize] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_cut[root as usize] = true;
        }
    }

    (0..n as NodeId).filter(|&v| is_cut[v as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use crate::score::Score;
    use crate::testgen;

    fn graph(n: usize, edges: &[(u32, u32)]) -> DiversityGraph {
        let scores = (0..n).map(|i| Score::from((n - i) as u32)).collect();
        DiversityGraph::from_sorted_scores(scores, edges)
    }

    /// Brute-force articulation check: remove each node and count components.
    fn brute_force(g: &DiversityGraph) -> Vec<NodeId> {
        let base = connected_components(g).len();
        let mut out = Vec::new();
        for v in g.nodes() {
            let keep: Vec<NodeId> = g.nodes().filter(|&u| u != v).collect();
            let (sub, _) = g.induced_subgraph(&keep);
            // Removing an isolated node reduces component count by one; an
            // articulation point *increases* it net of the removed node.
            let removed_isolated = g.degree(v) == 0;
            let after = connected_components(&sub).len();
            let expected_if_not_cut = if removed_isolated { base - 1 } else { base };
            if after > expected_if_not_cut {
                out.push(v);
            }
        }
        out
    }

    #[test]
    fn empty_and_singleton() {
        assert!(articulation_points(&graph(0, &[])).is_empty());
        assert!(articulation_points(&graph(1, &[])).is_empty());
    }

    #[test]
    fn path_interior_nodes_are_cut_points() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(articulation_points(&g), vec![1, 2, 3]);
    }

    #[test]
    fn cycle_has_no_cut_points() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn star_center_is_cut_point() {
        let g = graph(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(articulation_points(&g), vec![0]);
    }

    #[test]
    fn two_triangles_sharing_a_node() {
        // 0-1-2 triangle, 2-3-4 triangle → 2 is the cut point.
        let g = graph(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        assert_eq!(articulation_points(&g), vec![2]);
    }

    #[test]
    fn disconnected_graph_handles_all_components() {
        // Path 0-1-2 and star 3-(4,5,6).
        let g = graph(7, &[(0, 1), (1, 2), (3, 4), (3, 5), (3, 6)]);
        assert_eq!(articulation_points(&g), vec![1, 3]);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..30 {
            let g = testgen::random_graph(14, 0.18, seed);
            assert_eq!(articulation_points(&g), brute_force(&g), "seed {seed}");
        }
        for seed in 0..10 {
            let g = testgen::planted_clusters(&testgen::ClusterConfig::default(), seed);
            assert_eq!(
                articulation_points(&g),
                brute_force(&g),
                "clusters seed {seed}"
            );
        }
    }

    #[test]
    fn long_path_does_not_overflow_stack() {
        let g = testgen::path_graph(50_000, 1);
        let cps = articulation_points(&g);
        assert_eq!(cps.len(), 49_998); // all interior nodes
    }
}
