//! Node sets, in the two representations the engine needs.
//!
//! * [`NodeSet`] — **persistent** sets with O(1) clone, union, extend and
//!   remap. The `⊕` operator folds per-size tables across (potentially
//!   thousands of) components; materializing every intermediate solution as
//!   a flat `Vec<NodeId>` costs `O(k²)` bytes *per fold step* and was
//!   measured to dominate both time and memory at the paper's large-`k`
//!   settings (k = 2000). Witness solutions are only ever *read* at the
//!   very end of a search, so intermediates are represented structurally —
//!   a DAG of joins, extensions and lazy id-remaps over shared subtrees —
//!   and flattened once on demand. This is what keeps `div-cut`'s memory
//!   near-flat while `div-dp`'s per-size tables still blow up the A\* heap
//!   (matching the paper's Fig. 13(d)).
//! * [`DenseNodeSet`] — a **dense u64-word bitset** over one graph's
//!   `0..n` id space, for the hot paths where sets are *queried* rather
//!   than composed: Lemma 7 dominance checks, alive sets, and (via the
//!   shared word layout) `div-astar`'s internal exclusion buffers. Union,
//!   intersection and disjointness are `O(n / 64)` word operations, and
//!   "is candidate `v` compatible with partial solution `S`" collapses to
//!   a single AND-any test against the graph's adjacency bitmap row (see
//!   [`DiversityGraph::adjacency_row`] and DESIGN.md §7). Both
//!   representations agree on the set semantics (property-tested in
//!   `tests/properties.rs`).
//!
//! ```
//! use divtopk_core::nodeset::{DenseNodeSet, NodeSet};
//!
//! // The same set built both ways reads back identically.
//! let persistent = NodeSet::extend(&NodeSet::from_vec(vec![3, 70]), 64);
//! let mut dense = DenseNodeSet::new(128);
//! for v in [3, 70, 64] {
//!     dense.insert(v);
//! }
//! assert_eq!(persistent.to_sorted_vec(), dense.to_sorted_vec());
//! assert_eq!(persistent.len(), dense.len());
//!
//! // Word-level set algebra: union and disjointness are O(n / 64).
//! let other = DenseNodeSet::from_nodes(128, [5, 64]);
//! assert!(!dense.is_disjoint(&other)); // both contain 64
//! dense.union_with(&other);
//! assert_eq!(dense.to_sorted_vec(), vec![3, 5, 64, 70]);
//! ```
//!
//! [`DiversityGraph::adjacency_row`]: crate::graph::DiversityGraph::adjacency_row

use crate::graph::NodeId;
use std::rc::Rc;

/// A dense bitset over the node-id universe `0..capacity` of one graph.
///
/// One bit per node, packed into `u64` words, little-endian within a word
/// (node `v` lives at bit `v % 64` of word `v / 64` — the same layout as
/// [`DiversityGraph`](crate::graph::DiversityGraph)'s adjacency bitmap
/// rows, so sets and rows combine with plain word ops). The set tracks its
/// cardinality, so [`len`](DenseNodeSet::len) is O(1).
///
/// Unlike [`NodeSet`] this representation is mutable and bounded: it is
/// meant to be allocated once per search and reused
/// ([`clear`](DenseNodeSet::clear) is a memset, not a free), which is what
/// makes the
/// `div-astar` expansion loop allocation-free in steady state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseNodeSet {
    words: Vec<u64>,
    len: u32,
}

impl DenseNodeSet {
    /// An empty set over the universe `0..capacity`.
    pub fn new(capacity: usize) -> DenseNodeSet {
        DenseNodeSet {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// An empty set sized to combine with `row` (same word count).
    pub fn with_words(words: usize) -> DenseNodeSet {
        DenseNodeSet {
            words: vec![0; words],
            len: 0,
        }
    }

    /// Builds a set over `0..capacity` from distinct node ids.
    pub fn from_nodes(capacity: usize, nodes: impl IntoIterator<Item = NodeId>) -> DenseNodeSet {
        let mut set = DenseNodeSet::new(capacity);
        for v in nodes {
            set.insert(v);
        }
        set
    }

    /// Number of ids the universe can hold (a multiple of 64).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Number of members — O(1).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for the empty set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True iff `v` is a member.
    ///
    /// # Panics
    /// Panics if `v` is outside the universe.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.words[(v / 64) as usize] & (1u64 << (v % 64)) != 0
    }

    /// Adds `v`; returns true if it was absent.
    ///
    /// # Panics
    /// Panics if `v` is outside the universe.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        let word = &mut self.words[(v / 64) as usize];
        let bit = 1u64 << (v % 64);
        let fresh = *word & bit == 0;
        *word |= bit;
        // Deliberately a branch, not `len += fresh as u32`: rustc 1.95.0
        // (LLVM, opt-level ≥ 2) miscompiles the branchless form when this
        // method is inlined into a larger loop — the increment is dropped
        // and `len` goes stale (caught by `tests/properties.rs::
        // dense_and_persistent_nodesets_agree` in release builds).
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Removes `v`; returns true if it was present.
    ///
    /// # Panics
    /// Panics if `v` is outside the universe.
    #[inline]
    pub fn remove(&mut self, v: NodeId) -> bool {
        let word = &mut self.words[(v / 64) as usize];
        let bit = 1u64 << (v % 64);
        let present = *word & bit != 0;
        *word &= !bit;
        // Branch on purpose — see `insert` for the rustc 1.95.0 codegen
        // bug the branchless `len -= present as u32` form runs into.
        if present {
            self.len -= 1;
        }
        present
    }

    /// Empties the set in place — a memset, no deallocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// `self ← self ∪ other` — O(words).
    ///
    /// # Panics
    /// Panics if the universes differ in word count.
    pub fn union_with(&mut self, other: &DenseNodeSet) {
        self.union_with_row(&other.words);
    }

    /// `self ← self ∪ row`, where `row` is a raw word slice in the same
    /// layout (e.g. an adjacency bitmap row) — O(words).
    ///
    /// # Panics
    /// Panics if `row` has a different word count.
    pub fn union_with_row(&mut self, row: &[u64]) {
        assert_eq!(self.words.len(), row.len(), "universe mismatch");
        let mut count = 0u32;
        for (w, &r) in self.words.iter_mut().zip(row) {
            *w |= r;
            count += w.count_ones();
        }
        self.len = count;
    }

    /// True iff `self ∩ other = ∅` — O(words), early exit.
    ///
    /// # Panics
    /// Panics if the universes differ in word count.
    pub fn is_disjoint(&self, other: &DenseNodeSet) -> bool {
        !self.intersects_row(&other.words)
    }

    /// True iff the set shares any member with the raw word slice `row` —
    /// the single AND-any test `div-astar` uses for independence checks.
    ///
    /// # Panics
    /// Panics if `row` has a different word count.
    pub fn intersects_row(&self, row: &[u64]) -> bool {
        assert_eq!(self.words.len(), row.len(), "universe mismatch");
        self.words.iter().zip(row).any(|(&a, &b)| a & b != 0)
    }

    /// The raw words, for combining with adjacency bitmap rows.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates members ascending (trailing-zeros word scan).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros();
                rest &= rest - 1;
                Some(wi as NodeId * 64 + bit)
            })
        })
    }

    /// Materializes the members, sorted ascending.
    pub fn to_sorted_vec(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.iter());
        out
    }
}

impl FromIterator<NodeId> for DenseNodeSet {
    /// Collects ids into a set sized to the largest id seen.
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> DenseNodeSet {
        let nodes: Vec<NodeId> = iter.into_iter().collect();
        let capacity = nodes.iter().map(|&v| v as usize + 1).max().unwrap_or(0);
        DenseNodeSet::from_nodes(capacity, nodes)
    }
}

/// An immutable set of node ids with O(1) structural composition.
#[derive(Debug, Clone)]
pub struct NodeSet {
    repr: Rc<Repr>,
    len: u32,
}

#[derive(Debug)]
enum Repr {
    Empty,
    /// A materialized set.
    Flat(Vec<NodeId>),
    /// Disjoint union of two sets.
    Join(NodeSet, NodeSet),
    /// One additional node.
    Extend(NodeSet, NodeId),
    /// Every leaf id `x` below reads as `map[x]`.
    Mapped(NodeSet, Rc<Vec<NodeId>>),
}

/// A persistent chain of pending id-remaps during traversal.
struct MapChain {
    map: Rc<Vec<NodeId>>,
    next: Option<Rc<MapChain>>,
}

fn apply_maps(mut chain: Option<&Rc<MapChain>>, mut x: NodeId) -> NodeId {
    while let Some(link) = chain {
        x = link.map[x as usize];
        chain = link.next.as_ref();
    }
    x
}

impl NodeSet {
    /// The empty set.
    pub fn empty() -> NodeSet {
        NodeSet {
            repr: Rc::new(Repr::Empty),
            len: 0,
        }
    }

    /// A materialized set (ids need not be sorted; must be distinct).
    pub fn from_vec(nodes: Vec<NodeId>) -> NodeSet {
        let len = nodes.len() as u32;
        if len == 0 {
            return NodeSet::empty();
        }
        NodeSet {
            repr: Rc::new(Repr::Flat(nodes)),
            len,
        }
    }

    /// Disjoint union — O(1). The caller guarantees disjointness
    /// (components / subtree territories never share nodes).
    pub fn join(a: &NodeSet, b: &NodeSet) -> NodeSet {
        if a.len == 0 {
            return b.clone();
        }
        if b.len == 0 {
            return a.clone();
        }
        NodeSet {
            len: a.len + b.len,
            repr: Rc::new(Repr::Join(a.clone(), b.clone())),
        }
    }

    /// Adds one node — O(1). The caller guarantees `v` is absent.
    pub fn extend(a: &NodeSet, v: NodeId) -> NodeSet {
        NodeSet {
            len: a.len + 1,
            repr: Rc::new(Repr::Extend(a.clone(), v)),
        }
    }

    /// Lazily remaps every member `x` to `map[x]` — O(1).
    pub fn mapped(a: &NodeSet, map: Rc<Vec<NodeId>>) -> NodeSet {
        if a.len == 0 {
            return NodeSet::empty();
        }
        NodeSet {
            len: a.len,
            repr: Rc::new(Repr::Mapped(a.clone(), map)),
        }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for the empty set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Materializes the members, sorted ascending. Iterative traversal —
    /// join chains can be thousands deep.
    pub fn to_sorted_vec(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack: Vec<(&NodeSet, Option<Rc<MapChain>>)> = vec![(self, None)];
        while let Some((set, chain)) = stack.pop() {
            match &*set.repr {
                Repr::Empty => {}
                Repr::Flat(v) => {
                    out.extend(v.iter().map(|&x| apply_maps(chain.as_ref(), x)));
                }
                Repr::Extend(a, v) => {
                    out.push(apply_maps(chain.as_ref(), *v));
                    stack.push((a, chain));
                }
                Repr::Join(a, b) => {
                    stack.push((a, chain.clone()));
                    stack.push((b, chain));
                }
                Repr::Mapped(a, map) => {
                    stack.push((
                        a,
                        Some(Rc::new(MapChain {
                            map: map.clone(),
                            next: chain,
                        })),
                    ));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

impl PartialEq for NodeSet {
    /// Semantic equality: same members.
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.to_sorted_vec() == other.to_sorted_vec()
    }
}
impl Eq for NodeSet {}

thread_local! {
    /// Shared empty representation used to neuter nodes during teardown.
    static EMPTY_REPR: Rc<Repr> = Rc::new(Repr::Empty);
}

fn empty_repr() -> Rc<Repr> {
    EMPTY_REPR.with(Rc::clone)
}

impl Drop for NodeSet {
    /// Iterative teardown: join chains can be tens of thousands of links
    /// deep, and the default recursive `Rc` drop would overflow the stack.
    fn drop(&mut self) {
        if Rc::strong_count(&self.repr) != 1 {
            return; // shared: the field drop just decrements the count.
        }
        if matches!(&*self.repr, Repr::Empty | Repr::Flat(_)) {
            return; // shallow already.
        }
        let mut stack: Vec<Rc<Repr>> = vec![std::mem::replace(&mut self.repr, empty_repr())];
        while let Some(rc) = stack.pop() {
            if let Ok(mut repr) = Rc::try_unwrap(rc) {
                match &mut repr {
                    Repr::Join(a, b) => {
                        stack.push(std::mem::replace(&mut a.repr, empty_repr()));
                        stack.push(std::mem::replace(&mut b.repr, empty_repr()));
                    }
                    Repr::Extend(a, _) | Repr::Mapped(a, _) => {
                        stack.push(std::mem::replace(&mut a.repr, empty_repr()));
                    }
                    Repr::Empty | Repr::Flat(_) => {}
                }
                // `repr` now drops shallowly: children were detached above.
            }
        }
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> NodeSet {
        NodeSet::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_flat() {
        assert!(NodeSet::empty().is_empty());
        let s = NodeSet::from_vec(vec![3, 1, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_sorted_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn join_and_extend() {
        let a = NodeSet::from_vec(vec![5, 1]);
        let b = NodeSet::from_vec(vec![9]);
        let j = NodeSet::join(&a, &b);
        assert_eq!(j.to_sorted_vec(), vec![1, 5, 9]);
        let e = NodeSet::extend(&j, 7);
        assert_eq!(e.len(), 4);
        assert_eq!(e.to_sorted_vec(), vec![1, 5, 7, 9]);
        // Originals are untouched (persistence).
        assert_eq!(a.to_sorted_vec(), vec![1, 5]);
    }

    #[test]
    fn join_with_empty_is_identity_sharing() {
        let a = NodeSet::from_vec(vec![2, 4]);
        let j = NodeSet::join(&a, &NodeSet::empty());
        assert_eq!(j.to_sorted_vec(), a.to_sorted_vec());
    }

    #[test]
    fn mapped_applies_lazily_and_composes() {
        let a = NodeSet::from_vec(vec![0, 2]);
        let m1 = Rc::new(vec![10, 11, 12]); // 0→10, 2→12
        let s1 = NodeSet::mapped(&a, m1);
        assert_eq!(s1.to_sorted_vec(), vec![10, 12]);
        // Second remap over the first.
        let mut m2 = vec![0u32; 20];
        m2[10] = 100;
        m2[12] = 120;
        let s2 = NodeSet::mapped(&s1, Rc::new(m2));
        assert_eq!(s2.to_sorted_vec(), vec![100, 120]);
    }

    #[test]
    fn map_only_affects_wrapped_subtree() {
        let inner = NodeSet::from_vec(vec![0, 1]);
        let mapped = NodeSet::mapped(&inner, Rc::new(vec![7, 8]));
        let outer = NodeSet::join(&mapped, &NodeSet::from_vec(vec![0]));
        // The bare leaf 0 from the right side is NOT remapped.
        assert_eq!(outer.to_sorted_vec(), vec![0, 7, 8]);
    }

    #[test]
    fn deep_join_chain_does_not_overflow() {
        let mut acc = NodeSet::empty();
        for i in 0..50_000u32 {
            acc = NodeSet::join(&acc, &NodeSet::from_vec(vec![i]));
        }
        assert_eq!(acc.len(), 50_000);
        let v = acc.to_sorted_vec();
        assert_eq!(v.len(), 50_000);
        assert_eq!(v[0], 0);
        assert_eq!(v[49_999], 49_999);
    }

    #[test]
    fn semantic_equality() {
        let a = NodeSet::from_vec(vec![1, 2, 3]);
        let b = NodeSet::join(&NodeSet::from_vec(vec![3, 1]), &NodeSet::from_vec(vec![2]));
        assert_eq!(a, b);
        assert_ne!(a, NodeSet::from_vec(vec![1, 2]));
    }

    #[test]
    fn dense_insert_remove_contains() {
        let mut s = DenseNodeSet::new(130);
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 192); // rounded up to whole words
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129)); // already present
        assert_eq!(s.len(), 2);
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.to_sorted_vec(), vec![129]);
    }

    #[test]
    fn dense_union_and_disjointness() {
        let mut a = DenseNodeSet::from_nodes(200, [1, 63, 64, 199]);
        let b = DenseNodeSet::from_nodes(200, [2, 64, 128]);
        assert!(!a.is_disjoint(&b)); // share 64
        let c = DenseNodeSet::from_nodes(200, [3, 65]);
        assert!(a.is_disjoint(&c));
        a.union_with(&b);
        assert_eq!(a.to_sorted_vec(), vec![1, 2, 63, 64, 128, 199]);
        assert_eq!(a.len(), 6); // cardinality recounted across words
    }

    #[test]
    fn dense_row_ops_match_set_ops() {
        let mut a = DenseNodeSet::from_nodes(128, [0, 70]);
        let row = DenseNodeSet::from_nodes(128, [70, 127]);
        assert!(a.intersects_row(row.words()));
        a.union_with_row(row.words());
        assert_eq!(a.to_sorted_vec(), vec![0, 70, 127]);
        let empty_row = DenseNodeSet::new(128);
        assert!(!empty_row.intersects_row(a.words()));
    }

    #[test]
    fn dense_clear_reuses_allocation() {
        let mut s = DenseNodeSet::from_nodes(96, [5, 95]);
        let cap = s.capacity();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), cap);
        assert!(!s.contains(5));
    }

    #[test]
    fn dense_from_iterator_sizes_to_max_id() {
        let s: DenseNodeSet = [7u32, 300, 7].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert!(s.capacity() >= 301);
        assert_eq!(s.to_sorted_vec(), vec![7, 300]);
    }

    #[test]
    #[should_panic]
    fn dense_mismatched_universe_panics() {
        let mut a = DenseNodeSet::new(64);
        let b = DenseNodeSet::new(128);
        a.union_with(&b);
    }
}
