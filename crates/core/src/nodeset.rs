//! Persistent node sets: O(1) clone, union, extend and remap.
//!
//! The `⊕` operator folds per-size tables across (potentially thousands
//! of) components; materializing every intermediate solution as a flat
//! `Vec<NodeId>` costs `O(k²)` bytes *per fold step* and was measured to
//! dominate both time and memory at the paper's large-`k` settings
//! (k = 2000). Witness solutions are only ever *read* at the very end of a
//! search, so intermediates are represented structurally — a DAG of joins,
//! extensions and lazy id-remaps over shared subtrees — and flattened once
//! on demand. This is what keeps `div-cut`'s memory near-flat while
//! `div-dp`'s per-size tables still blow up the A\* heap (matching the
//! paper's Fig. 13(d)).

use crate::graph::NodeId;
use std::rc::Rc;

/// An immutable set of node ids with O(1) structural composition.
#[derive(Debug, Clone)]
pub struct NodeSet {
    repr: Rc<Repr>,
    len: u32,
}

#[derive(Debug)]
enum Repr {
    Empty,
    /// A materialized set.
    Flat(Vec<NodeId>),
    /// Disjoint union of two sets.
    Join(NodeSet, NodeSet),
    /// One additional node.
    Extend(NodeSet, NodeId),
    /// Every leaf id `x` below reads as `map[x]`.
    Mapped(NodeSet, Rc<Vec<NodeId>>),
}

/// A persistent chain of pending id-remaps during traversal.
struct MapChain {
    map: Rc<Vec<NodeId>>,
    next: Option<Rc<MapChain>>,
}

fn apply_maps(mut chain: Option<&Rc<MapChain>>, mut x: NodeId) -> NodeId {
    while let Some(link) = chain {
        x = link.map[x as usize];
        chain = link.next.as_ref();
    }
    x
}

impl NodeSet {
    /// The empty set.
    pub fn empty() -> NodeSet {
        NodeSet {
            repr: Rc::new(Repr::Empty),
            len: 0,
        }
    }

    /// A materialized set (ids need not be sorted; must be distinct).
    pub fn from_vec(nodes: Vec<NodeId>) -> NodeSet {
        let len = nodes.len() as u32;
        if len == 0 {
            return NodeSet::empty();
        }
        NodeSet {
            repr: Rc::new(Repr::Flat(nodes)),
            len,
        }
    }

    /// Disjoint union — O(1). The caller guarantees disjointness
    /// (components / subtree territories never share nodes).
    pub fn join(a: &NodeSet, b: &NodeSet) -> NodeSet {
        if a.len == 0 {
            return b.clone();
        }
        if b.len == 0 {
            return a.clone();
        }
        NodeSet {
            len: a.len + b.len,
            repr: Rc::new(Repr::Join(a.clone(), b.clone())),
        }
    }

    /// Adds one node — O(1). The caller guarantees `v` is absent.
    pub fn extend(a: &NodeSet, v: NodeId) -> NodeSet {
        NodeSet {
            len: a.len + 1,
            repr: Rc::new(Repr::Extend(a.clone(), v)),
        }
    }

    /// Lazily remaps every member `x` to `map[x]` — O(1).
    pub fn mapped(a: &NodeSet, map: Rc<Vec<NodeId>>) -> NodeSet {
        if a.len == 0 {
            return NodeSet::empty();
        }
        NodeSet {
            len: a.len,
            repr: Rc::new(Repr::Mapped(a.clone(), map)),
        }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for the empty set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Materializes the members, sorted ascending. Iterative traversal —
    /// join chains can be thousands deep.
    pub fn to_sorted_vec(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack: Vec<(&NodeSet, Option<Rc<MapChain>>)> = vec![(self, None)];
        while let Some((set, chain)) = stack.pop() {
            match &*set.repr {
                Repr::Empty => {}
                Repr::Flat(v) => {
                    out.extend(v.iter().map(|&x| apply_maps(chain.as_ref(), x)));
                }
                Repr::Extend(a, v) => {
                    out.push(apply_maps(chain.as_ref(), *v));
                    stack.push((a, chain));
                }
                Repr::Join(a, b) => {
                    stack.push((a, chain.clone()));
                    stack.push((b, chain));
                }
                Repr::Mapped(a, map) => {
                    stack.push((
                        a,
                        Some(Rc::new(MapChain {
                            map: map.clone(),
                            next: chain,
                        })),
                    ));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

impl PartialEq for NodeSet {
    /// Semantic equality: same members.
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.to_sorted_vec() == other.to_sorted_vec()
    }
}
impl Eq for NodeSet {}

thread_local! {
    /// Shared empty representation used to neuter nodes during teardown.
    static EMPTY_REPR: Rc<Repr> = Rc::new(Repr::Empty);
}

fn empty_repr() -> Rc<Repr> {
    EMPTY_REPR.with(Rc::clone)
}

impl Drop for NodeSet {
    /// Iterative teardown: join chains can be tens of thousands of links
    /// deep, and the default recursive `Rc` drop would overflow the stack.
    fn drop(&mut self) {
        if Rc::strong_count(&self.repr) != 1 {
            return; // shared: the field drop just decrements the count.
        }
        if matches!(&*self.repr, Repr::Empty | Repr::Flat(_)) {
            return; // shallow already.
        }
        let mut stack: Vec<Rc<Repr>> = vec![std::mem::replace(&mut self.repr, empty_repr())];
        while let Some(rc) = stack.pop() {
            if let Ok(mut repr) = Rc::try_unwrap(rc) {
                match &mut repr {
                    Repr::Join(a, b) => {
                        stack.push(std::mem::replace(&mut a.repr, empty_repr()));
                        stack.push(std::mem::replace(&mut b.repr, empty_repr()));
                    }
                    Repr::Extend(a, _) | Repr::Mapped(a, _) => {
                        stack.push(std::mem::replace(&mut a.repr, empty_repr()));
                    }
                    Repr::Empty | Repr::Flat(_) => {}
                }
                // `repr` now drops shallowly: children were detached above.
            }
        }
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> NodeSet {
        NodeSet::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_flat() {
        assert!(NodeSet::empty().is_empty());
        let s = NodeSet::from_vec(vec![3, 1, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_sorted_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn join_and_extend() {
        let a = NodeSet::from_vec(vec![5, 1]);
        let b = NodeSet::from_vec(vec![9]);
        let j = NodeSet::join(&a, &b);
        assert_eq!(j.to_sorted_vec(), vec![1, 5, 9]);
        let e = NodeSet::extend(&j, 7);
        assert_eq!(e.len(), 4);
        assert_eq!(e.to_sorted_vec(), vec![1, 5, 7, 9]);
        // Originals are untouched (persistence).
        assert_eq!(a.to_sorted_vec(), vec![1, 5]);
    }

    #[test]
    fn join_with_empty_is_identity_sharing() {
        let a = NodeSet::from_vec(vec![2, 4]);
        let j = NodeSet::join(&a, &NodeSet::empty());
        assert_eq!(j.to_sorted_vec(), a.to_sorted_vec());
    }

    #[test]
    fn mapped_applies_lazily_and_composes() {
        let a = NodeSet::from_vec(vec![0, 2]);
        let m1 = Rc::new(vec![10, 11, 12]); // 0→10, 2→12
        let s1 = NodeSet::mapped(&a, m1);
        assert_eq!(s1.to_sorted_vec(), vec![10, 12]);
        // Second remap over the first.
        let mut m2 = vec![0u32; 20];
        m2[10] = 100;
        m2[12] = 120;
        let s2 = NodeSet::mapped(&s1, Rc::new(m2));
        assert_eq!(s2.to_sorted_vec(), vec![100, 120]);
    }

    #[test]
    fn map_only_affects_wrapped_subtree() {
        let inner = NodeSet::from_vec(vec![0, 1]);
        let mapped = NodeSet::mapped(&inner, Rc::new(vec![7, 8]));
        let outer = NodeSet::join(&mapped, &NodeSet::from_vec(vec![0]));
        // The bare leaf 0 from the right side is NOT remapped.
        assert_eq!(outer.to_sorted_vec(), vec![0, 7, 8]);
    }

    #[test]
    fn deep_join_chain_does_not_overflow() {
        let mut acc = NodeSet::empty();
        for i in 0..50_000u32 {
            acc = NodeSet::join(&acc, &NodeSet::from_vec(vec![i]));
        }
        assert_eq!(acc.len(), 50_000);
        let v = acc.to_sorted_vec();
        assert_eq!(v.len(), 50_000);
        assert_eq!(v[0], 0);
        assert_eq!(v[49_999], 49_999);
    }

    #[test]
    fn semantic_equality() {
        let a = NodeSet::from_vec(vec![1, 2, 3]);
        let b = NodeSet::join(&NodeSet::from_vec(vec![3, 1]), &NodeSet::from_vec(vec![2]));
        assert_eq!(a, b);
        assert_ne!(a, NodeSet::from_vec(vec![1, 2]));
    }
}
