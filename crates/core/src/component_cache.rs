//! Incremental, component-cached `div-search-current` — an engineering
//! extension beyond the paper.
//!
//! Algorithm 3 re-runs `div-search-current()` on the *whole* current result
//! set after (in the worst case) every generated result. But between two
//! invocations the diversity graph only gains a handful of nodes/edges, and
//! independent sets respect component boundaries — so per-component tables
//! from the previous invocation remain **exactly valid** for every
//! component the new results did not touch. This module maintains:
//!
//! * a union-find over results (arrival order) with per-root member lists
//!   (small-to-large merging), and
//! * a cache of per-component [`SearchResult`] tables (arrival-id space),
//!   invalidated precisely when components merge or grow.
//!
//! Each invocation then recomputes only *dirty* components (with `div-cut`)
//! and `⊕`-folds all cached tables. On streams where the gate fires often
//! this removes the dominant redundant work; `framework::DivSearchConfig::
//! cache_components` switches it on, and equality with the uncached path is
//! property-tested.

use crate::cut::{CutConfig, div_cut_ledger};
use crate::error::SearchError;
use crate::graph::DiversityGraph;
use crate::limits::SearchLimits;
use crate::metrics::SearchMetrics;
use crate::ops::combine_disjoint_in_place;
use crate::score::Score;
use crate::solution::SearchResult;
use std::collections::{HashMap, HashSet};

/// Incrementally maintained diversity graph + per-component table cache.
///
/// Node ids are **arrival indices** (the order results were added).
#[derive(Debug)]
pub struct ComponentCache {
    /// Per-node score, arrival order.
    scores: Vec<Score>,
    /// Per-node adjacency (arrival ids).
    adj: Vec<Vec<u32>>,
    /// Union-find parent (path-halving).
    parent: Vec<u32>,
    /// Member lists, only meaningful at roots.
    members: Vec<Vec<u32>>,
    /// Cached exact tables per root (arrival-id space).
    tables: HashMap<u32, SearchResult>,
    /// Roots whose component changed since their cached table was built.
    dirty: HashSet<u32>,
    /// Total undirected edges (exposed for metrics).
    edge_count: u64,
}

impl ComponentCache {
    /// An empty cache.
    pub fn new() -> ComponentCache {
        ComponentCache {
            scores: Vec::new(),
            adj: Vec::new(),
            parent: Vec::new(),
            members: Vec::new(),
            tables: HashMap::new(),
            dirty: HashSet::new(),
            edge_count: 0,
        }
    }

    /// Number of results added.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True before any result was added.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Total undirected edges added.
    pub fn edge_count(&self) -> u64 {
        self.edge_count
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Adds the next result (arrival id = current `len()`) with its edges
    /// to earlier results. Returns the new node's arrival id.
    pub fn add_result(&mut self, score: Score, neighbors: &[u32]) -> u32 {
        let id = self.scores.len() as u32;
        self.scores.push(score);
        self.adj.push(neighbors.to_vec());
        self.parent.push(id);
        self.members.push(vec![id]);
        self.dirty.insert(id);
        for &nb in neighbors {
            debug_assert!(nb < id, "edges must point at earlier arrivals");
            self.adj[nb as usize].push(id);
            self.edge_count += 1;
            // Union id's root with nb's root (small-to-large on members).
            let ra = self.find(id);
            let rb = self.find(nb);
            if ra == rb {
                continue;
            }
            let (big, small) = if self.members[ra as usize].len() >= self.members[rb as usize].len()
            {
                (ra, rb)
            } else {
                (rb, ra)
            };
            self.parent[small as usize] = big;
            let moved = std::mem::take(&mut self.members[small as usize]);
            self.members[big as usize].extend(moved);
            self.tables.remove(&small);
            self.tables.remove(&big);
            self.dirty.remove(&small);
            self.dirty.insert(big);
        }
        id
    }

    /// Recomputes dirty components (with `div-cut` under `config`) and
    /// returns the `⊕`-fold of all component tables — the exact
    /// `div-search-current` answer for the current result set.
    pub fn search(
        &mut self,
        k: usize,
        config: &CutConfig,
        limits: &SearchLimits,
        metrics: &mut SearchMetrics,
    ) -> Result<SearchResult, SearchError> {
        let mut ledger = limits.start();
        // Recompute dirty roots.
        let dirty: Vec<u32> = self.dirty.iter().copied().collect();
        for root in dirty {
            // A root may have been absorbed after being marked dirty.
            if self.parent[root as usize] != root {
                self.dirty.remove(&root);
                continue;
            }
            let members = self.members[root as usize].clone();
            let table = self.solve_component(members, k, config, &mut ledger, metrics)?;
            self.tables.insert(root, table);
            self.dirty.remove(&root);
        }
        // Fold every live component table.
        let mut combined = SearchResult::empty(k);
        let roots: Vec<u32> = (0..self.parent.len() as u32)
            .filter(|&x| self.parent[x as usize] == x)
            .collect();
        for root in roots {
            let table = self
                .tables
                .get(&root)
                .expect("every live root has a table after recompute");
            // Cached tables may target a previous k; recompute on mismatch.
            if table.k() != k {
                let members = self.members[root as usize].clone();
                let fresh = self.solve_component(members, k, config, &mut ledger, metrics)?;
                self.tables.insert(root, fresh);
            }
            combine_disjoint_in_place(&mut combined, &self.tables[&root]);
            metrics.plus_ops += 1;
        }
        Ok(combined)
    }

    /// Exact table for one component (arrival-id space).
    ///
    /// The component's members are relabelled to a **dense** local id
    /// space `0..members.len()` before solving — the same density contract
    /// every remap in the engine maintains (compression, induced
    /// subgraphs), and the reason the per-query adjacency bitmap and
    /// [`crate::nodeset::DenseNodeSet`]s stay O(component²) bits rather
    /// than O(stream²) (DESIGN.md §7).
    fn solve_component(
        &self,
        mut members: Vec<u32>,
        k: usize,
        config: &CutConfig,
        ledger: &mut crate::limits::BudgetLedger,
        metrics: &mut SearchMetrics,
    ) -> Result<SearchResult, SearchError> {
        // Sort the member list: local id = rank within the component, and
        // arrival→local lookups become binary searches (no per-solve hash
        // map).
        members.sort_unstable();
        let local_of = |arrival: u32| -> u32 {
            members
                .binary_search(&arrival)
                .expect("edges never cross components") as u32
        };
        let scores: Vec<Score> = members.iter().map(|&a| self.scores[a as usize]).collect();
        let mut edges = Vec::new();
        for (local, &a) in members.iter().enumerate() {
            for &nb in &self.adj[a as usize] {
                if nb > a {
                    continue; // count each edge once
                }
                edges.push((local as u32, local_of(nb)));
            }
        }
        let (graph, perm) = DiversityGraph::from_unsorted_scores(&scores, &edges);
        let local_table = div_cut_ledger(&graph, k, config, ledger, metrics, 0)?;
        // graph ids → local ids → arrival ids.
        let to_arrival: Vec<u32> = perm.iter().map(|&local| members[local as usize]).collect();
        Ok(local_table.map_nodes(&to_arrival))
    }
}

impl Default for ComponentCache {
    fn default() -> ComponentCache {
        ComponentCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use crate::rng::Pcg;

    fn s(v: u32) -> Score {
        Score::from(v)
    }

    /// Reference: rebuild the full graph and solve exhaustively.
    fn oracle(scores: &[Score], edges: &[(u32, u32)], k: usize) -> Score {
        let (g, _) = DiversityGraph::from_unsorted_scores(scores, edges);
        exhaustive(&g, k).best().score()
    }

    #[test]
    fn matches_oracle_after_every_insertion() {
        let mut rng = Pcg::new(42);
        for _trial in 0..15 {
            let mut cache = ComponentCache::new();
            let mut scores = Vec::new();
            let mut all_edges = Vec::new();
            let k = 1 + rng.below(5) as usize;
            for i in 0..18u32 {
                let score = s(rng.range(1, 500));
                let neighbors: Vec<u32> = (0..i).filter(|_| rng.chance(0.15)).collect();
                for &nb in &neighbors {
                    all_edges.push((nb, i));
                }
                scores.push(score);
                cache.add_result(score, &neighbors);

                let mut metrics = SearchMetrics::default();
                let got = cache
                    .search(
                        k,
                        &CutConfig::default(),
                        &SearchLimits::unlimited(),
                        &mut metrics,
                    )
                    .unwrap();
                let want = oracle(&scores, &all_edges, k);
                assert_eq!(got.best().score(), want, "after inserting {i}");
                got.assert_well_formed(None);
            }
        }
    }

    #[test]
    fn unchanged_components_are_not_recomputed() {
        let mut cache = ComponentCache::new();
        // Two disjoint pairs.
        cache.add_result(s(10), &[]);
        cache.add_result(s(9), &[0]);
        cache.add_result(s(8), &[]);
        cache.add_result(s(7), &[2]);
        let mut m1 = SearchMetrics::default();
        cache
            .search(
                2,
                &CutConfig::default(),
                &SearchLimits::unlimited(),
                &mut m1,
            )
            .unwrap();
        let calls_first = m1.astar_calls;
        assert!(calls_first >= 2);

        // Add an isolated node: only IT should be solved now.
        cache.add_result(s(1), &[]);
        let mut m2 = SearchMetrics::default();
        let got = cache
            .search(
                2,
                &CutConfig::default(),
                &SearchLimits::unlimited(),
                &mut m2,
            )
            .unwrap();
        assert_eq!(got.best().score(), s(18)); // 10 + 8
        assert!(
            m2.astar_calls <= calls_first,
            "recompute touched clean components ({} vs {})",
            m2.astar_calls,
            calls_first
        );
        assert_eq!(m2.astar_calls, 1, "exactly the new singleton");
    }

    #[test]
    fn merging_components_invalidates_both() {
        let mut cache = ComponentCache::new();
        cache.add_result(s(10), &[]);
        cache.add_result(s(8), &[]);
        let mut m = SearchMetrics::default();
        cache
            .search(2, &CutConfig::default(), &SearchLimits::unlimited(), &mut m)
            .unwrap();
        // Bridge node adjacent to both → single component {0,1,2}.
        cache.add_result(s(5), &[0, 1]);
        let mut m2 = SearchMetrics::default();
        let got = cache
            .search(
                2,
                &CutConfig::default(),
                &SearchLimits::unlimited(),
                &mut m2,
            )
            .unwrap();
        assert_eq!(got.best().score(), s(18)); // 10 + 8 still independent
        // The merged component must be re-solved (compression may reduce
        // it to fewer astar calls, but at least one solve happened).
        assert!(m2.astar_calls >= 1);
    }

    #[test]
    fn k_change_triggers_recompute_not_corruption() {
        let mut cache = ComponentCache::new();
        for i in 0..6u32 {
            let nbs: Vec<u32> = if i % 2 == 1 { vec![i - 1] } else { vec![] };
            cache.add_result(s(10 - i), &nbs);
        }
        let mut m = SearchMetrics::default();
        let at2 = cache
            .search(2, &CutConfig::default(), &SearchLimits::unlimited(), &mut m)
            .unwrap();
        let at3 = cache
            .search(3, &CutConfig::default(), &SearchLimits::unlimited(), &mut m)
            .unwrap();
        assert!(at3.best().score() >= at2.best().score());
        assert_eq!(at3.k(), 3);
    }

    #[test]
    fn budget_errors_propagate() {
        let mut cache = ComponentCache::new();
        for i in 0..30u32 {
            let neighbors: Vec<u32> = (0..i).filter(|&j| j % 3 == i % 3).collect();
            cache.add_result(s(100 - i), &neighbors);
        }
        let mut m = SearchMetrics::default();
        let limits = SearchLimits {
            max_expansions: Some(1),
            ..SearchLimits::default()
        };
        assert!(
            cache
                .search(10, &CutConfig::default(), &limits, &mut m)
                .is_err()
        );
    }
}
