//! A fast, deterministic hasher for hot in-memory maps.
//!
//! `std`'s default `HashMap` hasher (SipHash) is built for HashDoS
//! resistance on attacker-controlled keys; for the engine's internal
//! maps — the term dictionary above all, whose construction sits on the
//! cold-start path (DESIGN.md §10) — that robustness costs several
//! milliseconds per 10⁴ keys. This is the well-known Fx multiply-rotate
//! hash (the rustc symbol-table hasher): one rotate, one xor, one
//! multiply per word. The workspace takes no external dependencies, so
//! it is implemented here.
//!
//! Determinism note: the hash is fixed (no random state), so map
//! *iteration order* is stable for a given key set — but nothing in the
//! repo may depend on iteration order anyway; everything serialized or
//! compared is explicitly ordered first.

use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier from the Fx hash (π-derived, as used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-at-a-time Fx hasher state.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Fx's multiply concentrates entropy in the high bits; hashbrown
        // masks *low* bits for the bucket index, so near-sequential keys
        // (synthetic vocabularies!) would cluster and probe-chain. One
        // xor-shift-multiply finalizer restores low-bit avalanche.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" cannot collide
            // trivially through the zero padding.
            word[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` plumbing for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(b"apple"), hash_of(b"apple"));
        assert_ne!(hash_of(b"apple"), hash_of(b"apples"));
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut map: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert(format!("t{i:06}"), i);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get("t000417"), Some(&417));
        assert_eq!(map.get("t999999"), None);
    }
}
