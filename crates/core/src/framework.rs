//! The `div-search` framework (Algorithm 3, §4).
//!
//! Wraps any [`ResultSource`] (incremental or bounding) and turns its plain
//! top-k stream into an **exact diversified** top-k with early stopping:
//!
//! 1. pull results one at a time, growing the diversity graph;
//! 2. when the **necessary** condition (Lemma 3) says a stop is even
//!    possible, run `div-search-current()` (one of the exact algorithms) on
//!    the current graph;
//! 3. stop as soon as the **sufficient** condition (Lemma 1/Eq. 2) proves
//!    no unseen result can improve the answer:
//!    `score(D(S)) ≥ best(S) = max_{0≤i≤k} { score(D_i(S)) + (k−i)·u }`.
//!
//! Deviations from the paper, both on the safe side (see DESIGN.md §4):
//! the `i = 0` term (`k·u`) is included so bounding sources whose seen
//! scores all trail `u` cannot stop prematurely, and the reported unseen
//! bound is clamped to be non-increasing (Lemma 2 assumes the source
//! behaves; we do not trust it).

use crate::astar::AStarConfig;
use crate::astar::div_astar_ledger;
use crate::cut::{CutConfig, div_cut_ledger};
use crate::dp::div_dp_ledger;
use crate::error::SearchError;
use crate::graph::DiversityGraph;
use crate::limits::SearchLimits;
use crate::metrics::{FrameworkMetrics, SearchMetrics};
use crate::score::Score;
use crate::sim::Similarity;
use crate::solution::SearchResult;
use crate::sources::{ResultSource, Scored, UnseenBound};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which exact algorithm implements `div-search-current()`.
///
/// All three return tables satisfying the prefix-max contract, so the
/// framework's stop conditions are sound with any of them. (The greedy
/// heuristic is deliberately *not* an option here: its table carries no
/// optimality guarantee, which would break Lemma 1's upper bound.)
#[derive(Debug, Clone, Default, PartialEq)]
pub enum ExactAlgorithm {
    /// `div-astar` (Algorithm 4) on the whole graph.
    AStar,
    /// `div-dp` (Algorithm 7): per-component A\* + `⊕`.
    Dp,
    /// `div-cut` (Algorithm 8) with the given configuration.
    #[default]
    Cut,
    /// `div-cut` with custom knobs.
    CutConfigured(CutConfig),
}

impl ExactAlgorithm {
    /// Runs the chosen algorithm on `g` under `limits`.
    pub fn search(
        &self,
        g: &DiversityGraph,
        k: usize,
        limits: &SearchLimits,
    ) -> Result<(SearchResult, SearchMetrics), SearchError> {
        let mut metrics = SearchMetrics::default();
        let mut ledger = limits.start();
        let result = match self {
            ExactAlgorithm::AStar => {
                div_astar_ledger(g, k, &AStarConfig::default(), &mut ledger, &mut metrics)?
            }
            ExactAlgorithm::Dp => {
                div_dp_ledger(g, k, &AStarConfig::default(), &mut ledger, &mut metrics)?
            }
            ExactAlgorithm::Cut => {
                div_cut_ledger(g, k, &CutConfig::default(), &mut ledger, &mut metrics, 0)?
            }
            ExactAlgorithm::CutConfigured(config) => {
                div_cut_ledger(g, k, config, &mut ledger, &mut metrics, 0)?
            }
        };
        Ok((result, metrics))
    }
}

/// Framework configuration.
#[derive(Debug, Clone)]
pub struct DivSearchConfig {
    /// How many diversified results to return (`k`).
    pub k: usize,
    /// The inner exact search.
    pub algorithm: ExactAlgorithm,
    /// Budgets applied to **each** inner `div-search-current` invocation.
    pub limits: SearchLimits,
    /// Apply the necessary-condition gate (Lemma 3) before inner searches.
    /// Disabling re-searches after every pulled result — ablation AB3.
    pub use_necessary_gate: bool,
    /// Additional throttle on top of Lemma 3: skip re-searching until the
    /// unseen bound has decayed by this relative factor since the last
    /// inner search (0.0 = paper behaviour, search whenever Lemma 3
    /// allows). The sufficient condition typically fails only because `u`
    /// is still large, so re-searching before `u` moves is wasted work;
    /// a small decay (e.g. 0.01) trades a few extra pulled results for
    /// orders of magnitude fewer inner searches at large `k`. Exactness is
    /// unaffected — stopping is only ever *delayed*.
    pub min_bound_decay: f64,
    /// Cache per-component tables between inner searches
    /// ([`crate::component_cache`]): only components touched by new results
    /// are re-solved. Exactness is unaffected (property-tested); the inner
    /// algorithm is effectively `div-cut` per component regardless of
    /// [`DivSearchConfig::algorithm`] (whose `CutConfigured` knobs are
    /// honored). Off by default — the paper's engine is stateless.
    pub cache_components: bool,
}

impl DivSearchConfig {
    /// Default configuration for a given `k` (div-cut, no budgets, gated,
    /// no bound-decay throttle — the paper's behaviour).
    pub fn new(k: usize) -> DivSearchConfig {
        DivSearchConfig {
            k,
            algorithm: ExactAlgorithm::default(),
            limits: SearchLimits::unlimited(),
            use_necessary_gate: true,
            min_bound_decay: 0.0,
            cache_components: false,
        }
    }

    /// Enables the incremental component cache (see
    /// [`DivSearchConfig::cache_components`]).
    pub fn with_component_cache(mut self) -> DivSearchConfig {
        self.cache_components = true;
        self
    }

    /// Sets the bound-decay throttle (see [`DivSearchConfig::min_bound_decay`]).
    pub fn with_bound_decay(mut self, decay: f64) -> DivSearchConfig {
        assert!((0.0..1.0).contains(&decay), "decay must be in [0, 1)");
        self.min_bound_decay = decay;
        self
    }

    /// Selects the inner algorithm.
    pub fn with_algorithm(mut self, algorithm: ExactAlgorithm) -> DivSearchConfig {
        self.algorithm = algorithm;
        self
    }

    /// Sets inner-search budgets.
    pub fn with_limits(mut self, limits: SearchLimits) -> DivSearchConfig {
        self.limits = limits;
        self
    }
}

/// The outcome of a diversified top-k run.
#[derive(Debug)]
pub struct DivSearchOutput<T> {
    /// The diversified top-k results, highest score first. No two are
    /// similar; the total score is maximal among all such subsets of the
    /// *entire* result stream (seen or unseen) of size ≤ k.
    pub selected: Vec<Scored<T>>,
    /// Total score of `selected`.
    pub total_score: Score,
    /// Run statistics (results pulled, inner searches, early stop, …).
    pub metrics: FrameworkMetrics,
}

/// The `div-search` engine: a source + a similarity predicate + a config.
///
/// ```
/// use divtopk_core::prelude::*;
///
/// // A bounding source: results arrive in arbitrary order and the source
/// // reports an upper bound on unseen scores, so the engine can stop
/// // before draining the stream. Two items are similar iff same category.
/// let items = vec![
///     Scored::new(("a", 0u8), Score::new(9.0)),
///     Scored::new(("b", 0u8), Score::new(8.5)),
///     Scored::new(("c", 1u8), Score::new(7.0)),
///     Scored::new(("d", 2u8), Score::new(3.0)),
/// ];
/// let out = DivTopK::new(
///     BoundingVecSource::new(items),
///     |a: &(&str, u8), b: &(&str, u8)| a.1 == b.1,
///     DivSearchConfig::new(2),
/// )
/// .run()
/// .unwrap();
/// // One of the two category-0 near-duplicates plus "c".
/// assert_eq!(out.total_score, Score::new(16.0));
/// assert_eq!(out.selected.len(), 2);
/// ```
pub struct DivTopK<S: ResultSource, M> {
    source: S,
    similarity: M,
    config: DivSearchConfig,
}

impl<S, M> DivTopK<S, M>
where
    S: ResultSource,
    M: Similarity<S::Item>,
{
    /// Creates an engine.
    pub fn new(source: S, similarity: M, config: DivSearchConfig) -> DivTopK<S, M> {
        DivTopK {
            source,
            similarity,
            config,
        }
    }

    /// Runs Algorithm 3 to completion and returns the exact diversified
    /// top-k. Consumes the engine (selected items are moved out).
    ///
    /// `config.limits.time_budget` bounds the **whole run** (pulls,
    /// similarity checks and all inner searches together); the other
    /// budgets apply to each inner search individually.
    pub fn run(mut self) -> Result<DivSearchOutput<S::Item>, SearchError> {
        use crate::error::ExhaustedResource;
        let run_start = std::time::Instant::now();
        let total_budget = self.config.limits.time_budget;
        let k = self.config.k;
        let mut metrics = FrameworkMetrics::default();
        let mut items: Vec<Option<Scored<S::Item>>> = Vec::new();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut scores: Vec<Score> = Vec::new();
        let mut cache = self
            .config
            .cache_components
            .then(crate::component_cache::ComponentCache::new);
        let cache_cut_config = match &self.config.algorithm {
            ExactAlgorithm::CutConfigured(c) => c.clone(),
            _ => CutConfig::default(),
        };
        // Min-heap of the k largest scores seen (for Lemma 3's
        // "k-th largest score in S ≥ u" test).
        let mut topk: BinaryHeap<Reverse<Score>> = BinaryHeap::new();
        // Monotone unseen bound (clamped per Lemma 2's assumption).
        let mut unseen: Option<Score> = None; // None = unbounded
        // Snapshot from the last inner search: |S'|, max feasible size, and
        // the unseen bound at that time (for the decay throttle).
        let mut last_search_len = 0usize;
        let mut last_max_feasible = 0usize;
        let mut last_search_bound: Option<Score> = None;
        // Current D(S) in arrival-index space.
        let mut current: Option<SearchResult> = None;

        if k == 0 {
            return Ok(DivSearchOutput {
                selected: Vec::new(),
                total_score: Score::ZERO,
                metrics,
            });
        }

        loop {
            // The run-level deadline also covers the pull/similarity loop
            // (a gated stretch with no inner searches must still respect
            // the budget).
            if let Some(total) = total_budget {
                if run_start.elapsed() > total {
                    return Err(SearchError::ResourceExhausted(ExhaustedResource::Deadline));
                }
            }
            let pulled = self.source.next_result();
            let exhausted = pulled.is_none();
            if let Some(result) = pulled {
                metrics.results_generated += 1;
                let new_index = items.len() as u32;
                let mut neighbors: Vec<u32> = Vec::new();
                for (other_index, other) in items.iter().enumerate() {
                    let other = other.as_ref().expect("items are only taken at the end");
                    metrics.similarity_checks += 1;
                    if self.similarity.similar(&other.item, &result.item) {
                        neighbors.push(other_index as u32);
                    }
                }
                if let Some(cache) = cache.as_mut() {
                    cache.add_result(result.score, &neighbors);
                } else {
                    edges.extend(neighbors.iter().map(|&nb| (nb, new_index)));
                }
                scores.push(result.score);
                if topk.len() < k {
                    topk.push(Reverse(result.score));
                } else if let Some(&Reverse(smallest)) = topk.peek() {
                    if result.score > smallest {
                        topk.pop();
                        topk.push(Reverse(result.score));
                    }
                }
                items.push(Some(result));
            }
            // Update the (clamped, monotone) unseen bound.
            if let UnseenBound::At(bound) = self.source.unseen_bound() {
                unseen = Some(match unseen {
                    Some(prev) => prev.min(bound),
                    None => bound,
                });
            }

            // necessary(): is an early stop even possible right now?
            // Always proceed when the stream ended (Lemma 3 condition 1 —
            // final search) or when the gate is disabled (ablation AB3).
            let proceed = if exhausted || !self.config.use_necessary_gate {
                true
            } else {
                metrics.necessary_checks += 1;
                let decayed = match (last_search_bound, unseen) {
                    // LINT-ALLOW(float-eq): 0.0 is the documented
                    // sentinel for "decay gate disabled", set literally
                    // in config — an exact-representation compare, not
                    // arithmetic.
                    _ if self.config.min_bound_decay == 0.0 => true,
                    (Some(prev), Some(now)) => {
                        now.get() <= prev.get() * (1.0 - self.config.min_bound_decay)
                    }
                    _ => true,
                };
                decayed
                    && necessary_holds(
                        items.len(),
                        last_search_len,
                        last_max_feasible,
                        k,
                        &topk,
                        unseen,
                    )
            };

            // Skip a redundant final search when the stream ended right
            // after an inner search over the very same result set.
            let proceed =
                proceed && !(exhausted && current.is_some() && last_search_len == items.len());

            if proceed {
                // The run-level time budget: hand each inner search only
                // what remains of it.
                let mut limits = self.config.limits.clone();
                if let Some(total) = total_budget {
                    let remaining = total
                        .checked_sub(run_start.elapsed())
                        .ok_or(SearchError::ResourceExhausted(ExhaustedResource::Deadline))?;
                    limits.time_budget = Some(remaining);
                }
                let mapped = if let Some(cache) = cache.as_mut() {
                    let mut search_metrics = SearchMetrics::default();
                    let result =
                        cache.search(k, &cache_cut_config, &limits, &mut search_metrics)?;
                    metrics.edges = cache.edge_count();
                    metrics.inner_searches += 1;
                    metrics.search.absorb(&search_metrics);
                    result // already in arrival-id space
                } else {
                    let (graph, perm) = DiversityGraph::from_unsorted_scores(&scores, &edges);
                    metrics.edges = graph.edge_count() as u64;
                    let (result, search_metrics) =
                        self.config.algorithm.search(&graph, k, &limits)?;
                    metrics.inner_searches += 1;
                    metrics.search.absorb(&search_metrics);
                    result.map_nodes(&perm)
                };
                last_search_len = items.len();
                last_max_feasible = mapped.max_feasible_size();
                last_search_bound = unseen;
                current = Some(mapped);

                if exhausted {
                    break;
                }
                // sufficient(): Eq. 2 with Lemma 1's bound.
                let d = current.as_ref().expect("just stored");
                if let Some(u) = unseen {
                    if d.best().score() >= best_upper_bound(d, k, u) {
                        metrics.early_stopped = true;
                        break;
                    }
                }
            } else if exhausted {
                break;
            }
        }

        // Assemble the output from the final table.
        let current = match current {
            Some(c) => c,
            None => SearchResult::empty(k), // empty stream
        };
        let mut selected: Vec<Scored<S::Item>> = current
            .best()
            .nodes()
            .iter()
            .map(|&idx| items[idx as usize].take().expect("each node selected once"))
            .collect();
        selected.sort_by_key(|r| std::cmp::Reverse(r.score));
        let total_score = selected.iter().map(|r| r.score).sum();
        Ok(DivSearchOutput {
            selected,
            total_score,
            metrics,
        })
    }
}

/// Lemma 1 (extended with the `i = 0` term): an upper bound on the score of
/// the best diversified top-k over seen *and* unseen results.
fn best_upper_bound(d: &SearchResult, k: usize, u: Score) -> Score {
    let mut best = u.times(k); // i = 0: an entirely-unseen solution.
    for (i, sol) in d.iter() {
        best = best.max(sol.score() + u.times(k - i));
    }
    best
}

/// Lemma 3 condition 2: enough new results since the last search, and the
/// k-th largest seen score has caught up with the unseen bound.
fn necessary_holds(
    seen: usize,
    last_search_len: usize,
    last_max_feasible: usize,
    k: usize,
    topk: &BinaryHeap<Reverse<Score>>,
    unseen: Option<Score>,
) -> bool {
    let Some(u) = unseen else {
        return false; // no bound yet → cannot possibly stop.
    };
    let kth_largest = if topk.len() >= k {
        topk.peek().map(|&Reverse(s)| s).unwrap_or(Score::ZERO)
    } else {
        Score::ZERO
    };
    if kth_largest < u {
        return false;
    }
    seen >= last_search_len + k.saturating_sub(last_max_feasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use crate::rng::Pcg;
    use crate::sim::ThresholdSimilarity;
    use crate::sources::{BoundingVecSource, IncrementalVecSource};

    fn s(v: u32) -> Score {
        Score::from(v)
    }

    /// Items are (id, cluster); similar iff same cluster.
    fn same_cluster(a: &(u32, u32), b: &(u32, u32)) -> bool {
        a.1 == b.1
    }

    fn make_items(seed: u64, n: usize, clusters: u32) -> Vec<Scored<(u32, u32)>> {
        let mut rng = Pcg::new(seed);
        (0..n as u32)
            .map(|i| Scored::new((i, rng.below(clusters)), Score::from(rng.range(1, 1000))))
            .collect()
    }

    /// Offline reference: build the full graph over all items and solve.
    fn offline_optimum(items: &[Scored<(u32, u32)>], k: usize) -> Score {
        let (graph, _) =
            DiversityGraph::from_items(items, |r| r.score, |a, b| same_cluster(&a.item, &b.item));
        exhaustive(&graph, k).best().score()
    }

    #[test]
    fn incremental_source_matches_offline_optimum() {
        for seed in 0..15 {
            let items = make_items(seed, 18, 5);
            let want = offline_optimum(&items, 4);
            let source = IncrementalVecSource::from_unsorted(items);
            let engine = DivTopK::new(source, same_cluster, DivSearchConfig::new(4));
            let out = engine.run().unwrap();
            assert_eq!(out.total_score, want, "seed {seed}");
            // Output really is pairwise dissimilar.
            for i in 0..out.selected.len() {
                for j in (i + 1)..out.selected.len() {
                    assert!(!same_cluster(&out.selected[i].item, &out.selected[j].item));
                }
            }
        }
    }

    #[test]
    fn bounding_source_matches_offline_optimum() {
        for seed in 20..35 {
            let items = make_items(seed, 18, 4);
            let want = offline_optimum(&items, 5);
            let source = BoundingVecSource::new(items);
            for algorithm in [
                ExactAlgorithm::AStar,
                ExactAlgorithm::Dp,
                ExactAlgorithm::Cut,
            ] {
                let config = DivSearchConfig::new(5).with_algorithm(algorithm.clone());
                let engine = DivTopK::new(source.clone(), same_cluster, config);
                let out = engine.run().unwrap();
                assert_eq!(out.total_score, want, "seed {seed} algo {algorithm:?}");
            }
        }
    }

    #[test]
    fn early_stop_triggers_on_clustered_prefix() {
        // 3 dissimilar high scorers followed by a long tail of low scores:
        // the engine must stop long before exhausting the stream.
        let mut items = vec![
            Scored::new((0, 0), s(100)),
            Scored::new((1, 1), s(90)),
            Scored::new((2, 2), s(80)),
        ];
        for i in 3..500u32 {
            items.push(Scored::new((i, i % 3), s(10)));
        }
        let source = IncrementalVecSource::new(items);
        let engine = DivTopK::new(source, same_cluster, DivSearchConfig::new(3));
        let out = engine.run().unwrap();
        assert_eq!(out.total_score, s(270));
        assert!(out.metrics.early_stopped);
        assert!(
            out.metrics.results_generated < 50,
            "pulled {} results, expected an early stop",
            out.metrics.results_generated
        );
    }

    #[test]
    fn no_premature_stop_when_all_seen_are_similar() {
        // The first k results are all mutually similar: D(S) has one
        // element; dissimilar gold nuggets hide at lower scores. The stop
        // conditions must keep pulling until they are found.
        let mut items: Vec<Scored<(u32, u32)>> =
            (0..10u32).map(|i| Scored::new((i, 0), s(50))).collect();
        items.push(Scored::new((10, 1), s(40)));
        items.push(Scored::new((11, 2), s(30)));
        let source = IncrementalVecSource::new(items);
        let engine = DivTopK::new(source, same_cluster, DivSearchConfig::new(3));
        let out = engine.run().unwrap();
        assert_eq!(out.total_score, s(120)); // 50 + 40 + 30
    }

    #[test]
    fn necessary_gate_reduces_inner_searches() {
        let items = make_items(7, 60, 6);
        let gated = DivTopK::new(
            IncrementalVecSource::from_unsorted(items.clone()),
            same_cluster,
            DivSearchConfig::new(5),
        )
        .run()
        .unwrap();
        let mut ungated_config = DivSearchConfig::new(5);
        ungated_config.use_necessary_gate = false;
        let ungated = DivTopK::new(
            IncrementalVecSource::from_unsorted(items),
            same_cluster,
            ungated_config,
        )
        .run()
        .unwrap();
        assert_eq!(gated.total_score, ungated.total_score);
        assert!(
            gated.metrics.inner_searches <= ungated.metrics.inner_searches,
            "gate must not increase searches ({} vs {})",
            gated.metrics.inner_searches,
            ungated.metrics.inner_searches
        );
    }

    #[test]
    fn component_cache_is_exact_and_saves_work() {
        for seed in 0..20 {
            let items = make_items(900 + seed, 40, 6);
            let want_out = DivTopK::new(
                IncrementalVecSource::from_unsorted(items.clone()),
                same_cluster,
                DivSearchConfig::new(5),
            )
            .run()
            .unwrap();
            let cached_out = DivTopK::new(
                IncrementalVecSource::from_unsorted(items),
                same_cluster,
                DivSearchConfig::new(5).with_component_cache(),
            )
            .run()
            .unwrap();
            assert_eq!(cached_out.total_score, want_out.total_score, "seed {seed}");
            assert_eq!(
                cached_out.metrics.results_generated, want_out.metrics.results_generated,
                "seed {seed}: stop point must be identical"
            );
            assert!(
                cached_out.metrics.search.astar_calls <= want_out.metrics.search.astar_calls,
                "seed {seed}: cache must not add solves ({} vs {})",
                cached_out.metrics.search.astar_calls,
                want_out.metrics.search.astar_calls
            );
        }
    }

    #[test]
    fn component_cache_with_bounding_source() {
        for seed in 40..50 {
            let items = make_items(seed, 30, 4);
            let want = offline_optimum(&items, 6);
            let out = DivTopK::new(
                BoundingVecSource::new(items),
                same_cluster,
                DivSearchConfig::new(6).with_component_cache(),
            )
            .run()
            .unwrap();
            assert_eq!(out.total_score, want, "seed {seed}");
        }
    }

    #[test]
    fn bound_decay_is_sound_and_reduces_searches() {
        for seed in 0..10 {
            let items = make_items(400 + seed, 26, 5);
            let want = offline_optimum(&items, 6);
            let plain = DivTopK::new(
                IncrementalVecSource::from_unsorted(items.clone()),
                same_cluster,
                DivSearchConfig::new(6),
            )
            .run()
            .unwrap();
            let throttled = DivTopK::new(
                IncrementalVecSource::from_unsorted(items),
                same_cluster,
                DivSearchConfig::new(6).with_bound_decay(0.05),
            )
            .run()
            .unwrap();
            assert_eq!(plain.total_score, want, "seed {seed}");
            assert_eq!(throttled.total_score, want, "seed {seed} (throttled)");
            assert!(
                throttled.metrics.inner_searches <= plain.metrics.inner_searches,
                "seed {seed}: throttle increased searches"
            );
        }
    }

    #[test]
    fn empty_stream_returns_empty() {
        let source = IncrementalVecSource::new(Vec::<Scored<(u32, u32)>>::new());
        let out = DivTopK::new(source, same_cluster, DivSearchConfig::new(3))
            .run()
            .unwrap();
        assert!(out.selected.is_empty());
        assert_eq!(out.total_score, Score::ZERO);
    }

    #[test]
    fn k_zero_returns_empty() {
        let items = make_items(1, 5, 2);
        let source = IncrementalVecSource::from_unsorted(items);
        let out = DivTopK::new(source, same_cluster, DivSearchConfig::new(0))
            .run()
            .unwrap();
        assert!(out.selected.is_empty());
    }

    #[test]
    fn threshold_similarity_integration() {
        // Numeric items; sim = 1 - |a-b|/100, τ = 0.8 → similar iff |a-b| < 20.
        let items = vec![
            Scored::new(100.0f64, s(10)),
            Scored::new(90.0, s(9)),
            Scored::new(50.0, s(8)),
            Scored::new(10.0, s(7)),
        ];
        let sim = ThresholdSimilarity::new(|a: &f64, b: &f64| 1.0 - (a - b).abs() / 100.0, 0.8);
        let source = IncrementalVecSource::new(items);
        let out = DivTopK::new(source, sim, DivSearchConfig::new(3))
            .run()
            .unwrap();
        // 100 and 90 are similar; best is {100, 50, 10} = 25.
        assert_eq!(out.total_score, s(25));
    }

    /// A bounding source whose reported bound *rises* mid-stream
    /// (violating Lemma 2's assumption). The engine clamps the bound to be
    /// non-increasing, so the answer must stay exact.
    struct LyingSource {
        items: Vec<Scored<(u32, u32)>>,
        cursor: usize,
    }

    impl crate::sources::ResultSource for LyingSource {
        type Item = (u32, u32);

        fn next_result(&mut self) -> Option<Scored<(u32, u32)>> {
            let item = self.items.get(self.cursor).cloned();
            self.cursor += 1;
            item
        }

        fn unseen_bound(&self) -> crate::sources::UnseenBound {
            // True bound over the remainder…
            let truth = self.items[self.cursor.min(self.items.len() - 1)..]
                .iter()
                .map(|r| r.score)
                .max()
                .unwrap_or(Score::ZERO);
            // …but report a bouncing, sometimes-higher value.
            let noise = if self.cursor % 3 == 0 { 500 } else { 0 };
            crate::sources::UnseenBound::At(truth + Score::from(noise))
        }
    }

    #[test]
    fn non_monotone_bounds_are_clamped_soundly() {
        for seed in 0..10 {
            let items = make_items(700 + seed, 20, 4);
            let want = offline_optimum(&items, 5);
            let mut sorted = items.clone();
            sorted.sort_by_key(|r| std::cmp::Reverse(r.score));
            let source = LyingSource {
                items: sorted,
                cursor: 0,
            };
            let out = DivTopK::new(source, same_cluster, DivSearchConfig::new(5))
                .run()
                .unwrap();
            assert_eq!(out.total_score, want, "seed {seed}");
        }
    }

    #[test]
    fn budget_errors_propagate() {
        let items = make_items(3, 40, 2);
        let config = DivSearchConfig::new(10).with_limits(SearchLimits {
            max_expansions: Some(1),
            ..SearchLimits::default()
        });
        let source = IncrementalVecSource::from_unsorted(items);
        let result = DivTopK::new(source, same_cluster, config).run();
        assert!(matches!(result, Err(SearchError::ResourceExhausted(_))));
    }
}
