//! Deterministic graph generators for tests and benchmarks.
//!
//! The paper's diversity graphs (built from document-similarity on keyword
//! results) have a characteristic shape: dense clusters of mutually similar
//! results, loosely joined through a few bridge results (cut points), plus
//! isolated singletons. [`planted_clusters`] reproduces that shape directly;
//! [`random_graph`] gives unstructured Erdős–Rényi controls;
//! [`star_chain`] is the paper's Fig. 2 worst case for greedy.

use crate::graph::{DiversityGraph, NodeId};
use crate::rng::Pcg;
use crate::score::Score;

/// Erdős–Rényi `G(n, p)` with scores drawn uniformly from `[1, 100]`.
pub fn random_graph(n: usize, p: f64, seed: u64) -> DiversityGraph {
    let mut rng = Pcg::new(seed ^ 0xD1CE_0F12);
    let mut scores: Vec<Score> = (0..n).map(|_| Score::from(rng.range(1, 101))).collect();
    scores.sort_by(|a, b| b.cmp(a));
    let mut edges = Vec::new();
    for i in 0..n as NodeId {
        for j in (i + 1)..n as NodeId {
            if rng.chance(p) {
                edges.push((i, j));
            }
        }
    }
    DiversityGraph::from_sorted_scores(scores, &edges)
}

/// The Fig. 2 family: one hub of score `m + 1`… actually the paper uses
/// scores 100 / 99 / 1 with `m = 100`; we scale the same ratios for any `m`.
///
/// * 1 hub `A` with score 100,
/// * `m` middle nodes `v_i` with score 99, each adjacent to `A`,
/// * `m` leaves `u_i` with score 1, each adjacent to its `v_i`.
///
/// With `k = m`, greedy takes `A` then `m − 1` leaves (score `100 + m − 1`)
/// while the optimum takes all middles (score `99 m`).
pub fn star_chain(m: usize) -> DiversityGraph {
    let mut scores = Vec::with_capacity(2 * m + 1);
    scores.push(Score::from(100u32)); // A, node 0
    scores.extend(std::iter::repeat_n(Score::from(99u32), m)); // v_i, nodes 1..=m
    scores.extend(std::iter::repeat_n(Score::from(1u32), m)); // u_i, nodes m+1..=2m
    let mut edges = Vec::with_capacity(2 * m);
    for i in 1..=m as NodeId {
        edges.push((0, i)); // A - v_i
        edges.push((i, i + m as NodeId)); // v_i - u_i
    }
    DiversityGraph::from_sorted_scores(scores, &edges)
}

/// Parameters for [`planted_clusters`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of dense clusters.
    pub clusters: usize,
    /// Nodes per cluster.
    pub cluster_size: usize,
    /// Probability of an edge inside a cluster (dense: e.g. 0.8).
    pub intra_p: f64,
    /// Number of bridge nodes; each joins two random clusters by one edge
    /// to a random member of each — these become cut points.
    pub bridges: usize,
    /// Number of isolated singleton nodes.
    pub singletons: usize,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            clusters: 8,
            cluster_size: 12,
            intra_p: 0.8,
            bridges: 6,
            singletons: 10,
        }
    }
}

/// Clustered graph mimicking keyword-result diversity graphs.
pub fn planted_clusters(config: &ClusterConfig, seed: u64) -> DiversityGraph {
    let mut rng = Pcg::new(seed ^ 0x0C10_57E2);
    let n = config.clusters * config.cluster_size + config.bridges + config.singletons;
    // Integer-valued scores keep cross-algorithm comparisons exact (no
    // float summation-order drift between ⊕ fold orders).
    let mut scores: Vec<Score> = (0..n).map(|_| Score::from(rng.range(1, 10_000))).collect();
    scores.sort_by(|a, b| b.cmp(a));
    // Assign cluster membership over arbitrary node ids (score order and
    // cluster structure should be uncorrelated, as in real result lists).
    let mut ids: Vec<NodeId> = (0..n as NodeId).collect();
    rng.shuffle(&mut ids);
    let mut cursor = 0usize;
    let mut clusters: Vec<&[NodeId]> = Vec::with_capacity(config.clusters);
    let mut edges = Vec::new();
    for _ in 0..config.clusters {
        let members = &ids[cursor..cursor + config.cluster_size];
        cursor += config.cluster_size;
        for a in 0..members.len() {
            for b in (a + 1)..members.len() {
                if rng.chance(config.intra_p) {
                    edges.push((members[a], members[b]));
                }
            }
        }
        clusters.push(members);
    }
    for _ in 0..config.bridges {
        let bridge = ids[cursor];
        cursor += 1;
        if config.clusters >= 1 {
            let c1 = rng.below(config.clusters as u32) as usize;
            let c2 = rng.below(config.clusters as u32) as usize;
            let m1 = *rng.choose(clusters[c1]).expect("non-empty cluster");
            edges.push((bridge, m1));
            if c2 != c1 {
                let m2 = *rng.choose(clusters[c2]).expect("non-empty cluster");
                edges.push((bridge, m2));
            }
        }
    }
    // Remaining ids (cursor..) are singletons: no edges.
    let edges: Vec<(u32, u32)> = edges.into_iter().filter(|&(a, b)| a != b).collect();
    DiversityGraph::from_sorted_scores(scores, &edges)
}

/// A path graph `0 - 1 - … - n-1` (every interior node is a cut point);
/// stresses cptree construction depth.
pub fn path_graph(n: usize, seed: u64) -> DiversityGraph {
    let mut rng = Pcg::new(seed ^ 0x9A7);
    let mut scores: Vec<Score> = (0..n).map(|_| Score::from(rng.range(1, 1000))).collect();
    scores.sort_by(|a, b| b.cmp(a));
    // The *path* is over a random permutation so score order and path order
    // are independent.
    let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
    rng.shuffle(&mut perm);
    let edges: Vec<(u32, u32)> = perm.windows(2).map(|w| (w[0], w[1])).collect();
    DiversityGraph::from_sorted_scores(scores, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use crate::greedy::greedy;

    #[test]
    fn random_graph_is_deterministic() {
        let a = random_graph(20, 0.3, 5);
        let b = random_graph(20, 0.3, 5);
        assert_eq!(a, b);
        let c = random_graph(20, 0.3, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn star_chain_matches_fig2() {
        // 201 nodes, 200 edges; greedy = 199, optimal = 9,900 at k = 100.
        let g = star_chain(100);
        assert_eq!(g.len(), 201);
        assert_eq!(g.edge_count(), 200);
        let (_, greedy_score) = greedy(&g, 100);
        assert_eq!(greedy_score, Score::from(199u32));
        // The optimum is all middle nodes.
        let middles: Vec<NodeId> = (1..=100).collect();
        assert!(g.is_independent_set(&middles));
        assert_eq!(g.score_of(&middles), Score::from(9900u32));
    }

    #[test]
    fn planted_clusters_shape() {
        let config = ClusterConfig::default();
        let g = planted_clusters(&config, 1);
        assert_eq!(
            g.len(),
            config.clusters * config.cluster_size + config.bridges + config.singletons
        );
        let comps = connected_components(&g);
        // At least the singletons are their own components.
        assert!(comps.len() >= config.singletons);
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn path_graph_shape() {
        let g = path_graph(50, 2);
        assert_eq!(g.len(), 50);
        assert_eq!(g.edge_count(), 49);
        assert_eq!(connected_components(&g).len(), 1);
    }
}
