//! Exhaustive exact search — the reference oracle for tests.
//!
//! Enumerates every independent set of size ≤ k by a straightforward
//! include/exclude recursion (implemented iteratively) with a cheap
//! score-sum pruning bound. Exponential; intended for graphs of up to a
//! few dozen nodes in tests and for validating the production algorithms.
//! Unlike `div-astar`, this oracle fills **every** size entry with the true
//! per-size optimum, making it strictly stronger than the prefix-max
//! contract — handy when tests want point-wise comparisons.

use crate::graph::{DiversityGraph, NodeId};
use crate::score::Score;
use crate::solution::SearchResult;

/// Exact per-size optima by exhaustive enumeration.
///
/// Fills `D.solution_i` with the true optimum for every feasible size
/// `i ≤ k`. Use only on small graphs (worst case `O(2^n)`).
pub fn exhaustive(g: &DiversityGraph, k: usize) -> SearchResult {
    let n = g.len();
    let mut out = SearchResult::empty(k);
    if n == 0 || k == 0 {
        return out;
    }
    // Suffix score sums for pruning: suffix[i] = sum of scores of nodes i..n.
    let mut suffix = vec![Score::ZERO; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1] + g.score(i as NodeId);
    }
    // Worst per-size optimum lower bound we could still improve: track the
    // minimum current entry score to prune hopeless branches.
    let mut stack: Vec<(NodeId, Vec<NodeId>, Score)> = vec![(0, Vec::new(), Score::ZERO)];
    while let Some((pos, chosen, score)) = stack.pop() {
        if pos as usize >= n || chosen.len() == k {
            continue;
        }
        // Prune: even taking every remaining node cannot beat the weakest
        // still-improvable entry... per-size enumeration needs care, so the
        // prune is conservative: skip only if no entry of any size
        // chosen.len()+1..=k could be improved.
        let optimistic = score + suffix[pos as usize];
        let improvable = ((chosen.len() + 1)..=k).any(|sz| {
            out.solution(sz).map(|s| s.score()) < Some(optimistic) || out.solution(sz).is_none()
        });
        if !improvable {
            continue;
        }
        // Branch 1: skip node `pos`.
        stack.push((pos + 1, chosen.clone(), score));
        // Branch 2: take node `pos` if compatible.
        let v = pos;
        let compatible = chosen.iter().all(|&u| !g.are_adjacent(u, v));
        if compatible {
            let mut next = chosen;
            next.push(v);
            let next_score = score + g.score(v);
            out.offer(next.clone(), next_score);
            stack.push((pos + 1, next, next_score));
        }
    }
    out
}

/// The best solution of size ≤ k (score only), via [`exhaustive`].
pub fn exhaustive_best(g: &DiversityGraph, k: usize) -> Score {
    exhaustive(g, k).best().score()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u32) -> Score {
        Score::from(v)
    }

    #[test]
    fn fig1_k2_and_k3() {
        let g = DiversityGraph::paper_fig1();
        let r2 = exhaustive(&g, 2);
        assert_eq!(r2.best().score(), s(18));
        assert_eq!(r2.best().nodes(), &[0, 1]); // {v1, v2}
        let r3 = exhaustive(&g, 3);
        assert_eq!(r3.best().score(), s(20));
        assert_eq!(r3.best().nodes(), &[2, 3, 4]); // {v3, v4, v5}
        // Per-size optima: D1 = 10, D2 = 18, D3 = 20.
        assert_eq!(r3.score(1), Some(s(10)));
        assert_eq!(r3.score(2), Some(s(18)));
        assert_eq!(r3.score(3), Some(s(20)));
        r3.assert_well_formed(Some(&g));
    }

    #[test]
    fn infeasible_sizes_stay_empty() {
        // Triangle: max independent set has 1 node.
        let g =
            DiversityGraph::from_sorted_scores(vec![s(3), s(2), s(1)], &[(0, 1), (0, 2), (1, 2)]);
        let r = exhaustive(&g, 3);
        assert_eq!(r.score(1), Some(s(3)));
        assert_eq!(r.score(2), None);
        assert_eq!(r.score(3), None);
        assert_eq!(r.max_feasible_size(), 1);
    }

    #[test]
    fn k_zero_returns_empty() {
        let g = DiversityGraph::paper_fig1();
        let r = exhaustive(&g, 0);
        assert_eq!(r.best().len(), 0);
    }

    #[test]
    fn independent_graph_takes_top_k() {
        let g = DiversityGraph::from_sorted_scores(vec![s(9), s(7), s(5), s(3)], &[]);
        let r = exhaustive(&g, 2);
        assert_eq!(r.best().nodes(), &[0, 1]);
        assert_eq!(r.best().score(), s(16));
    }

    #[test]
    fn per_size_optima_are_point_wise_exact() {
        // Star: center 0 (score 100) connected to 1..4 (scores 4,3,2,1).
        let g = DiversityGraph::from_sorted_scores(
            vec![s(100), s(4), s(3), s(2), s(1)],
            &[(0, 1), (0, 2), (0, 3), (0, 4)],
        );
        let r = exhaustive(&g, 4);
        assert_eq!(r.score(1), Some(s(100)));
        assert_eq!(r.score(2), Some(s(7))); // best *exactly-2*: {1,2}
        assert_eq!(r.score(3), Some(s(9))); // {1,2,3}
        assert_eq!(r.score(4), Some(s(10))); // {1,2,3,4}
        assert_eq!(r.best().score(), s(100));
    }
}
