//! Resource budgets for the exact searches.
//!
//! `div-astar` explores a worst-case exponential space (the problem is
//! NP-hard, Lemma 4). The paper's experiments report `INF` whenever a run
//! exhausted the 2 GB testbed; a reusable library must instead fail cleanly.
//! [`SearchLimits`] carries optional budgets that every search checks; when a
//! budget trips the search returns
//! [`SearchError::ResourceExhausted`](crate::error::SearchError).

use crate::error::{ExhaustedResource, SearchError};
use std::time::{Duration, Instant};

/// Optional budgets applied to a single `div-search-current` invocation.
///
/// The default has no limits (exact search runs to completion). All three
/// exact algorithms honor the limits; `div-dp`/`div-cut` pass them through to
/// every inner `div-astar` call and the budgets are shared across the whole
/// invocation (e.g. `max_expansions` counts expansions summed over all
/// components).
#[derive(Debug, Clone, Default)]
pub struct SearchLimits {
    /// Maximum number of entries simultaneously held in an A* heap.
    pub max_heap_entries: Option<usize>,
    /// Maximum number of heap pops (partial-solution expansions) in total.
    pub max_expansions: Option<u64>,
    /// Wall-clock budget for the whole invocation.
    pub time_budget: Option<Duration>,
    /// Approximate working-set byte budget (heap entries' solutions +
    /// result tables). Mirrors the paper's 2 GB `INF` cutoff.
    pub max_bytes: Option<usize>,
}

impl SearchLimits {
    /// No budgets: run to completion.
    pub fn unlimited() -> SearchLimits {
        SearchLimits::default()
    }

    /// A byte budget analogous to the paper's 2 GB testbed limit.
    pub fn with_max_bytes(bytes: usize) -> SearchLimits {
        SearchLimits {
            max_bytes: Some(bytes),
            ..SearchLimits::default()
        }
    }

    /// A wall-clock budget.
    pub fn with_time_budget(budget: Duration) -> SearchLimits {
        SearchLimits {
            time_budget: Some(budget),
            ..SearchLimits::default()
        }
    }

    /// Starts a ledger that tracks consumption against these budgets.
    pub fn start(&self) -> BudgetLedger {
        BudgetLedger {
            limits: self.clone(),
            started: Instant::now(),
            expansions: 0,
            bytes: 0,
            ticks: 0,
        }
    }
}

/// Running consumption against a [`SearchLimits`].
///
/// One ledger is shared per `div-search-current` invocation (threaded through
/// component/cptree recursion) so budgets are global, not per-subgraph.
#[derive(Debug)]
pub struct BudgetLedger {
    limits: SearchLimits,
    started: Instant,
    expansions: u64,
    bytes: usize,
    ticks: u32,
}

/// How often (in expansions) the deadline is polled; `Instant::now` is not
/// free, so we only check every few hundred expansions.
const DEADLINE_POLL_MASK: u32 = 0xFF;

impl BudgetLedger {
    /// Records one heap pop; errors if the expansion or deadline budget trips.
    #[inline]
    pub fn record_expansion(&mut self) -> Result<(), SearchError> {
        self.expansions += 1;
        if let Some(max) = self.limits.max_expansions {
            if self.expansions > max {
                return Err(SearchError::ResourceExhausted(
                    ExhaustedResource::Expansions,
                ));
            }
        }
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks & DEADLINE_POLL_MASK == 0 {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Checks the heap-entry budget against the current heap size.
    #[inline]
    pub fn check_heap(&self, heap_len: usize) -> Result<(), SearchError> {
        if let Some(max) = self.limits.max_heap_entries {
            if heap_len > max {
                return Err(SearchError::ResourceExhausted(
                    ExhaustedResource::HeapEntries,
                ));
            }
        }
        Ok(())
    }

    /// Adds `delta` estimated live bytes; errors if the byte budget trips.
    #[inline]
    pub fn add_bytes(&mut self, delta: usize) -> Result<(), SearchError> {
        self.bytes = self.bytes.saturating_add(delta);
        if let Some(max) = self.limits.max_bytes {
            if self.bytes > max {
                return Err(SearchError::ResourceExhausted(ExhaustedResource::Bytes));
            }
        }
        Ok(())
    }

    /// Releases `delta` estimated live bytes.
    #[inline]
    pub fn release_bytes(&mut self, delta: usize) {
        self.bytes = self.bytes.saturating_sub(delta);
    }

    /// Unconditionally polls the wall clock against the deadline.
    pub fn check_deadline(&self) -> Result<(), SearchError> {
        if let Some(budget) = self.limits.time_budget {
            if self.started.elapsed() > budget {
                return Err(SearchError::ResourceExhausted(ExhaustedResource::Deadline));
            }
        }
        Ok(())
    }

    /// Total expansions recorded so far.
    pub fn expansions(&self) -> u64 {
        self.expansions
    }

    /// Estimated live bytes currently accounted.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let mut ledger = SearchLimits::unlimited().start();
        for _ in 0..100_000 {
            ledger.record_expansion().unwrap();
        }
        ledger.check_heap(usize::MAX - 1).unwrap();
        ledger.add_bytes(1 << 40).unwrap();
    }

    #[test]
    fn expansion_budget_trips() {
        let limits = SearchLimits {
            max_expansions: Some(10),
            ..SearchLimits::default()
        };
        let mut ledger = limits.start();
        for _ in 0..10 {
            ledger.record_expansion().unwrap();
        }
        assert_eq!(
            ledger.record_expansion(),
            Err(SearchError::ResourceExhausted(
                ExhaustedResource::Expansions
            ))
        );
    }

    #[test]
    fn heap_budget_trips() {
        let limits = SearchLimits {
            max_heap_entries: Some(4),
            ..SearchLimits::default()
        };
        let ledger = limits.start();
        ledger.check_heap(4).unwrap();
        assert!(ledger.check_heap(5).is_err());
    }

    #[test]
    fn byte_budget_trips_and_releases() {
        let mut ledger = SearchLimits::with_max_bytes(100).start();
        ledger.add_bytes(80).unwrap();
        ledger.release_bytes(50);
        ledger.add_bytes(60).unwrap();
        assert!(ledger.add_bytes(20).is_err());
    }

    #[test]
    fn deadline_trips() {
        let limits = SearchLimits::with_time_budget(Duration::from_millis(0));
        let ledger = limits.start();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(
            ledger.check_deadline(),
            Err(SearchError::ResourceExhausted(ExhaustedResource::Deadline))
        );
    }
}
