//! Graph compression by dominance (Lemma 7, §7).
//!
//! A node `v_i` can be deleted when some neighbor `v_j` *dominates* it:
//! `score(v_j) ≥ score(v_i)` and `N[v_j] ⊆ N[v_i]` (closed neighborhoods).
//! Any solution using `v_i` can swap in `v_j` at no loss, so per-size optima
//! are unchanged. The paper applies this before cut-point decomposition to
//! create more cut points (e.g. Fig. 8 → Fig. 9 removes `w1`, exposing `w2`).
//!
//! Removals are applied **sequentially** against the current alive set
//! (two nodes with identical closed neighborhoods and scores dominate each
//! other; removing both would be wrong), and passes repeat to a fixpoint
//! since each removal can enable more.
//!
//! When the graph carries an adjacency bitmap (DESIGN.md §7), the
//! neighborhood-inclusion test `N[v_j] ⊆ N[v_i]` runs word-at-a-time:
//! `row(v_j) ∧ alive ∧ ¬row(v_i)` must be empty apart from `v_i` itself —
//! `O(n/64)` per candidate instead of a probe per neighbor.

use crate::graph::{DiversityGraph, NodeId};
use crate::nodeset::DenseNodeSet;

/// Returns the ids of nodes that survive compression, ascending.
///
/// `g` minus the returned set has the same per-size optimal solutions for
/// every size, by Lemma 7 applied inductively.
pub fn compress(g: &DiversityGraph) -> Vec<NodeId> {
    let n = g.len();
    let mut alive = DenseNodeSet::from_nodes(n, 0..n as NodeId);
    loop {
        let mut changed = false;
        // Visit lowest scores first (highest ids): dominated nodes are
        // usually cheap leaves, and removing them first exposes more.
        for vi in (0..n as NodeId).rev() {
            if !alive.contains(vi) {
                continue;
            }
            if find_dominator(g, &alive, vi).is_some() {
                alive.remove(vi);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    alive.to_sorted_vec()
}

/// Finds an alive neighbor of `vi` that dominates it, if any.
fn find_dominator(g: &DiversityGraph, alive: &DenseNodeSet, vi: NodeId) -> Option<NodeId> {
    g.neighbors(vi)
        .iter()
        .copied()
        .find(|&vj| alive.contains(vj) && g.score(vj) >= g.score(vi) && dominates(g, alive, vj, vi))
}

/// True iff every alive neighbor of `vj` other than `vi` also neighbors
/// `vi` (the closed-neighborhood inclusion of Lemma 7, given `vj ≈ vi` and
/// the score comparison already checked by the caller).
fn dominates(g: &DiversityGraph, alive: &DenseNodeSet, vj: NodeId, vi: NodeId) -> bool {
    if let (Some(row_j), Some(row_i)) = (g.adjacency_row(vj), g.adjacency_row(vi)) {
        // Word-level: offenders are alive neighbors of vj that vi misses.
        // vi itself always shows up in row_j (vj ≈ vi) and never in row_i
        // (no self-loops), so mask its bit out.
        let vi_word = (vi / 64) as usize;
        let vi_bit = 1u64 << (vi % 64);
        for (w, ((&rj, &ri), &al)) in row_j.iter().zip(row_i).zip(alive.words()).enumerate() {
            let mut offenders = rj & al & !ri;
            if w == vi_word {
                offenders &= !vi_bit;
            }
            if offenders != 0 {
                return false;
            }
        }
        return true;
    }
    // Fallback without a bitmap: probe per neighbor.
    for &w in g.neighbors(vj) {
        if w == vi || !alive.contains(w) {
            continue;
        }
        if !g.are_adjacent(vi, w) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use crate::score::Score;
    use crate::testgen;

    fn s(v: u32) -> Score {
        Score::from(v)
    }

    #[test]
    fn empty_and_edgeless_graphs_untouched() {
        let g = DiversityGraph::from_sorted_scores(vec![], &[]);
        assert!(compress(&g).is_empty());
        let g = DiversityGraph::from_sorted_scores(vec![s(3), s(2)], &[]);
        assert_eq!(compress(&g), vec![0, 1]);
    }

    #[test]
    fn pendant_dominated_by_stronger_neighbor() {
        // 0(10) - 1(2): N[0] = {0,1} ⊆ N[1] = {0,1} and score(0) ≥ score(1)
        // → 1 is dominated by 0 and removed; 0 survives.
        let g = DiversityGraph::from_sorted_scores(vec![s(10), s(2)], &[(0, 1)]);
        assert_eq!(compress(&g), vec![0]);
    }

    #[test]
    fn mutual_domination_keeps_exactly_one() {
        // Twin nodes: same score, same closed neighborhood (adjacent pair).
        let g = DiversityGraph::from_sorted_scores(vec![s(5), s(5)], &[(0, 1)]);
        let kept = compress(&g);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn no_removal_when_neighbor_has_extra_edges() {
        // 0(10)-1(5), 0(10)-2(1): can 1 be removed? Dominator must be a
        // neighbor of 1 — only 0; N[0] = {0,1,2} ⊄ N[1] = {0,1}. No.
        let g = DiversityGraph::from_sorted_scores(vec![s(10), s(5), s(1)], &[(0, 1), (0, 2)]);
        // 2 IS dominated by 0? N[0] = {0,1,2} ⊄ N[2] = {0,2}. No.
        // Nothing removable.
        assert_eq!(compress(&g), vec![0, 1, 2]);
    }

    #[test]
    fn triangle_with_descending_scores_collapses() {
        // Triangle 0(9),1(5),2(3): 2 dominated by 0 (N[0]=N[2]={0,1,2}),
        // then 1 dominated by 0 → only 0 survives.
        let g =
            DiversityGraph::from_sorted_scores(vec![s(9), s(5), s(3)], &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(compress(&g), vec![0]);
    }

    #[test]
    fn fig8_w1_is_removed() {
        // Paper Example 4: w1 is dominated by w2 (w2 ∈ N(w1),
        // score(w2)=13 ≥ 12, and every neighbor of w2 neighbors w1).
        // Minimal sub-instance around w1/w2: w1(12)–w2(13), both adjacent
        // to x(8) and y(9); w1 additionally adjacent to z(6).
        let scores = [s(12), s(13), s(8), s(9), s(6)];
        let edges = [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (0, 4)];
        let (g, perm) = DiversityGraph::from_unsorted_scores(&scores, &edges);
        let kept = compress(&g);
        // w1 (original index 0) must be gone.
        let w1_new = perm.iter().position(|&o| o == 0).unwrap() as NodeId;
        assert!(!kept.contains(&w1_new));
    }

    #[test]
    fn compression_preserves_per_size_optima() {
        for seed in 0..40 {
            let g = testgen::random_graph(13, 0.35, seed);
            let kept = compress(&g);
            let (cg, map) = g.induced_subgraph(&kept);
            let want = exhaustive(&g, 6);
            let got = exhaustive(&cg, 6).map_nodes(&map);
            for i in 0..=6 {
                assert_eq!(
                    got.score(i),
                    want.score(i),
                    "seed {seed} size {i}: compression changed the optimum"
                );
                if let Some(sol) = got.solution(i) {
                    assert!(g.is_independent_set(&sol.nodes()));
                }
            }
        }
    }

    #[test]
    fn word_level_and_probe_paths_agree() {
        // The bitmap-free fallback must remove exactly the same nodes.
        for seed in 0..30 {
            let g = testgen::random_graph(40, 0.3, 700 + seed);
            let mut stripped = g.clone();
            stripped.strip_adjacency_bitmap();
            assert_eq!(compress(&g), compress(&stripped), "seed {seed}");
        }
    }

    #[test]
    fn compression_is_idempotent() {
        for seed in 0..10 {
            let g = testgen::random_graph(15, 0.3, seed);
            let kept = compress(&g);
            let (cg, _) = g.induced_subgraph(&kept);
            let kept2 = compress(&cg);
            assert_eq!(kept2.len(), cg.len(), "second pass removed more");
        }
    }
}
