//! K-way merging of result sources — the sharded serving tier's core.
//!
//! A production engine partitions its corpus into `S` shards and runs one
//! top-k source per shard. [`MergedSource`] recombines them into a single
//! [`ResultSource`] that the `div-search` framework ([`crate::framework`])
//! consumes unchanged, so **every exactness guarantee (Lemmas 1–3) carries
//! over to the sharded engine for free**. The two-line soundness argument:
//!
//! 1. The union of the shards' unseen result sets *is* the merged source's
//!    unseen result set (plus any heads buffered here, which are accounted
//!    for explicitly), and
//! 2. an upper bound for a union of sets is the **max** of per-set upper
//!    bounds — so `unseen_bound() = max_i bound_i` is a valid bound, and it
//!    is monotone whenever the per-shard bounds are.
//!
//! ## The buffered-head subtlety
//!
//! A k-way merge must hold one look-ahead head per source. Pulling that head
//! moves it out of the inner source's "not yet returned" set — the shard's
//! own `unseen_bound()` **no longer covers it** (a bounding source's
//! threshold can drop below an already-emitted score). A naive
//! `max_i bound_i` is therefore *unsound* for anything buffered here; the
//! merged bound takes the max over per-source bounds **and** buffered head
//! scores. Exhausted sources are excluded entirely — their reported bound
//! (e.g. an incremental source's last emitted score) describes an empty
//! unseen set and would only loosen the merge.
//!
//! ## Two merge disciplines
//!
//! * [`MergedSource::incremental`] — for sources honoring the incremental
//!   contract (non-increasing emission). The merge emits the globally
//!   sorted sequence, so it is itself a valid incremental source and
//!   reports the classic "score of the last emitted result" bound. Merging
//!   per-shard posting-list scans this way is **behaviourally identical**
//!   to scanning the unsharded list (property-tested in `tests/engine.rs`).
//! * [`MergedSource::bounding`] — for arbitrary-order (bounding) sources
//!   such as per-shard threshold algorithms. Emits the best buffered head
//!   first and reports the head-aware max bound above, clamped to be
//!   non-increasing (running min) so downstream consumers see a monotone
//!   `u` even if a shard's bound jitters.
//!
//! ## Tombstone filtering (the live-update hook)
//!
//! [`MergedSource::incremental_filtered`] / [`MergedSource::bounding_filtered`]
//! take a predicate and silently drop every merged result it rejects — the
//! segmented live-update index (DESIGN.md §9) uses this to hide tombstoned
//! (deleted) documents at read time. Filtering **never touches the bound
//! logic**: dropping a result only shrinks the unseen set, and an upper
//! bound for a set bounds every subset, so the unfiltered bound stays
//! sound verbatim. In incremental mode the last-*emitted* score is the
//! bound (skipped results do not update it), which keeps the observable
//! emission/bound sequence byte-identical to a merge over sources that
//! never contained the filtered items at all — the rebuild-equivalence
//! property the segment suite pins.
//!
//! All ties are broken by the item itself (then by source slot), which is
//! why `S::Item: Ord` is required: repeated and re-sharded runs must yield
//! identical emission orders (see DESIGN.md §8 on determinism).

use crate::score::Score;
use crate::sources::{ResultSource, Scored, UnseenBound};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A buffered head: the next result of source `slot`.
#[derive(Debug)]
struct Head<T> {
    score: Score,
    item: T,
    slot: usize,
}

impl<T: Ord> PartialEq for Head<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<T: Ord> Eq for Head<T> {}

impl<T: Ord> PartialOrd for Head<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for Head<T> {
    /// Max-heap priority: highest score first; ties broken by **smallest**
    /// item, then smallest slot, so the pop order is deterministic and
    /// matches a globally sorted `(score desc, item asc)` sequence.
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .cmp(&other.score)
            .then_with(|| other.item.cmp(&self.item))
            .then_with(|| other.slot.cmp(&self.slot))
    }
}

/// Which bound discipline the merge uses (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MergeKind {
    Incremental,
    Bounding,
}

/// A binary-heap k-way merge of `S` result sources into one.
///
/// ```
/// use divtopk_core::merge::MergedSource;
/// use divtopk_core::prelude::*;
///
/// // Two "shards", each already sorted (incremental contract).
/// let a = IncrementalVecSource::new(vec![
///     Scored::new(10u32, Score::new(9.0)),
///     Scored::new(12, Score::new(4.0)),
/// ]);
/// let b = IncrementalVecSource::new(vec![
///     Scored::new(11u32, Score::new(7.0)),
/// ]);
/// let mut merged = MergedSource::incremental(vec![a, b]);
/// assert_eq!(merged.next_result().unwrap().item, 10);
/// assert_eq!(merged.next_result().unwrap().item, 11);
/// // The merged stream is itself incremental: bound = last emitted.
/// assert_eq!(merged.unseen_bound(), UnseenBound::At(Score::new(7.0)));
/// assert_eq!(merged.next_result().unwrap().item, 12);
/// assert!(merged.next_result().is_none());
/// ```
#[derive(Debug)]
pub struct MergedSource<S: ResultSource, F = fn(&<S as ResultSource>::Item) -> bool>
where
    S::Item: Ord,
    F: Fn(&S::Item) -> bool,
{
    sources: Vec<S>,
    /// True once `sources[i]` returned `None`; its reported bound then
    /// describes an empty set and is excluded from the merge bound.
    exhausted: Vec<bool>,
    heads: BinaryHeap<Head<S::Item>>,
    kind: MergeKind,
    /// Items this predicate rejects are dropped instead of emitted
    /// (tombstone filtering; `None` = emit everything).
    filter: Option<F>,
    /// Score of the last result this merge emitted (incremental bound).
    last_emitted: Option<Score>,
    /// Running-min clamp for the bounding discipline: the merged bound
    /// never rises, even if an inner source misbehaves (Lemma 2's
    /// assumption, enforced here rather than trusted).
    clamp: Option<Score>,
    /// Bound as of the last state change (recomputed in the constructor
    /// and after every [`MergedSource::next_result`]).
    cached_bound: UnseenBound,
}

impl<S: ResultSource> MergedSource<S>
where
    S::Item: Ord,
{
    /// Merges **incremental** sources (each must emit non-increasing
    /// scores; violations panic in debug builds). The merged emission is
    /// globally sorted `(score desc, item asc)`, and the unseen bound is
    /// the score of the last emitted result — exactly the behaviour of a
    /// single incremental source over the concatenated data.
    pub fn incremental(sources: Vec<S>) -> MergedSource<S> {
        MergedSource::with_kind(sources, MergeKind::Incremental, None)
    }

    /// Merges **bounding** sources (arbitrary emission order, explicit
    /// unseen bounds). Emits the highest-scored buffered head first and
    /// reports `max(max_i bound_i, buffered heads)` clamped non-increasing.
    pub fn bounding(sources: Vec<S>) -> MergedSource<S> {
        MergedSource::with_kind(sources, MergeKind::Bounding, None)
    }
}

impl<S: ResultSource, F> MergedSource<S, F>
where
    S::Item: Ord,
    F: Fn(&S::Item) -> bool,
{
    /// [`MergedSource::incremental`] with a tombstone filter: merged
    /// results rejected by `filter` are dropped without being emitted and
    /// **without updating the last-emitted bound**, so the observable
    /// emission/bound sequence equals that of a merge over sources that
    /// never contained the rejected items (see the module docs).
    pub fn incremental_filtered(sources: Vec<S>, filter: F) -> MergedSource<S, F> {
        MergedSource::with_kind(sources, MergeKind::Incremental, Some(filter))
    }

    /// [`MergedSource::bounding`] with a tombstone filter. Rejected
    /// results are dropped; the bound formula is unchanged (dropping a
    /// result only shrinks the unseen set, so the unfiltered bound stays
    /// sound) and still clamped non-increasing.
    pub fn bounding_filtered(sources: Vec<S>, filter: F) -> MergedSource<S, F> {
        MergedSource::with_kind(sources, MergeKind::Bounding, Some(filter))
    }

    fn with_kind(mut sources: Vec<S>, kind: MergeKind, filter: Option<F>) -> MergedSource<S, F> {
        let mut exhausted = vec![false; sources.len()];
        let mut heads = BinaryHeap::with_capacity(sources.len());
        for (slot, source) in sources.iter_mut().enumerate() {
            match source.next_result() {
                Some(r) => heads.push(Head {
                    score: r.score,
                    item: r.item,
                    slot,
                }),
                None => exhausted[slot] = true,
            }
        }
        let mut merged = MergedSource {
            sources,
            exhausted,
            heads,
            kind,
            filter,
            last_emitted: None,
            clamp: None,
            cached_bound: UnseenBound::Unbounded,
        };
        merged.recompute_bound();
        merged
    }

    /// Number of underlying sources (shards).
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// True when every underlying source is exhausted and no head remains.
    pub fn is_exhausted(&self) -> bool {
        self.heads.is_empty()
    }

    fn recompute_bound(&mut self) {
        let bound = match self.kind {
            MergeKind::Incremental => match self.last_emitted {
                Some(s) => UnseenBound::At(s),
                None => UnseenBound::Unbounded,
            },
            MergeKind::Bounding => {
                // max over buffered heads and live per-source bounds; an
                // Unbounded live source makes the whole merge unbounded
                // (unless the running-min clamp already pinned a value —
                // a once-valid bound stays valid for a shrinking set).
                let mut max = Score::ZERO;
                let mut unbounded = false;
                for head in &self.heads {
                    max = max.max(head.score);
                }
                for (slot, source) in self.sources.iter().enumerate() {
                    if self.exhausted[slot] {
                        continue;
                    }
                    match source.unseen_bound() {
                        UnseenBound::At(b) => max = max.max(b),
                        UnseenBound::Unbounded => unbounded = true,
                    }
                }
                match (unbounded, self.clamp) {
                    (true, None) => UnseenBound::Unbounded,
                    (true, Some(c)) => UnseenBound::At(c),
                    (false, clamp) => {
                        let clamped = match clamp {
                            Some(c) => c.min(max),
                            None => max,
                        };
                        self.clamp = Some(clamped);
                        UnseenBound::At(clamped)
                    }
                }
            }
        };
        self.cached_bound = bound;
    }
}

impl<S: ResultSource, F> ResultSource for MergedSource<S, F>
where
    S::Item: Ord,
    F: Fn(&S::Item) -> bool,
{
    type Item = S::Item;

    fn next_result(&mut self) -> Option<Scored<S::Item>> {
        loop {
            let head = self.heads.pop()?;
            match self.sources[head.slot].next_result() {
                Some(r) => {
                    debug_assert!(
                        self.kind != MergeKind::Incremental || r.score <= head.score,
                        "incremental merge requires per-source non-increasing scores \
                         ({} after {})",
                        r.score,
                        head.score
                    );
                    self.heads.push(Head {
                        score: r.score,
                        item: r.item,
                        slot: head.slot,
                    });
                }
                None => self.exhausted[head.slot] = true,
            }
            debug_assert!(
                self.kind != MergeKind::Incremental
                    || self.last_emitted.is_none_or(|prev| head.score <= prev),
                "incremental merge emitted an increasing score"
            );
            if self.filter.as_ref().is_some_and(|keep| !keep(&head.item)) {
                // Tombstone-filtered: drop without emitting. The incremental
                // last-emitted bound must not move (the rebuilt stream never
                // saw this item); in bounding mode the dropped head no
                // longer buffers here, so the bound may legitimately
                // tighten — recompute (the running-min clamp keeps it
                // monotone either way).
                if self.kind == MergeKind::Bounding {
                    self.recompute_bound();
                }
                continue;
            }
            self.last_emitted = Some(head.score);
            self.recompute_bound();
            return Some(Scored::new(head.item, head.score));
        }
    }

    fn unseen_bound(&self) -> UnseenBound {
        self.cached_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg;
    use crate::sources::{BoundingVecSource, IncrementalVecSource};

    fn s(v: u32) -> Score {
        Score::from(v)
    }

    /// Splits `items` round-robin into `n` shards.
    fn split<T: Clone>(items: &[Scored<T>], n: usize) -> Vec<Vec<Scored<T>>> {
        let mut shards = vec![Vec::new(); n];
        for (i, item) in items.iter().enumerate() {
            shards[i % n].push(item.clone());
        }
        shards
    }

    #[test]
    fn incremental_merge_equals_global_sort_with_doc_tiebreak() {
        let mut rng = Pcg::new(42);
        for trial in 0..50 {
            let n = 1 + rng.below(40) as usize;
            let shards_n = 1 + rng.below(6) as usize;
            // Deliberately collide scores so ties are exercised.
            let mut items: Vec<Scored<u32>> = (0..n as u32)
                .map(|id| Scored::new(id, Score::from(rng.below(8))))
                .collect();
            items.sort_by(|a, b| b.score.cmp(&a.score).then(a.item.cmp(&b.item)));
            let sources: Vec<IncrementalVecSource<u32>> = split(&items, shards_n)
                .into_iter()
                .map(IncrementalVecSource::new)
                .collect();
            let mut merged = MergedSource::incremental(sources);
            let mut got = Vec::new();
            let mut last_bound = None;
            while let Some(r) = merged.next_result() {
                // Incremental bound: exactly the last emitted score.
                assert_eq!(merged.unseen_bound(), UnseenBound::At(r.score));
                if let Some(prev) = last_bound {
                    assert!(r.score <= prev, "trial {trial}: emission not sorted");
                }
                last_bound = Some(r.score);
                got.push(r);
            }
            assert_eq!(got, items, "trial {trial}: merged order != global order");
        }
    }

    #[test]
    fn bounding_merge_bound_is_sound_and_monotone() {
        let mut rng = Pcg::new(7);
        for trial in 0..50 {
            let n = 1 + rng.below(30) as usize;
            let shards_n = 1 + rng.below(5) as usize;
            let items: Vec<Scored<u32>> = (0..n as u32)
                .map(|id| Scored::new(id, Score::from(rng.below(1000))))
                .collect();
            let sources: Vec<BoundingVecSource<u32>> = split(&items, shards_n)
                .into_iter()
                .map(BoundingVecSource::new)
                .collect();
            let mut merged = MergedSource::bounding(sources);
            let mut emitted: Vec<Scored<u32>> = Vec::new();
            let mut prev_bound = f64::INFINITY;
            loop {
                let UnseenBound::At(bound) = merged.unseen_bound() else {
                    panic!("bounding merge must always report a bound");
                };
                assert!(
                    bound.get() <= prev_bound,
                    "trial {trial}: bound rose {prev_bound} -> {bound}"
                );
                prev_bound = bound.get();
                // Soundness: the bound covers every not-yet-returned item.
                let returned: std::collections::BTreeSet<u32> =
                    emitted.iter().map(|r| r.item).collect();
                for it in &items {
                    if !returned.contains(&it.item) {
                        assert!(
                            it.score <= bound,
                            "trial {trial}: unseen item {} (score {}) above bound {bound}",
                            it.item,
                            it.score
                        );
                    }
                }
                match merged.next_result() {
                    Some(r) => emitted.push(r),
                    None => break,
                }
            }
            assert_eq!(emitted.len(), items.len());
        }
    }

    #[test]
    fn exhausted_sources_stop_loosening_the_bound() {
        // Shard A emits one high result then exhausts; its incremental
        // bound stays at 9 forever. A sound-but-naive max over per-source
        // bounds would be pinned at 9; excluding exhausted sources lets the
        // merged bound keep tracking the live shard.
        let a = IncrementalVecSource::new(vec![Scored::new(0u32, s(9))]);
        let b = IncrementalVecSource::new(vec![
            Scored::new(1u32, s(5)),
            Scored::new(2, s(3)),
            Scored::new(3, s(1)),
        ]);
        let mut merged = MergedSource::bounding(vec![a, b]);
        assert_eq!(merged.next_result().unwrap().item, 0);
        // A is exhausted; bound must fall to B's remainder, not stick at 9.
        assert_eq!(merged.next_result().unwrap().item, 1);
        let UnseenBound::At(bound) = merged.unseen_bound() else {
            panic!("bounded");
        };
        assert!(
            bound <= s(3),
            "bound {bound} still pinned by exhausted shard"
        );
    }

    #[test]
    fn ties_pop_smallest_item_first() {
        let a = IncrementalVecSource::new(vec![Scored::new(7u32, s(5)), Scored::new(9, s(5))]);
        let b = IncrementalVecSource::new(vec![Scored::new(2u32, s(5)), Scored::new(8, s(5))]);
        let mut merged = MergedSource::incremental(vec![a, b]);
        let order: Vec<u32> = std::iter::from_fn(|| merged.next_result())
            .map(|r| r.item)
            .collect();
        assert_eq!(order, vec![2, 7, 8, 9]);
    }

    #[test]
    fn empty_and_single_source_edge_cases() {
        let mut empty: MergedSource<IncrementalVecSource<u32>> =
            MergedSource::incremental(Vec::new());
        assert!(empty.next_result().is_none());
        assert!(empty.is_exhausted());

        let mut empty_bounding: MergedSource<BoundingVecSource<u32>> =
            MergedSource::bounding(Vec::new());
        assert_eq!(empty_bounding.unseen_bound(), UnseenBound::At(Score::ZERO));
        assert!(empty_bounding.next_result().is_none());

        // A single-source merge is a transparent wrapper (same emission).
        let items = vec![Scored::new(1u32, s(8)), Scored::new(2, s(4))];
        let mut single = MergedSource::incremental(vec![IncrementalVecSource::new(items.clone())]);
        assert_eq!(single.num_sources(), 1);
        let got: Vec<Scored<u32>> = std::iter::from_fn(|| single.next_result()).collect();
        assert_eq!(got, items);
    }

    /// Filtered incremental merges behave exactly like a merge over
    /// sources that never contained the filtered items: same emission,
    /// same observable bound after each emission.
    #[test]
    fn filtered_incremental_merge_equals_merge_of_survivors() {
        let mut rng = Pcg::new(23);
        for trial in 0..50 {
            let n = 1 + rng.below(40) as usize;
            let shards_n = 1 + rng.below(5) as usize;
            let mut items: Vec<Scored<u32>> = (0..n as u32)
                .map(|id| Scored::new(id, Score::from(rng.below(9))))
                .collect();
            items.sort_by(|a, b| b.score.cmp(&a.score).then(a.item.cmp(&b.item)));
            // Tombstone roughly a third of the items.
            let dead: std::collections::BTreeSet<u32> =
                (0..n as u32).filter(|_| rng.chance(0.35)).collect();
            let survivors: Vec<Scored<u32>> = items
                .iter()
                .filter(|r| !dead.contains(&r.item))
                .cloned()
                .collect();
            let full_sources: Vec<IncrementalVecSource<u32>> = split(&items, shards_n)
                .into_iter()
                .map(IncrementalVecSource::new)
                .collect();
            let survivor_sources: Vec<IncrementalVecSource<u32>> = split(&survivors, shards_n)
                .into_iter()
                .map(IncrementalVecSource::new)
                .collect();
            let mut filtered =
                MergedSource::incremental_filtered(full_sources, |item: &u32| !dead.contains(item));
            let mut clean = MergedSource::incremental(survivor_sources);
            loop {
                let a = filtered.next_result();
                let b = clean.next_result();
                assert_eq!(a, b, "trial {trial}: emission diverged");
                // The *observable* bound sequence must agree too — that is
                // what makes the framework run byte-identical.
                assert_eq!(
                    filtered.unseen_bound(),
                    clean.unseen_bound(),
                    "trial {trial}: bound diverged"
                );
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// Filtered bounding merges stay sound (every live unseen item is
    /// covered) and monotone, even when the filtered item carried the
    /// highest buffered head.
    #[test]
    fn filtered_bounding_merge_is_sound_and_monotone() {
        let mut rng = Pcg::new(77);
        for trial in 0..50 {
            let n = 1 + rng.below(30) as usize;
            let shards_n = 1 + rng.below(4) as usize;
            let items: Vec<Scored<u32>> = (0..n as u32)
                .map(|id| Scored::new(id, Score::from(rng.below(1000))))
                .collect();
            // Always tombstone the single highest-scored item (the
            // bound-carrying head) plus a random sprinkle.
            let top = items.iter().max().unwrap().item;
            let dead: std::collections::BTreeSet<u32> = items
                .iter()
                .map(|r| r.item)
                .filter(|&id| id == top || rng.chance(0.25))
                .collect();
            let sources: Vec<BoundingVecSource<u32>> = split(&items, shards_n)
                .into_iter()
                .map(BoundingVecSource::new)
                .collect();
            let mut merged =
                MergedSource::bounding_filtered(sources, |item: &u32| !dead.contains(item));
            let mut emitted: std::collections::BTreeSet<u32> = Default::default();
            let mut prev_bound = f64::INFINITY;
            loop {
                let UnseenBound::At(bound) = merged.unseen_bound() else {
                    panic!("bounding merge must always report a bound");
                };
                assert!(
                    bound.get() <= prev_bound,
                    "trial {trial}: bound rose {prev_bound} -> {bound}"
                );
                prev_bound = bound.get();
                for it in &items {
                    if !dead.contains(&it.item) && !emitted.contains(&it.item) {
                        assert!(
                            it.score <= bound,
                            "trial {trial}: live unseen item {} above bound {bound}",
                            it.item
                        );
                    }
                }
                match merged.next_result() {
                    Some(r) => {
                        assert!(
                            !dead.contains(&r.item),
                            "trial {trial}: emitted a tombstone"
                        );
                        emitted.insert(r.item);
                    }
                    None => break,
                }
            }
            let live = items.iter().filter(|r| !dead.contains(&r.item)).count();
            assert_eq!(emitted.len(), live, "trial {trial}: lost live items");
        }
    }

    /// A filter that rejects everything yields an empty, well-behaved
    /// stream (the all-documents-deleted edge case).
    #[test]
    fn filter_rejecting_everything_yields_empty_stream() {
        let a = IncrementalVecSource::new(vec![Scored::new(0u32, s(9)), Scored::new(1, s(4))]);
        let mut merged = MergedSource::incremental_filtered(vec![a], |_: &u32| false);
        assert_eq!(merged.unseen_bound(), UnseenBound::Unbounded);
        assert!(merged.next_result().is_none());
        assert!(merged.is_exhausted());
        // Never emitted anything → the incremental bound never materialized,
        // exactly like a scan over an empty posting list.
        assert_eq!(merged.unseen_bound(), UnseenBound::Unbounded);
    }

    /// The merged source is consumed by the framework unchanged and yields
    /// the exact diversified optimum of the union of shards.
    #[test]
    fn framework_over_merged_shards_is_exact() {
        use crate::framework::{DivSearchConfig, DivTopK};
        use crate::graph::DiversityGraph;

        fn same_cluster(a: &(u32, u32), b: &(u32, u32)) -> bool {
            a.1 == b.1
        }
        let mut rng = Pcg::new(11);
        for trial in 0..20 {
            let items: Vec<Scored<(u32, u32)>> = (0..24u32)
                .map(|i| Scored::new((i, rng.below(5)), Score::from(rng.range(1, 500))))
                .collect();
            let (graph, _) = DiversityGraph::from_items(
                &items,
                |r| r.score,
                |a, b| same_cluster(&a.item, &b.item),
            );
            let want = crate::exhaustive::exhaustive(&graph, 4).best().score();
            for shards_n in [1usize, 2, 3, 4] {
                let sources: Vec<BoundingVecSource<(u32, u32)>> = split(&items, shards_n)
                    .into_iter()
                    .map(BoundingVecSource::new)
                    .collect();
                let merged = MergedSource::bounding(sources);
                let out = DivTopK::new(merged, same_cluster, DivSearchConfig::new(4))
                    .run()
                    .unwrap();
                assert_eq!(out.total_score, want, "trial {trial} shards {shards_n}");
            }
        }
    }
}
