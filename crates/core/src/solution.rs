//! Per-size solution tables (`D` in the paper, §5).
//!
//! All three exact algorithms return, for one graph, a table `D` where
//! `D.solution_i` is a feasible solution with **exactly** `i` nodes and
//! `D.score_i` its score (`i = 0..=k`; `D.solution_0` is the empty set).
//!
//! Witness node sets are stored as persistent [`NodeSet`]s (O(1) clone /
//! union / remap, flattened only when read) so that `⊕`-folding over
//! thousands of components stays linear in `k` instead of quadratic — see
//! `nodeset.rs` for the measurement story.
//!
//! # The prefix-max contract
//!
//! Algorithm 4's per-round stop condition only guarantees that
//! `max_{i ≤ k'} D.score_i` equals the optimal score over solutions of size
//! ≤ k' — an individual `D.solution_i` may be absent or sub-optimal when a
//! *smaller* solution already scores at least as much (see DESIGN.md §4.1).
//! Every consumer in the paper is compatible with this weaker guarantee:
//!
//! * the final answer is `D.best()`, the prefix maximum at `k`;
//! * `best(S)` (Lemma 1) stays an upper bound: if the true optimum keeps
//!   `n1` seen nodes, `score(O₁) ≤ prefix_best(n1)` which is attained by
//!   some entry of size `j* ≤ n1`, and `(k−n1)·u ≤ (k−j*)·u`;
//! * `⊕` and `⊗` preserve the contract: combined prefix maxima depend only
//!   on the operands' prefix maxima.
//!
//! So the invariant carried by [`SearchResult`] is:
//! 1. every present entry is an independent set of exactly `i` nodes, and
//! 2. (post-condition of the exact algorithms) for every `i ≤ k`,
//!    `prefix_best(i)` equals the true optimum over solutions of size ≤ i.

use crate::graph::NodeId;
use crate::nodeset::NodeSet;
use crate::score::Score;
use std::rc::Rc;

/// A feasible solution of a fixed size: a persistent node set + its score.
#[derive(Debug, Clone)]
pub struct SizedSolution {
    score: Score,
    set: NodeSet,
}

impl SizedSolution {
    /// Creates a solution from materialized nodes.
    pub fn new(nodes: Vec<NodeId>, score: Score) -> SizedSolution {
        SizedSolution {
            score,
            set: NodeSet::from_vec(nodes),
        }
    }

    /// Creates a solution from a persistent set.
    pub fn from_set(set: NodeSet, score: Score) -> SizedSolution {
        SizedSolution { score, set }
    }

    /// Total score.
    #[inline]
    pub fn score(&self) -> Score {
        self.score
    }

    /// Materializes the node ids, sorted ascending.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.set.to_sorted_vec()
    }

    /// The underlying persistent set.
    pub fn set(&self) -> &NodeSet {
        &self.set
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True for the empty solution.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

impl PartialEq for SizedSolution {
    /// Semantic equality: same score and members.
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.set == other.set
    }
}

/// The table of best-found solutions per exact size, `0..=k`.
///
/// `entries[0]` is always the empty solution. See the module docs for the
/// invariant/contract.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    k: usize,
    entries: Vec<Option<SizedSolution>>,
}

impl SearchResult {
    /// An empty table for sizes `0..=k` (only `solution_0 = ∅` present).
    pub fn empty(k: usize) -> SearchResult {
        let mut entries = vec![None; k + 1];
        entries[0] = Some(SizedSolution::from_set(NodeSet::empty(), Score::ZERO));
        SearchResult { k, entries }
    }

    /// The `k` this table was built for.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// `D.solution_i`: best-known feasible solution with exactly `i` nodes.
    #[inline]
    pub fn solution(&self, i: usize) -> Option<&SizedSolution> {
        self.entries.get(i).and_then(|e| e.as_ref())
    }

    /// `D.score_i`: score of `solution(i)`, or `None` if absent.
    #[inline]
    pub fn score(&self, i: usize) -> Option<Score> {
        self.solution(i).map(|s| s.score())
    }

    /// Score of `solution(i)` treating absent entries as 0 — matches the
    /// paper's pseudocode, which initializes `D.score_i ← 0`.
    #[inline]
    pub fn score_or_zero(&self, i: usize) -> Score {
        self.score(i).unwrap_or(Score::ZERO)
    }

    /// Offers a feasible solution with exactly `nodes.len()` nodes; it is
    /// recorded iff it beats the current entry of that size. Sizes larger
    /// than `k` are ignored.
    pub fn offer(&mut self, nodes: Vec<NodeId>, score: Score) {
        let len = nodes.len();
        if len > self.k {
            return;
        }
        if self.beats_current(len, score) {
            self.entries[len] = Some(SizedSolution::new(nodes, score));
        }
    }

    /// [`offer`](Self::offer) for persistent sets (used by the operators).
    pub fn offer_set(&mut self, set: NodeSet, score: Score) {
        let len = set.len();
        if len > self.k {
            return;
        }
        if self.beats_current(len, score) {
            self.entries[len] = Some(SizedSolution::from_set(set, score));
        }
    }

    /// Offers the solution `base ∪ {extra}` (with `extra > max(base)`,
    /// `base` sorted) without materializing it first: the node vector is
    /// only allocated when the entry actually improves the table. This is
    /// the `div-astar` expansion loop's offer path — in steady state
    /// (child doesn't beat the incumbent of its size) it allocates nothing.
    pub fn offer_extended(&mut self, base: &[NodeId], extra: NodeId, score: Score) {
        let len = base.len() + 1;
        if len > self.k || !self.beats_current(len, score) {
            return;
        }
        debug_assert!(base.last().is_none_or(|&last| last < extra));
        let mut nodes = Vec::with_capacity(len);
        nodes.extend_from_slice(base);
        nodes.push(extra);
        self.entries[len] = Some(SizedSolution::new(nodes, score));
    }

    #[inline]
    fn beats_current(&self, len: usize, score: Score) -> bool {
        match &self.entries[len] {
            Some(existing) => score > existing.score(),
            None => true,
        }
    }

    /// `max_{j ≤ i} D.score_j`: the best score over sizes up to `i`
    /// (0 when `i = 0`). Under the contract this equals the true optimum
    /// over solutions of size ≤ i.
    pub fn prefix_best_score(&self, i: usize) -> Score {
        (0..=i.min(self.k))
            .filter_map(|j| self.score(j))
            .max()
            .unwrap_or(Score::ZERO)
    }

    /// The overall answer `D(S)`: the best entry over all sizes ≤ k.
    /// Ties prefer the smaller size (fewer, equally-scored results).
    pub fn best(&self) -> &SizedSolution {
        let mut best: &SizedSolution = self.entries[0].as_ref().expect("size-0 entry");
        for e in self.entries.iter().flatten() {
            if e.score() > best.score() {
                best = e;
            }
        }
        best
    }

    /// `max{i | D.solution_i ≠ ∅}` over `i ≥ 1`, or 0 when only the empty
    /// solution exists. Used by the necessary stop condition (Lemma 3):
    /// this is the size of the maximum independent set when it is < k.
    pub fn max_feasible_size(&self) -> usize {
        (1..=self.k)
            .rev()
            .find(|&i| self.entries[i].is_some())
            .unwrap_or(0)
    }

    /// Sizes with a present entry, ascending (used by `⊕` to iterate only
    /// populated combinations).
    pub fn present_sizes(&self) -> Vec<usize> {
        (0..=self.k)
            .filter(|&i| self.entries[i].is_some())
            .collect()
    }

    /// Remaps node ids through `map` (`map[local] = global`), e.g. when a
    /// search ran on an induced subgraph. O(k) — the map is shared, not
    /// applied, until a witness is materialized.
    pub fn map_nodes(&self, map: &[NodeId]) -> SearchResult {
        let shared: Rc<Vec<NodeId>> = Rc::new(map.to_vec());
        let entries = self
            .entries
            .iter()
            .map(|e| {
                e.as_ref().map(|s| {
                    SizedSolution::from_set(NodeSet::mapped(s.set(), Rc::clone(&shared)), s.score())
                })
            })
            .collect();
        SearchResult { k: self.k, entries }
    }

    /// Adds `node` (with `score`) to **every** solution in the table,
    /// shifting each size up by one — Algorithm 10 line 21, used when the
    /// cut point is included. The old size-`k` entry drops off; the new
    /// size-1 entry is `{node}` itself (from shifting the empty solution).
    ///
    /// The caller must guarantee `node` is compatible with (not adjacent
    /// to, and absent from) every stored solution.
    pub fn shift_include(&self, node: NodeId, score: Score) -> SearchResult {
        let mut out = SearchResult::empty(self.k);
        for i in 0..self.k {
            if let Some(s) = &self.entries[i] {
                out.offer_set(NodeSet::extend(s.set(), node), s.score() + score);
            }
        }
        out
    }

    /// Iterates `(size, solution)` for present entries, ascending size.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &SizedSolution)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|s| (i, s)))
    }

    /// Debug/test helper: asserts structural invariants (entry sizes match
    /// indices, size-0 present, scores consistent with `graph` if given).
    pub fn assert_well_formed(&self, graph: Option<&crate::graph::DiversityGraph>) {
        assert!(self.entries[0].is_some(), "size-0 entry must exist");
        for (i, e) in self.entries.iter().enumerate() {
            if let Some(s) = e {
                assert_eq!(s.len(), i, "entry at index {i} has {} nodes", s.len());
                let nodes = s.nodes();
                assert!(
                    nodes.windows(2).all(|w| w[0] < w[1]),
                    "entry {i} has duplicate nodes"
                );
                if let Some(g) = graph {
                    assert!(g.is_independent_set(&nodes), "entry {i} not independent");
                    assert!(
                        g.score_of(&nodes).approx_eq(s.score(), 1e-9),
                        "entry {i} score mismatch"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DiversityGraph;

    fn s(v: u32) -> Score {
        Score::from(v)
    }

    #[test]
    fn empty_table_has_only_size_zero() {
        let r = SearchResult::empty(3);
        assert_eq!(r.k(), 3);
        assert_eq!(r.score(0), Some(Score::ZERO));
        assert_eq!(r.score(1), None);
        assert_eq!(r.best().len(), 0);
        assert_eq!(r.max_feasible_size(), 0);
        assert_eq!(r.present_sizes(), vec![0]);
        r.assert_well_formed(None);
    }

    #[test]
    fn offer_keeps_best_per_size() {
        let mut r = SearchResult::empty(2);
        r.offer(vec![3], s(5));
        r.offer(vec![1], s(7));
        r.offer(vec![2], s(6)); // worse than 7, ignored
        assert_eq!(r.solution(1).unwrap().nodes(), vec![1]);
        r.offer(vec![4, 0], s(9));
        assert_eq!(r.solution(2).unwrap().nodes(), vec![0, 4]); // sorted
        r.offer(vec![0, 1, 2], s(100)); // size 3 > k, ignored
        assert_eq!(r.score(2), Some(s(9)));
        r.assert_well_formed(None);
    }

    #[test]
    fn prefix_best_and_best() {
        let mut r = SearchResult::empty(3);
        r.offer(vec![0], s(20));
        r.offer(vec![1, 2], s(12));
        assert_eq!(r.prefix_best_score(0), Score::ZERO);
        assert_eq!(r.prefix_best_score(1), s(20));
        assert_eq!(r.prefix_best_score(2), s(20));
        assert_eq!(r.prefix_best_score(3), s(20));
        assert_eq!(r.best().nodes(), vec![0]);
        assert_eq!(r.max_feasible_size(), 2);
        assert_eq!(r.present_sizes(), vec![0, 1, 2]);
    }

    #[test]
    fn best_prefers_smaller_size_on_tie() {
        let mut r = SearchResult::empty(2);
        r.offer(vec![0], s(10));
        r.offer(vec![1, 2], s(10));
        assert_eq!(r.best().len(), 1);
    }

    #[test]
    fn map_nodes_relabels_lazily() {
        let mut r = SearchResult::empty(2);
        r.offer(vec![0, 1], s(9));
        let mapped = r.map_nodes(&[7, 3]);
        assert_eq!(mapped.solution(2).unwrap().nodes(), vec![3, 7]);
        assert_eq!(mapped.score(2), Some(s(9)));
        // Double remap composes.
        let mut back = vec![0u32; 10];
        back[3] = 30;
        back[7] = 70;
        let twice = mapped.map_nodes(&back);
        assert_eq!(twice.solution(2).unwrap().nodes(), vec![30, 70]);
    }

    #[test]
    fn shift_include_moves_sizes_up() {
        let mut r = SearchResult::empty(3);
        r.offer(vec![1], s(4));
        r.offer(vec![1, 2], s(7));
        let shifted = r.shift_include(9, s(10));
        assert_eq!(shifted.solution(1).unwrap().nodes(), vec![9]);
        assert_eq!(shifted.score(1), Some(s(10)));
        assert_eq!(shifted.solution(2).unwrap().nodes(), vec![1, 9]);
        assert_eq!(shifted.score(2), Some(s(14)));
        assert_eq!(shifted.solution(3).unwrap().nodes(), vec![1, 2, 9]);
        assert_eq!(shifted.score(3), Some(s(17)));
        shifted.assert_well_formed(None);
    }

    #[test]
    fn well_formed_checks_against_graph() {
        let g = DiversityGraph::paper_fig1();
        let mut r = SearchResult::empty(3);
        r.offer(vec![2, 3, 4], s(20));
        r.assert_well_formed(Some(&g));
    }

    #[test]
    #[should_panic(expected = "not independent")]
    fn well_formed_rejects_dependent_entry() {
        let g = DiversityGraph::paper_fig1();
        let mut r = SearchResult::empty(2);
        r.offer(vec![0, 2], s(17)); // v1 ≈ v3
        r.assert_well_formed(Some(&g));
    }

    #[test]
    fn offer_extended_matches_offer() {
        let mut a = SearchResult::empty(3);
        let mut b = SearchResult::empty(3);
        a.offer(vec![1, 4, 9], s(12));
        b.offer_extended(&[1, 4], 9, s(12));
        assert_eq!(a, b);
        // A losing offer leaves the table untouched.
        b.offer_extended(&[0, 2], 5, s(11));
        assert_eq!(a, b);
        // Oversize offers are ignored.
        b.offer_extended(&[0, 1, 2], 5, s(99));
        assert_eq!(a, b);
    }

    #[test]
    fn offer_set_round_trip() {
        let mut r = SearchResult::empty(4);
        let set = crate::nodeset::NodeSet::join(
            &crate::nodeset::NodeSet::from_vec(vec![5]),
            &crate::nodeset::NodeSet::from_vec(vec![2, 9]),
        );
        r.offer_set(set, s(11));
        assert_eq!(r.solution(3).unwrap().nodes(), vec![2, 5, 9]);
    }
}
