//! The `⊕` and `⊗` operators (Algorithms 5 and 6).
//!
//! * `⊕` ([`combine_disjoint`]) merges results computed on **disjoint** node
//!   sets: `D.solution_i` = the best way to pick `j` nodes from `D'` and
//!   `i − j` from `D''`. Dynamic programming, `O(k²)` (and `O(k²·k)` node
//!   copying in the worst case, bounded by solution sizes).
//! * `⊗` ([`combine_alternative`]) merges results computed on the **same**
//!   node set under different assumptions (cut point included/excluded):
//!   pointwise best per size, `O(k)`.
//!
//! Both are commutative and associative (asserted by property tests), so
//! component/cptree results can be folded in any order (Algorithm 7 line 5,
//! Algorithm 8 lines 10–11).
//!
//! ## Zero-allocation steady state
//!
//! `div-dp`/`div-cut` invoke these operators once per component / cptree
//! branch — thousands of times per query on the paper's hard instances —
//! so the in-place forms ([`combine_disjoint_in_place`],
//! [`combine_alternative_in_place`]) are written to allocate **nothing**
//! unless an entry actually improves: operand sizes are walked through
//! [`SearchResult::iter`] (no side vectors), the best `j`-split per target
//! size is chosen by score alone, and the single persistent
//! [`NodeSet`](crate::nodeset::NodeSet) join/clone is deferred until the
//! winning split is known (DESIGN.md §7).
//!
//! ```
//! use divtopk_core::ops::combine_disjoint_in_place;
//! use divtopk_core::prelude::*;
//!
//! // Fold a one-node component table into an accumulator, in place.
//! let mut acc = SearchResult::empty(3);
//! acc.offer(vec![0], Score::new(9.0));
//! let mut single = SearchResult::empty(3);
//! single.offer(vec![7], Score::new(5.0));
//! combine_disjoint_in_place(&mut acc, &single);
//! assert_eq!(acc.score(2), Some(Score::new(14.0))); // {0, 7}
//! assert_eq!(acc.solution(2).unwrap().nodes(), vec![0, 7]);
//! ```

use crate::score::Score;
use crate::solution::SearchResult;

/// `D' ⊕ D''` — Algorithm 5.
///
/// Operands must target the same `k` and stem from disjoint node sets
/// (callers combine per-component or per-subgraph results that have been
/// mapped back into a common id space).
///
/// Complexity: `O(|present(a)| · |present(b)|)` score comparisons; witness
/// unions are O(1) persistent joins. For the common fold of a large
/// accumulator against a small (often single-node) component table this is
/// `O(k)`, not `O(k²)`.
pub fn combine_disjoint(a: &SearchResult, b: &SearchResult) -> SearchResult {
    assert_eq!(a.k(), b.k(), "operands must target the same k");
    let k = a.k();
    let mut out = SearchResult::empty(k);
    for (ja, sa) in a.iter() {
        for (jb, sb) in b.iter() {
            let i = ja + jb;
            if i > k {
                break; // iter() ascends: larger jb only overshoots further.
            }
            if i == 0 {
                continue;
            }
            let score = sa.score() + sb.score();
            if score > out.score_or_zero(i) || out.solution(i).is_none() {
                out.offer_set(crate::nodeset::NodeSet::join(sa.set(), sb.set()), score);
            }
        }
    }
    out
}

/// `acc ← acc ⊕ b`, in place — the fold-optimized form of Algorithm 5.
///
/// Equivalent to `acc = combine_disjoint(&acc, &b)` (property-tested), but
/// allocates nothing when entries don't improve: the classic 0/1-knapsack
/// descending-index update. Folding thousands of small component tables
/// into one accumulator is `O(components · k · |present(b)|)` with O(1)
/// persistent-set joins — this is what keeps `div-dp`/`div-cut` viable at
/// the paper's `k = 2000` settings.
pub fn combine_disjoint_in_place(acc: &mut SearchResult, b: &SearchResult) {
    assert_eq!(acc.k(), b.k(), "operands must target the same k");
    let k = acc.k();
    if b.iter().all(|(j, _)| j == 0) {
        return;
    }
    // Descending target size: reads at `i - j` see pre-update values, so
    // exactly one entry of `b` is applied per target (Algorithm 5's j-split).
    for i in (1..=k).rev() {
        // First pass picks the winning j-split by score alone; the O(1)
        // persistent join is deferred until the winner is known, so target
        // sizes that don't improve allocate nothing.
        let mut best: Option<(Score, usize)> = None;
        for (j, sb) in b.iter() {
            if j == 0 {
                continue;
            }
            if j > i {
                break; // iter() ascends: larger j only overshoots further.
            }
            let Some(sa) = acc.solution(i - j) else {
                continue;
            };
            let score = sa.score() + sb.score();
            let improves_acc = score > acc.score_or_zero(i) || acc.solution(i).is_none();
            let improves_best = match best {
                Some((s, _)) => score > s,
                None => true,
            };
            if improves_acc && improves_best {
                best = Some((score, j));
            }
        }
        if let Some((score, j)) = best {
            let sa = acc.solution(i - j).expect("chosen above");
            let sb = b.solution(j).expect("chosen above");
            let set = crate::nodeset::NodeSet::join(sa.set(), sb.set());
            acc.offer_set(set, score);
        }
    }
}

/// `D' ⊗ D''` — Algorithm 6: pointwise best entry per size. `O(k)`.
pub fn combine_alternative(a: &SearchResult, b: &SearchResult) -> SearchResult {
    assert_eq!(a.k(), b.k(), "operands must target the same k");
    let k = a.k();
    let mut out = SearchResult::empty(k);
    for i in 1..=k {
        let pick = match (a.solution(i), b.solution(i)) {
            (Some(sa), Some(sb)) => Some(if sa.score() >= sb.score() { sa } else { sb }),
            (Some(sa), None) => Some(sa),
            (None, Some(sb)) => Some(sb),
            (None, None) => None,
        };
        if let Some(sol) = pick {
            out.offer_set(sol.set().clone(), sol.score());
        }
    }
    out
}

/// `acc ← acc ⊗ b`, in place — the fold-optimized form of Algorithm 6.
///
/// Equivalent to `acc = combine_alternative(&acc, &b)` (property-tested)
/// without rebuilding the table: entries of `b` that don't beat `acc`'s are
/// skipped outright, and winning entries are adopted by an O(1) persistent
/// clone. `cp-search` folds the per-branch tables of every cptree child
/// through this, so the `⊗` chain allocates nothing in steady state.
pub fn combine_alternative_in_place(acc: &mut SearchResult, b: &SearchResult) {
    assert_eq!(acc.k(), b.k(), "operands must target the same k");
    for (i, sb) in b.iter() {
        if i == 0 {
            continue;
        }
        if acc.score(i).is_none_or(|s| sb.score() > s) {
            acc.offer_set(sb.set().clone(), sb.score());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::Score;

    fn s(v: u32) -> Score {
        Score::from(v)
    }

    /// Builds a result table from (nodes, score) pairs.
    fn table(k: usize, entries: &[(&[u32], u32)]) -> SearchResult {
        let mut r = SearchResult::empty(k);
        for (nodes, score) in entries {
            r.offer(nodes.to_vec(), s(*score));
        }
        r
    }

    #[test]
    fn plus_merges_disjoint_sizes() {
        // Mirrors Example 3 / Fig. 7 in spirit: G1 entries sizes 1..2,
        // G2 entries sizes 1..3.
        let d1 = table(5, &[(&[0], 10), (&[0, 1], 18), (&[2, 3, 4], 20)]);
        let d2 = table(5, &[(&[10], 10), (&[10, 11], 18), (&[11, 12, 13], 22)]);
        let d = combine_disjoint(&d1, &d2);
        assert_eq!(d.score(1), Some(s(10)));
        assert_eq!(d.score(2), Some(s(20))); // 10 + 10
        assert_eq!(d.score(3), Some(s(28))); // 10 + 18 or 18 + 10
        assert_eq!(d.score(4), Some(s(36))); // 18 + 18
        assert_eq!(d.score(5), Some(s(40))); // 18 + 22
        assert_eq!(d.solution(5).unwrap().nodes(), &[0, 1, 11, 12, 13]);
        d.assert_well_formed(None);
    }

    #[test]
    fn plus_respects_missing_entries() {
        // d2 has no size-1 entry: size-3 combinations must not use it.
        let d1 = table(3, &[(&[0], 5), (&[0, 1], 8)]);
        let d2 = table(3, &[(&[7, 8], 9)]);
        let d = combine_disjoint(&d1, &d2);
        assert_eq!(d.score(1), Some(s(5)));
        assert_eq!(d.score(2), Some(s(9))); // {7,8} beats {0,1}=8
        assert_eq!(d.score(3), Some(s(14))); // {0} + {7,8}
        assert_eq!(d.solution(3).unwrap().nodes(), &[0, 7, 8]);
    }

    #[test]
    fn plus_with_empty_is_identity() {
        let d1 = table(4, &[(&[0], 5), (&[0, 1], 8)]);
        let id = SearchResult::empty(4);
        assert_eq!(combine_disjoint(&d1, &id), d1);
        assert_eq!(combine_disjoint(&id, &d1), d1);
    }

    #[test]
    fn otimes_pointwise_best() {
        let d1 = table(3, &[(&[0], 5), (&[0, 1], 8)]);
        let d2 = table(3, &[(&[2], 7), (&[2, 3, 4], 12)]);
        let d = combine_alternative(&d1, &d2);
        assert_eq!(d.solution(1).unwrap().nodes(), &[2]);
        assert_eq!(d.solution(2).unwrap().nodes(), &[0, 1]);
        assert_eq!(d.solution(3).unwrap().nodes(), &[2, 3, 4]);
        d.assert_well_formed(None);
    }

    #[test]
    fn otimes_with_empty_is_identity() {
        let d1 = table(3, &[(&[0], 5)]);
        let id = SearchResult::empty(3);
        assert_eq!(combine_alternative(&d1, &id), d1);
        assert_eq!(combine_alternative(&id, &d1), d1);
    }

    #[test]
    #[should_panic(expected = "same k")]
    fn mismatched_k_panics() {
        let _ = combine_disjoint(&SearchResult::empty(2), &SearchResult::empty(3));
    }

    #[test]
    fn in_place_matches_functional() {
        use crate::rng::Pcg;
        // Random tables over disjoint id ranges; in-place fold must equal
        // the functional fold entry-for-entry.
        for seed in 0..200 {
            let mut rng = Pcg::new(seed);
            let k = 1 + rng.below(8) as usize;
            let make = |rng: &mut Pcg, base: u32, k: usize| {
                let mut t = SearchResult::empty(k);
                let mut nodes = Vec::new();
                let mut score = Score::ZERO;
                for i in 0..k {
                    nodes.push(base + i as u32);
                    score += Score::from(rng.range(1, 100));
                    if rng.chance(0.6) {
                        t.offer(nodes.clone(), score);
                    }
                }
                t
            };
            let a = make(&mut rng, 0, k);
            let b = make(&mut rng, 1000, k);
            let functional = combine_disjoint(&a, &b);
            let mut in_place = a.clone();
            combine_disjoint_in_place(&mut in_place, &b);
            for i in 0..=k {
                assert_eq!(
                    in_place.score(i),
                    functional.score(i),
                    "seed {seed} size {i}"
                );
            }
            in_place.assert_well_formed(None);
        }
    }

    #[test]
    fn in_place_with_empty_is_noop() {
        let a = table(4, &[(&[0], 5), (&[0, 1], 8)]);
        let mut acc = a.clone();
        combine_disjoint_in_place(&mut acc, &SearchResult::empty(4));
        assert_eq!(acc, a);
    }

    #[test]
    fn alternative_in_place_matches_functional() {
        use crate::rng::Pcg;
        for seed in 0..100 {
            let mut rng = Pcg::new(900 + seed);
            let k = 1 + rng.below(7) as usize;
            let make = |rng: &mut Pcg, base: u32, k: usize| {
                let mut t = SearchResult::empty(k);
                let mut nodes = Vec::new();
                let mut score = Score::ZERO;
                for i in 0..k {
                    nodes.push(base + i as u32);
                    score += Score::from(rng.range(1, 100));
                    if rng.chance(0.5) {
                        t.offer(nodes.clone(), score);
                    }
                }
                t
            };
            let a = make(&mut rng, 0, k);
            let b = make(&mut rng, 0, k);
            let functional = combine_alternative(&a, &b);
            let mut in_place = a.clone();
            combine_alternative_in_place(&mut in_place, &b);
            assert_eq!(in_place, functional, "seed {seed}");
        }
    }

    #[test]
    fn alternative_in_place_prefers_acc_on_ties() {
        let a = table(2, &[(&[0], 5)]);
        let b = table(2, &[(&[9], 5)]);
        let mut acc = a.clone();
        combine_alternative_in_place(&mut acc, &b);
        assert_eq!(acc.solution(1).unwrap().nodes(), vec![0]);
    }
}
