//! Poison-tolerant lock helpers — the workspace's one documented answer
//! to `std::sync` poisoning (DESIGN.md §13).
//!
//! ## Policy: poisoning is ignored, deliberately
//!
//! A `std` lock poisons when a thread panics while holding it, and every
//! subsequent `lock()` returns `Err(PoisonError)` carrying the perfectly
//! usable guard. The poison bit is a *heuristic* ("a critical section
//! died mid-write; the data may be torn"), not a soundness fence. This
//! workspace converts that heuristic into a concrete, checkable policy:
//!
//! 1. **Critical sections are panic-free by construction.** The
//!    `divtopk-lint` `panic` rule forbids `unwrap`/`expect`/`panic!` in
//!    every serving-path module, so the code that runs while holding a
//!    serving lock has no panic sites of its own (the only residual
//!    sources are allocator aborts, which never unwind and therefore
//!    never poison).
//! 2. **Lock-held state transitions are small and total.** The pool,
//!    prefetch, server, and single-flight protocols mutate a handful of
//!    plain fields under their locks (queue push/pop, flag flips,
//!    counter bumps) — each is a single assignment that cannot be
//!    observed half-done by the next holder.
//!
//! Under those two invariants a poisoned lock can only mean "a *test*
//! or caller-supplied closure panicked on another thread", and the
//! right behavior for the serving path is to keep serving, not to
//! propagate a second panic out of an unrelated worker. Hence: every
//! serving-path lock acquisition goes through these helpers, which
//! strip the poison bit and return the guard. Bare `.lock().unwrap()`
//! is banned by the linter — the point is not the four saved
//! characters, it is that grepping `sync::` finds every place the
//! policy applies, and this module is the one place the argument lives.
//!
//! (The engine's `InflightClaim` drop guard has used exactly this
//! pattern inline since it was introduced — a claim *must* be released
//! even while unwinding from a panicking worker, or every waiter on the
//! key would hang. These helpers generalize that precedent.)

use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError, RwLock};

/// Strips the poison bit off any `std::sync` lock result and returns
/// the guard. See the module docs for why this is sound here.
#[inline]
pub fn unpoisoned<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// `mutex.lock()` that tolerates poisoning (never panics, never blocks
/// differently from `lock()` itself).
#[inline]
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    unpoisoned(mutex.lock())
}

/// `rwlock.read()` that tolerates poisoning.
#[inline]
pub fn read_unpoisoned<T>(rwlock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    unpoisoned(rwlock.read())
}

/// `rwlock.write()` that tolerates poisoning.
#[inline]
pub fn write_unpoisoned<T>(rwlock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    unpoisoned(rwlock.write())
}

/// `condvar.wait(guard)` that tolerates poisoning. Spurious wakeups are
/// still possible, as with the underlying wait — callers loop on their
/// predicate exactly as before.
#[inline]
pub fn wait_unpoisoned<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    unpoisoned(condvar.wait(guard))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn lock_unpoisoned_recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "mutex should be poisoned");
        assert_eq!(*lock_unpoisoned(&m), 7);
        *lock_unpoisoned(&m) = 8;
        assert_eq!(*lock_unpoisoned(&m), 8);
    }

    #[test]
    fn rwlock_helpers_recover_a_poisoned_rwlock() {
        let l = Arc::new(RwLock::new(1u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert_eq!(*read_unpoisoned(&l), 1);
        *write_unpoisoned(&l) = 2;
        assert_eq!(*read_unpoisoned(&l), 2);
    }

    #[test]
    fn wait_unpoisoned_wakes_like_wait() {
        use std::sync::Condvar;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut flagged = lock_unpoisoned(m);
            while !*flagged {
                flagged = wait_unpoisoned(cv, flagged);
            }
        });
        {
            let (m, cv) = &*pair;
            *lock_unpoisoned(m) = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
