//! Result sources — the two top-k generation frameworks of §3.
//!
//! The paper observes that essentially all early-stopping top-k algorithms
//! are either **incremental** (Algorithm 1: results arrive in non-increasing
//! score order; the score of the last result bounds all unseen ones) or
//! **bounding** (Algorithm 2: results arrive in any order but the algorithm
//! maintains an explicit upper bound `unseen` for everything not yet
//! generated — e.g. Fagin's threshold algorithm).
//!
//! [`ResultSource`] unifies both: a source yields scored results and
//! reports an upper bound for the unseen remainder. The diversified search
//! engine ([`crate::framework`]) is agnostic to which style backs it.

use crate::score::Score;

/// A search result paired with its score.
#[derive(Debug, Clone, PartialEq)]
pub struct Scored<T> {
    /// The application-level result (document id, path, tuple, …).
    pub item: T,
    /// Its relevance score.
    pub score: Score,
}

impl<T> Scored<T> {
    /// Convenience constructor.
    pub fn new(item: T, score: Score) -> Scored<T> {
        Scored { item, score }
    }
}

impl<T: Eq> Eq for Scored<T> {}

/// Deterministic total order for orderable items: by score, then by item.
///
/// Score ties are broken by the item itself, never by arrival order — this
/// is what makes heaps and sorts over results reproducible across runs and
/// across shard layouts (see [`crate::merge`]).
impl<T: Ord> Ord for Scored<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .cmp(&other.score)
            .then_with(|| self.item.cmp(&other.item))
    }
}

impl<T: Ord> PartialOrd for Scored<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Upper bound on the scores of all results a source has not yet returned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnseenBound {
    /// No bound is known yet (e.g. an incremental source before its first
    /// result). Early stopping is impossible in this state.
    Unbounded,
    /// No unseen result scores more than this.
    At(Score),
}

/// A stream of scored results with an unseen-score upper bound.
///
/// Contract: the value reported by [`unseen_bound`](ResultSource::unseen_bound)
/// must be a valid upper bound on every result that `next_result` has not
/// yet returned, and should be non-increasing over time (Lemma 2's
/// assumption; the engine clamps violations defensively).
pub trait ResultSource {
    /// The application-level result type.
    type Item;

    /// Generates the next result, or `None` when exhausted
    /// (`incremental-next()` / `bounding-next()` in Algorithms 1–2).
    fn next_result(&mut self) -> Option<Scored<Self::Item>>;

    /// Upper bound for all not-yet-returned results.
    fn unseen_bound(&self) -> UnseenBound;
}

/// An **incremental** source over a pre-sorted result list: emits results
/// in non-increasing score order; the unseen bound is the score of the last
/// emitted result.
#[derive(Debug, Clone)]
pub struct IncrementalVecSource<T> {
    items: std::vec::IntoIter<Scored<T>>,
    last_score: Option<Score>,
}

impl<T> IncrementalVecSource<T> {
    /// Wraps a list already sorted by non-increasing score.
    ///
    /// # Panics
    /// Panics if the list is not sorted non-increasing.
    pub fn new(items: Vec<Scored<T>>) -> IncrementalVecSource<T> {
        assert!(
            items.windows(2).all(|w| w[0].score >= w[1].score),
            "incremental sources require non-increasing scores"
        );
        IncrementalVecSource {
            items: items.into_iter(),
            last_score: None,
        }
    }

    /// Sorts the list (descending score, stable) and wraps it.
    pub fn from_unsorted(mut items: Vec<Scored<T>>) -> IncrementalVecSource<T> {
        items.sort_by_key(|r| std::cmp::Reverse(r.score));
        IncrementalVecSource::new(items)
    }
}

impl<T> ResultSource for IncrementalVecSource<T> {
    type Item = T;

    fn next_result(&mut self) -> Option<Scored<T>> {
        let next = self.items.next()?;
        self.last_score = Some(next.score);
        Some(next)
    }

    fn unseen_bound(&self) -> UnseenBound {
        match self.last_score {
            Some(s) => UnseenBound::At(s),
            None => UnseenBound::Unbounded,
        }
    }
}

/// A **bounding** source over an arbitrarily ordered result list: emits
/// results in stored order while reporting the exact maximum of the
/// remaining scores as the unseen bound (the idealized threshold-algorithm
/// behaviour; useful for tests and examples).
#[derive(Debug, Clone)]
pub struct BoundingVecSource<T> {
    items: Vec<Option<Scored<T>>>,
    /// `suffix_max[i]` = max score of `items[i..]`.
    suffix_max: Vec<Score>,
    cursor: usize,
}

impl<T> BoundingVecSource<T> {
    /// Wraps a list in its given (arbitrary) emission order.
    pub fn new(items: Vec<Scored<T>>) -> BoundingVecSource<T> {
        let n = items.len();
        let mut suffix_max = vec![Score::ZERO; n + 1];
        for i in (0..n).rev() {
            suffix_max[i] = suffix_max[i + 1].max(items[i].score);
        }
        BoundingVecSource {
            items: items.into_iter().map(Some).collect(),
            suffix_max,
            cursor: 0,
        }
    }
}

impl<T> ResultSource for BoundingVecSource<T> {
    type Item = T;

    fn next_result(&mut self) -> Option<Scored<T>> {
        let slot = self.items.get_mut(self.cursor)?;
        self.cursor += 1;
        slot.take()
    }

    fn unseen_bound(&self) -> UnseenBound {
        UnseenBound::At(self.suffix_max[self.cursor.min(self.suffix_max.len() - 1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u32) -> Score {
        Score::from(v)
    }

    /// The serving engine fans sources out across worker threads; the
    /// built-in sources (and the types they are made of) must stay `Send`.
    #[test]
    fn built_in_sources_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Scored<u32>>();
        assert_send::<UnseenBound>();
        assert_send::<IncrementalVecSource<u32>>();
        assert_send::<BoundingVecSource<u32>>();
        assert_send::<crate::merge::MergedSource<IncrementalVecSource<u32>>>();
    }

    #[test]
    fn scored_ordering_breaks_ties_by_item() {
        let mut v = vec![
            Scored::new(3u32, s(5)),
            Scored::new(1, s(5)),
            Scored::new(2, s(7)),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Scored::new(1, s(5)),
                Scored::new(3, s(5)),
                Scored::new(2, s(7)),
            ]
        );
    }

    #[test]
    fn incremental_emits_in_order_with_bound() {
        let mut src = IncrementalVecSource::new(vec![
            Scored::new("a", s(9)),
            Scored::new("b", s(5)),
            Scored::new("c", s(5)),
        ]);
        assert_eq!(src.unseen_bound(), UnseenBound::Unbounded);
        assert_eq!(src.next_result().unwrap().item, "a");
        assert_eq!(src.unseen_bound(), UnseenBound::At(s(9)));
        assert_eq!(src.next_result().unwrap().item, "b");
        assert_eq!(src.unseen_bound(), UnseenBound::At(s(5)));
        assert_eq!(src.next_result().unwrap().item, "c");
        assert!(src.next_result().is_none());
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn incremental_rejects_unsorted() {
        let _ = IncrementalVecSource::new(vec![Scored::new(1, s(1)), Scored::new(2, s(2))]);
    }

    #[test]
    fn from_unsorted_sorts_descending() {
        let mut src = IncrementalVecSource::from_unsorted(vec![
            Scored::new("low", s(1)),
            Scored::new("high", s(7)),
        ]);
        assert_eq!(src.next_result().unwrap().item, "high");
    }

    #[test]
    fn bounding_reports_exact_suffix_max() {
        let mut src = BoundingVecSource::new(vec![
            Scored::new("mid", s(5)),
            Scored::new("high", s(9)),
            Scored::new("low", s(1)),
        ]);
        assert_eq!(src.unseen_bound(), UnseenBound::At(s(9)));
        assert_eq!(src.next_result().unwrap().item, "mid");
        assert_eq!(src.unseen_bound(), UnseenBound::At(s(9)));
        assert_eq!(src.next_result().unwrap().item, "high");
        assert_eq!(src.unseen_bound(), UnseenBound::At(s(1)));
        assert_eq!(src.next_result().unwrap().item, "low");
        assert_eq!(src.unseen_bound(), UnseenBound::At(Score::ZERO));
        assert!(src.next_result().is_none());
    }
}
