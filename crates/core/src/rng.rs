//! A tiny, deterministic PCG-XSH-RR 64/32 random generator.
//!
//! The test-graph generators ([`crate::testgen`]) and the synthetic corpora
//! in `divtopk-text` must produce *bit-identical* inputs forever so that
//! EXPERIMENTS.md numbers stay comparable; depending on an external RNG
//! crate would tie reproducibility to its stream stability. PCG is ~30
//! lines, well studied, and plenty for workload generation (not for
//! cryptography).

/// PCG-XSH-RR 64/32 — O'Neill (2014).
#[derive(Debug, Clone)]
pub struct Pcg {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg {
    /// Creates a generator from a seed; distinct seeds give distinct streams.
    pub fn new(seed: u64) -> Pcg {
        let mut rng = Pcg {
            state: 0,
            inc: (seed << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(0x9E3779B97F4A7C15 ^ seed);
        rng.next_u32();
        rng
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform integer in `[0, bound)`. Debiased by rejection.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "below(0)");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            if r >= threshold {
                return r % bound;
            }
        }
    }

    /// Uniform integer in `[lo, hi)` (half-open).
    pub fn range(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u32) as usize])
        }
    }

    /// Samples an index from cumulative weights (`cdf` ascending, last =
    /// total weight). Used by the Zipf/topic samplers in `divtopk-text`.
    pub fn sample_cdf(&mut self, cdf: &[f64]) -> usize {
        let total = *cdf.last().expect("non-empty cdf");
        let x = self.unit_f64() * total;
        match cdf.binary_search_by(|w| w.partial_cmp(&x).expect("finite weights")) {
            Ok(i) => (i + 1).min(cdf.len() - 1),
            Err(i) => i.min(cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u32> = {
            let mut r = Pcg::new(42);
            (0..8).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = Pcg::new(42);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut r = Pcg::new(43);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Pcg::new(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = Pcg::new(9);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_rough_frequency() {
        let mut r = Pcg::new(5);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Pcg::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "seed 3 should permute");
    }

    #[test]
    fn sample_cdf_respects_weights() {
        let mut r = Pcg::new(8);
        let cdf = [1.0, 1.0, 11.0]; // weights 1, 0, 10
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[r.sample_cdf(&cdf)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5, "{counts:?}");
    }
}
