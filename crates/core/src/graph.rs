//! The diversity graph (Definition 2).
//!
//! Nodes are search results, an edge joins `v_i` and `v_j` iff
//! `sim(v_i, v_j) > τ` (the two results are *similar*). The diversified
//! top-k results are a maximum-score independent set of size ≤ k in this
//! graph.
//!
//! Invariant (assumed throughout the paper and enforced here): **node ids
//! are assigned in non-increasing score order** — `score(v_0) ≥ score(v_1) ≥
//! …`. `astar-bound` (Algorithm 4) depends on this: walking ids upward from
//! `e.pos + 1` visits candidates from best to worst.
//!
//! ## The adjacency bitmap
//!
//! Alongside the sorted adjacency lists, graphs of up to
//! [`DENSE_ADJ_MAX_NODES`] nodes carry a precomputed **adjacency bitmap**:
//! one `n / 64`-word bitset row per node, in the same word layout as
//! [`DenseNodeSet`](crate::nodeset::DenseNodeSet) (DESIGN.md §7). This is
//! what turns the per-edge probes of the independence checks into word
//! operations: [`are_adjacent`](DiversityGraph::are_adjacent) becomes one
//! bit test, and "is candidate `v` compatible with partial solution `S`"
//! becomes a single AND-any sweep of `S`'s exclusion bitset against
//! [`adjacency_row(v)`](DiversityGraph::adjacency_row).
//!
//! ```
//! use divtopk_core::nodeset::DenseNodeSet;
//! use divtopk_core::prelude::*;
//!
//! let g = DiversityGraph::paper_fig1();
//! assert!(g.has_adjacency_bitmap());
//!
//! // The solution {v1} excludes exactly v1's neighbors: one word test
//! // per candidate instead of a binary search per neighbor.
//! let mut excluded = DenseNodeSet::new(g.len());
//! excluded.union_with_row(g.adjacency_row(0).unwrap());
//! assert!(excluded.contains(2)); // v1 ≈ v3
//! assert!(!excluded.contains(1)); // v2 stays eligible
//! ```

use crate::score::Score;

/// Node identifier within one [`DiversityGraph`]. Dense, `0..n`.
pub type NodeId = u32;

/// Largest node count for which the O(n²)-bit adjacency bitmap is built.
///
/// At 4096 nodes the bitmap costs 2 MiB — negligible next to the search —
/// while per-query diversity graphs and the induced subgraphs the
/// decompositions produce are practically always far below this. Larger
/// graphs skip the bitmap (adjacency falls back to binary-searched lists)
/// rather than risk quadratic memory on pathological inputs.
pub const DENSE_ADJ_MAX_NODES: usize = 4096;

/// An undirected graph whose nodes carry scores, sorted non-increasing.
#[derive(Debug, Clone)]
pub struct DiversityGraph {
    scores: Vec<Score>,
    /// Sorted adjacency lists.
    adj: Vec<Vec<NodeId>>,
    edge_count: usize,
    /// Row-major adjacency bitmap: `adj_words` words per node, bit `u` of
    /// row `v` set iff `u ≈ v`. Empty when `n > DENSE_ADJ_MAX_NODES` or
    /// after [`strip_adjacency_bitmap`](DiversityGraph::strip_adjacency_bitmap).
    adj_bits: Vec<u64>,
    /// Words per bitmap row; 0 when the bitmap is absent.
    adj_words: usize,
}

impl PartialEq for DiversityGraph {
    /// Structural equality on scores and adjacency; whether the adjacency
    /// bitmap is materialized is an acceleration detail, not identity.
    fn eq(&self, other: &Self) -> bool {
        self.scores == other.scores && self.adj == other.adj && self.edge_count == other.edge_count
    }
}

impl DiversityGraph {
    /// Builds a graph from scores already sorted in non-increasing order and
    /// an undirected edge list over those indices.
    ///
    /// # Panics
    /// Panics if scores are not sorted non-increasing, if an edge endpoint is
    /// out of range, or if an edge is a self-loop.
    pub fn from_sorted_scores(scores: Vec<Score>, edges: &[(NodeId, NodeId)]) -> DiversityGraph {
        assert!(
            scores.windows(2).all(|w| w[0] >= w[1]),
            "scores must be sorted in non-increasing order"
        );
        let n = scores.len();
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut edge_count = 0usize;
        for &(a, b) in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge endpoint out of range"
            );
            assert_ne!(a, b, "self-loops are not allowed (sim(v,v)=1 is implicit)");
            adj[a as usize].push(b);
            adj[b as usize].push(a);
            edge_count += 1;
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        // Recount after dedup so duplicate input edges do not inflate the count.
        let edge_count = if edge_count > 0 {
            adj.iter().map(|l| l.len()).sum::<usize>() / 2
        } else {
            0
        };
        let (adj_bits, adj_words) = build_adj_bits(&adj);
        DiversityGraph {
            scores,
            adj,
            edge_count,
            adj_bits,
            adj_words,
        }
    }

    /// Builds a graph from arbitrarily ordered scores: nodes are re-labelled
    /// in non-increasing score order (ties broken by original index for
    /// determinism). Returns the graph and `perm` where `perm[new_id] =
    /// original_index`.
    pub fn from_unsorted_scores(
        scores: &[Score],
        edges: &[(u32, u32)],
    ) -> (DiversityGraph, Vec<u32>) {
        let n = scores.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| scores[b as usize].cmp(&scores[a as usize]).then(a.cmp(&b)));
        let mut rank = vec![0u32; n];
        for (new_id, &orig) in order.iter().enumerate() {
            rank[orig as usize] = new_id as u32;
        }
        let sorted_scores: Vec<Score> = order.iter().map(|&o| scores[o as usize]).collect();
        let mapped: Vec<(NodeId, NodeId)> = edges
            .iter()
            .map(|&(a, b)| (rank[a as usize], rank[b as usize]))
            .collect();
        (
            DiversityGraph::from_sorted_scores(sorted_scores, &mapped),
            order,
        )
    }

    /// Builds the diversity graph for a slice of items given a score
    /// accessor and the similarity predicate `≈` (all `O(n²)` pairs are
    /// tested — this is the offline construction; the framework grows the
    /// graph incrementally instead).
    pub fn from_items<T>(
        items: &[T],
        score_of: impl Fn(&T) -> Score,
        similar: impl Fn(&T, &T) -> bool,
    ) -> (DiversityGraph, Vec<u32>) {
        let scores: Vec<Score> = items.iter().map(&score_of).collect();
        let mut edges = Vec::new();
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                if similar(&items[i], &items[j]) {
                    edges.push((i as u32, j as u32));
                }
            }
        }
        DiversityGraph::from_unsorted_scores(&scores, &edges)
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Score of node `v`.
    #[inline]
    pub fn score(&self, v: NodeId) -> Score {
        self.scores[v as usize]
    }

    /// All scores, indexed by node id (non-increasing).
    #[inline]
    pub fn scores(&self) -> &[Score] {
        &self.scores
    }

    /// Sorted neighbors of `v` (`v.adj(G)` in the paper).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// True iff `u ≈ v` (an edge exists). One bit test when the adjacency
    /// bitmap is present; a binary search over the sorted list otherwise.
    #[inline]
    pub fn are_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        if self.adj_words > 0 {
            let row = u as usize * self.adj_words;
            self.adj_bits[row + (v / 64) as usize] & (1u64 << (v % 64)) != 0
        } else {
            self.adj[u as usize].binary_search(&v).is_ok()
        }
    }

    /// True when the precomputed adjacency bitmap is available (graphs of
    /// at most [`DENSE_ADJ_MAX_NODES`] nodes, unless stripped).
    #[inline]
    pub fn has_adjacency_bitmap(&self) -> bool {
        self.adj_words > 0
    }

    /// Words per adjacency bitmap row (0 when the bitmap is absent).
    #[inline]
    pub fn adjacency_words(&self) -> usize {
        self.adj_words
    }

    /// The bitmap row for `v`: bit `u` set iff `u ≈ v`, in
    /// [`DenseNodeSet`](crate::nodeset::DenseNodeSet) word layout.
    /// `None` when the bitmap is absent.
    #[inline]
    pub fn adjacency_row(&self, v: NodeId) -> Option<&[u64]> {
        if self.adj_words == 0 {
            return None;
        }
        let start = v as usize * self.adj_words;
        Some(&self.adj_bits[start..start + self.adj_words])
    }

    /// Drops the adjacency bitmap, forcing the binary-search adjacency path
    /// and the sparse search kernels. Exists for the AB5 ablation (bitset
    /// vs sorted-vec kernel, DESIGN.md §6/§7) and for memory-constrained
    /// callers; everything stays exact, only slower.
    pub fn strip_adjacency_bitmap(&mut self) {
        self.adj_bits = Vec::new();
        self.adj_words = 0;
    }

    /// Iterator over all node ids, best score first.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.len() as NodeId
    }

    /// Sum of all node scores.
    pub fn total_score(&self) -> Score {
        self.scores.iter().copied().sum()
    }

    /// True iff `nodes` (sorted or not) form an independent set.
    pub fn is_independent_set(&self, nodes: &[NodeId]) -> bool {
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                if u == v || self.are_adjacent(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Sum of scores of `nodes`.
    pub fn score_of(&self, nodes: &[NodeId]) -> Score {
        nodes.iter().map(|&v| self.score(v)).sum()
    }

    /// Extracts the induced subgraph on `keep` (any order, no duplicates).
    ///
    /// Returns the subgraph (ids relabelled `0..keep.len()` preserving the
    /// score order) and `map` with `map[new_id] = old_id`.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (DiversityGraph, Vec<NodeId>) {
        let mut map: Vec<NodeId> = keep.to_vec();
        map.sort_unstable();
        debug_assert!(
            map.windows(2).all(|w| w[0] != w[1]),
            "duplicate node in keep"
        );
        let mut rank = vec![u32::MAX; self.len()];
        for (new_id, &old) in map.iter().enumerate() {
            rank[old as usize] = new_id as u32;
        }
        let scores: Vec<Score> = map.iter().map(|&o| self.score(o)).collect();
        let mut adj: Vec<Vec<NodeId>> = Vec::with_capacity(map.len());
        let mut edge_count = 0usize;
        for &old in &map {
            let list: Vec<NodeId> = self.adj[old as usize]
                .iter()
                .filter_map(|&nb| {
                    let r = rank[nb as usize];
                    (r != u32::MAX).then_some(r)
                })
                .collect();
            edge_count += list.len();
            adj.push(list);
        }
        // Subgraph ids are dense `0..keep.len()` again, so the bitmap stays
        // valid (and small) through every decomposition/compression remap.
        let (adj_bits, adj_words) = build_adj_bits(&adj);
        (
            DiversityGraph {
                scores,
                adj,
                edge_count: edge_count / 2,
                adj_bits,
                adj_words,
            },
            map,
        )
    }

    /// Builds the graph of Fig. 1 in the paper: 6 nodes with scores
    /// 10, 8, 7, 7, 6, 1 and edges making `{v1,v2}` optimal at `k = 2`
    /// (score 18) and `{v3,v4,v5}` optimal at `k = 3` (score 20).
    ///
    /// Provided as a convenient, well-understood fixture for tests, docs and
    /// the quickstart example.
    pub fn paper_fig1() -> DiversityGraph {
        // Node ids (0-based) map to the paper's v1..v6 in score order:
        // v1=10, v2=8, v3=7, v4=7, v5=6, v6=1.
        // Edges (derived from Examples 1 and 2): v1 is adjacent to v3, v4, v5
        // (selecting v1 excludes all of them, leaving v2, v6 => bound 19);
        // v3-v5 are adjacent? No: {v3,v4,v5} must be independent. From
        // Fig. 4: after selecting v3, expansions add v4 then v5; v2's bound
        // is 9 = 8 + 1, so v2 is adjacent to v3, v4, v5 but not v6; v5's
        // bound is 6, so v5 is also adjacent to v6; v4's bound is 13 = 7 + 6
        // (v5 reachable, v6 not) so v4-v6 adjacent; v3's bound is 20 = 7+7+6.
        let scores = vec![10, 8, 7, 7, 6, 1]
            .into_iter()
            .map(Score::from)
            .collect();
        let edges = &[
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 3),
            (1, 4),
            (3, 5),
            (4, 5),
        ];
        DiversityGraph::from_sorted_scores(scores, edges)
    }
}

/// Packs sorted adjacency lists into a row-major bitmap, or returns an
/// empty bitmap for graphs above [`DENSE_ADJ_MAX_NODES`].
fn build_adj_bits(adj: &[Vec<NodeId>]) -> (Vec<u64>, usize) {
    let n = adj.len();
    if n == 0 || n > DENSE_ADJ_MAX_NODES {
        return (Vec::new(), 0);
    }
    let words = n.div_ceil(64);
    let mut bits = vec![0u64; words * n];
    for (v, list) in adj.iter().enumerate() {
        let row = &mut bits[v * words..(v + 1) * words];
        for &nb in list {
            row[(nb / 64) as usize] |= 1u64 << (nb % 64);
        }
    }
    (bits, words)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u32) -> Score {
        Score::from(v)
    }

    #[test]
    fn sorted_construction_and_accessors() {
        let g = DiversityGraph::from_sorted_scores(
            vec![s(5), s(3), s(1)],
            &[(0, 1), (1, 2), (0, 1)], // duplicate edge deduped
        );
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.are_adjacent(0, 1));
        assert!(!g.are_adjacent(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.total_score(), s(9));
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn rejects_unsorted_scores() {
        DiversityGraph::from_sorted_scores(vec![s(1), s(2)], &[]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        DiversityGraph::from_sorted_scores(vec![s(1)], &[(0, 0)]);
    }

    #[test]
    fn unsorted_construction_relabels() {
        let scores = [s(1), s(9), s(5)];
        let (g, perm) = DiversityGraph::from_unsorted_scores(&scores, &[(0, 1)]);
        assert_eq!(g.scores(), &[s(9), s(5), s(1)]);
        assert_eq!(perm, vec![1, 2, 0]);
        // Original edge (0,1) becomes (rank0, rank1) = (2, 0).
        assert!(g.are_adjacent(0, 2));
        assert!(!g.are_adjacent(0, 1));
    }

    #[test]
    fn from_items_builds_similarity_edges() {
        // Items: integers; similar when |a - b| <= 1; score = value.
        let items = [10u32, 11, 20];
        let (g, perm) = DiversityGraph::from_items(
            &items,
            |&x| Score::from(x),
            |&a, &b| (a as i64 - b as i64).abs() <= 1,
        );
        // Sorted order: 20, 11, 10 → perm [2, 1, 0].
        assert_eq!(perm, vec![2, 1, 0]);
        assert!(g.are_adjacent(1, 2)); // 11 ≈ 10
        assert!(!g.are_adjacent(0, 1)); // 20 !≈ 11
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn independent_set_checks() {
        let g = DiversityGraph::paper_fig1();
        assert!(g.is_independent_set(&[0, 1])); // v1, v2
        assert!(g.is_independent_set(&[2, 3, 4])); // v3, v4, v5
        assert!(!g.is_independent_set(&[0, 2])); // v1 ≈ v3
        assert!(!g.is_independent_set(&[0, 0])); // duplicates are not a set
        assert_eq!(g.score_of(&[2, 3, 4]), s(20));
    }

    #[test]
    fn induced_subgraph_preserves_order_and_edges() {
        let g = DiversityGraph::paper_fig1();
        let (sub, map) = g.induced_subgraph(&[4, 1, 5]); // v5, v2, v6 (given unsorted)
        assert_eq!(map, vec![1, 4, 5]);
        assert_eq!(sub.scores(), &[s(8), s(6), s(1)]);
        // v2-v5 edge survives; v5-v6 edge survives.
        assert!(sub.are_adjacent(0, 1));
        assert!(sub.are_adjacent(1, 2));
        assert_eq!(sub.edge_count(), 2);
    }

    #[test]
    fn fig1_shape() {
        let g = DiversityGraph::paper_fig1();
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 8);
    }

    #[test]
    fn adjacency_bitmap_matches_lists() {
        let g = crate::testgen::random_graph(90, 0.3, 11);
        assert!(g.has_adjacency_bitmap());
        assert_eq!(g.adjacency_words(), 2);
        for v in g.nodes() {
            let row = g.adjacency_row(v).unwrap();
            let from_row: Vec<NodeId> = (0..g.len() as NodeId)
                .filter(|&u| row[(u / 64) as usize] & (1 << (u % 64)) != 0)
                .collect();
            assert_eq!(from_row, g.neighbors(v), "row of {v}");
        }
    }

    #[test]
    fn stripped_bitmap_keeps_adjacency_answers() {
        let mut g = DiversityGraph::paper_fig1();
        let want: Vec<(NodeId, NodeId, bool)> = (0..6)
            .flat_map(|u| {
                (0..6).map(move |v| (u, v, DiversityGraph::paper_fig1().are_adjacent(u, v)))
            })
            .collect();
        g.strip_adjacency_bitmap();
        assert!(!g.has_adjacency_bitmap());
        assert!(g.adjacency_row(0).is_none());
        for (u, v, adj) in want {
            assert_eq!(g.are_adjacent(u, v), adj, "{u} ≈ {v}");
        }
        // Equality ignores the acceleration structure.
        assert_eq!(g, DiversityGraph::paper_fig1());
    }

    #[test]
    fn induced_subgraph_rebuilds_bitmap() {
        let g = DiversityGraph::paper_fig1();
        let (sub, _) = g.induced_subgraph(&[4, 1, 5]);
        assert!(sub.has_adjacency_bitmap());
        assert!(sub.are_adjacent(0, 1));
        assert!(!sub.are_adjacent(0, 2));
    }
}
