//! Similarity predicates (`v_i ≈ v_j ⇔ sim(v_i, v_j) > τ`, §2).
//!
//! The framework's only assumption about the application domain is that any
//! two results can be tested for similarity. [`Similarity`] captures that;
//! [`ThresholdSimilarity`] adapts a real-valued similarity function and a
//! threshold `τ` into the predicate, which is how both the paper's
//! experiments (weighted Jaccard over documents, Eq. 4) and the examples in
//! this repo define `≈`.

/// A symmetric similarity predicate over items of type `T`.
///
/// Implementations must be symmetric (`similar(a, b) == similar(b, a)`);
/// reflexivity is irrelevant because the framework never compares an item
/// with itself.
pub trait Similarity<T: ?Sized> {
    /// True iff the two results are similar (and therefore may not both
    /// appear in the diversified top-k).
    fn similar(&self, a: &T, b: &T) -> bool;
}

/// `sim(a, b) > τ` for a user-supplied scoring function.
#[derive(Debug, Clone)]
pub struct ThresholdSimilarity<F> {
    function: F,
    tau: f64,
}

impl<F> ThresholdSimilarity<F> {
    /// Builds the predicate; `tau` must lie in `(0, 1]` (Definition 1's
    /// range for the threshold).
    pub fn new(function: F, tau: f64) -> ThresholdSimilarity<F> {
        assert!(tau > 0.0 && tau <= 1.0, "τ must be in (0, 1], got {tau}");
        ThresholdSimilarity { function, tau }
    }

    /// The threshold `τ`.
    pub fn tau(&self) -> f64 {
        self.tau
    }
}

impl<T: ?Sized, F: Fn(&T, &T) -> f64> Similarity<T> for ThresholdSimilarity<F> {
    #[inline]
    fn similar(&self, a: &T, b: &T) -> bool {
        (self.function)(a, b) > self.tau
    }
}

/// Blanket impl so plain closures `Fn(&T, &T) -> bool` work as predicates.
impl<T: ?Sized, F: Fn(&T, &T) -> bool> Similarity<T> for F {
    #[inline]
    fn similar(&self, a: &T, b: &T) -> bool {
        self(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_strict() {
        let sim = ThresholdSimilarity::new(|a: &f64, b: &f64| 1.0 - (a - b).abs(), 0.6);
        assert!(sim.similar(&0.5, &0.6)); // sim = 0.9 > 0.6
        assert!(!sim.similar(&0.0, &0.4)); // sim = 0.6, not > 0.6
        assert_eq!(sim.tau(), 0.6);
    }

    #[test]
    #[should_panic(expected = "τ must be in (0, 1]")]
    fn rejects_out_of_range_tau() {
        let _ = ThresholdSimilarity::new(|_: &i32, _: &i32| 0.0, 0.0);
    }

    #[test]
    fn closures_are_similarities() {
        let pred = |a: &i32, b: &i32| (a - b).abs() <= 1;
        assert!(pred.similar(&3, &4));
        assert!(!pred.similar(&3, &5));
    }
}
