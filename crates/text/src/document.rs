//! Documents as term-multiset signatures.

use crate::chunked::{Fingerprint, Fnv1a};

/// Document identifier within one corpus. Dense, `0..n`.
pub type DocId = u32;

/// Term identifier within one vocabulary. Dense, `0..|V|`.
pub type TermId = u32;

/// A document reduced to what scoring and similarity need: its title, its
/// term multiset (sorted `(term, count)` pairs, stop words removed) and its
/// post-stop-word token count `len(d)` (Eq. 3's normalizer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Display title (synthetic corpora use generated titles).
    pub title: String,
    /// Sorted by term id, counts ≥ 1. The multiset signature used by both
    /// TF lookup (Eq. 3) and weighted Jaccard (Eq. 4).
    pub terms: Vec<(TermId, u32)>,
    /// Total number of (non-stop-word) tokens.
    pub len: u32,
}

impl Document {
    /// Builds a document signature from an unsorted token-id list.
    pub fn from_tokens(title: String, mut tokens: Vec<TermId>) -> Document {
        tokens.sort_unstable();
        let len = tokens.len() as u32;
        let mut terms: Vec<(TermId, u32)> = Vec::new();
        for t in tokens {
            match terms.last_mut() {
                Some((last, count)) if *last == t => *count += 1,
                _ => terms.push((t, 1)),
            }
        }
        Document { title, terms, len }
    }

    /// Term frequency `tf(t, d)`.
    #[inline]
    pub fn tf(&self, term: TermId) -> u32 {
        match self.terms.binary_search_by_key(&term, |&(t, _)| t) {
            Ok(i) => self.terms[i].1,
            Err(_) => 0,
        }
    }

    /// True iff the document contains `term`.
    #[inline]
    pub fn contains(&self, term: TermId) -> bool {
        self.tf(term) > 0
    }

    /// Number of distinct terms.
    pub fn distinct_terms(&self) -> usize {
        self.terms.len()
    }
}

impl Fingerprint for Document {
    /// Hashes the full signature — title bytes, token count, and the
    /// sorted `(term, count)` multiset — so the snapshot layer's chunk
    /// fingerprints change iff any stored document byte changes.
    fn fingerprint_into(&self, h: &mut Fnv1a) {
        h.write_u64(self.title.len() as u64);
        h.write_bytes(self.title.as_bytes());
        h.write_u32(self.len);
        h.write_u64(self.terms.len() as u64);
        for &(t, count) in &self.terms {
            h.write_u32(t);
            h.write_u32(count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_tokens_builds_sorted_counts() {
        let d = Document::from_tokens("t".into(), vec![5, 2, 5, 9, 2, 5]);
        assert_eq!(d.terms, vec![(2, 2), (5, 3), (9, 1)]);
        assert_eq!(d.len, 6);
        assert_eq!(d.distinct_terms(), 3);
    }

    #[test]
    fn tf_lookup() {
        let d = Document::from_tokens("t".into(), vec![1, 1, 7]);
        assert_eq!(d.tf(1), 2);
        assert_eq!(d.tf(7), 1);
        assert_eq!(d.tf(3), 0);
        assert!(d.contains(7));
        assert!(!d.contains(3));
    }

    #[test]
    fn empty_document() {
        let d = Document::from_tokens("empty".into(), vec![]);
        assert_eq!(d.len, 0);
        assert!(d.terms.is_empty());
    }
}
