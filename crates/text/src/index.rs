//! The inverted index: per-term posting lists sorted by score contribution.
//!
//! Each posting stores the document and its *partial score*
//! `tf · idf / sqrt(len)` for that term, so a list scan enumerates
//! documents in non-increasing order of their single-term score (the
//! incremental source of §8's reuters setup) and the threshold algorithm's
//! sorted accesses are exactly list positions (the enwiki setup).

use crate::corpus::Corpus;
use crate::document::{DocId, TermId};

/// One inverted-list entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// Term frequency of the list's term in `doc`.
    pub tf: u32,
    /// `tf · idf / sqrt(len(doc))` — this term's contribution to Eq. 3.
    pub partial: f64,
}

/// Inverted index over a corpus.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    lists: Vec<Vec<Posting>>,
}

impl InvertedIndex {
    /// Builds the index; each list is sorted by `partial` descending
    /// (ties: ascending doc id, so ordering is deterministic — repeated
    /// builds and scans yield identical posting sequences).
    pub fn build(corpus: &Corpus) -> InvertedIndex {
        InvertedIndex::build_where(corpus, |_| true)
    }

    /// Builds the index restricted to the documents `keep` accepts, with
    /// **global** doc ids, IDF weights, and length normalization — the
    /// partial scores are bit-identical to the full index's. This is the
    /// shard construction primitive: because every list uses the same
    /// `(partial desc, doc asc)` comparator over a subset of the same
    /// totally ordered postings, each shard list is an exact subsequence of
    /// the full list, so a k-way merge of shard scans with the same
    /// tie-break reproduces the unsharded scan order exactly
    /// (`divtopk-engine` property-tests this).
    pub fn build_where(corpus: &Corpus, keep: impl Fn(DocId) -> bool) -> InvertedIndex {
        InvertedIndex::build_from_ids(corpus, (0..corpus.num_docs() as DocId).filter(|&d| keep(d)))
    }

    /// Builds the index over only the documents in `range` — the segment
    /// construction primitive of the live-update path ([`crate::segments`]):
    /// O(range) work instead of a full corpus rescan, with the exact same
    /// global statistics and `(partial desc, doc asc)` ordering as
    /// [`InvertedIndex::build_where`] over the same documents, so segment
    /// postings are bit-identical to a from-scratch rebuild's.
    pub fn build_range(corpus: &Corpus, range: std::ops::Range<DocId>) -> InvertedIndex {
        assert!(
            range.end as usize <= corpus.num_docs(),
            "doc range {range:?} outside corpus"
        );
        InvertedIndex::build_from_ids(corpus, range)
    }

    fn build_from_ids(corpus: &Corpus, ids: impl Iterator<Item = DocId>) -> InvertedIndex {
        let mut lists: Vec<Vec<Posting>> = vec![Vec::new(); corpus.num_terms()];
        for doc_id in ids {
            let doc = corpus.doc(doc_id);
            if doc.len == 0 {
                continue;
            }
            let inv_sqrt_len = 1.0 / (doc.len as f64).sqrt();
            for &(t, tf) in &doc.terms {
                let partial = tf as f64 * corpus.idf(t) * inv_sqrt_len;
                lists[t as usize].push(Posting {
                    doc: doc_id,
                    tf,
                    partial,
                });
            }
        }
        for list in &mut lists {
            list.sort_by(posting_order);
        }
        InvertedIndex { lists }
    }

    /// Assembles an index directly from per-term posting lists that are
    /// already in `(partial desc, doc asc)` order — the compaction
    /// primitive: merging segment lists posting-by-posting preserves the
    /// stored `partial` bits exactly, where a rescore could only *equal*
    /// them. Debug builds verify the ordering invariant.
    pub(crate) fn from_sorted_lists(lists: Vec<Vec<Posting>>) -> InvertedIndex {
        debug_assert!(lists.iter().all(|list| {
            list.windows(2)
                .all(|w| posting_order(&w[0], &w[1]) != std::cmp::Ordering::Greater)
        }));
        InvertedIndex { lists }
    }

    /// The posting-list total order every build and merge in this crate
    /// uses: partial score descending, ties by ascending doc id.
    pub fn posting_order(a: &Posting, b: &Posting) -> std::cmp::Ordering {
        posting_order(a, b)
    }

    /// The posting list for `term` (sorted by partial score, descending).
    pub fn postings(&self, term: TermId) -> &[Posting] {
        &self.lists[term as usize]
    }

    /// Number of terms (lists).
    pub fn num_terms(&self) -> usize {
        self.lists.len()
    }

    /// Total number of postings (index size).
    pub fn num_postings(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }
}

/// `(partial desc, doc asc)` — the one true posting order (see
/// [`InvertedIndex::posting_order`]).
fn posting_order(a: &Posting, b: &Posting) -> std::cmp::Ordering {
    b.partial
        .partial_cmp(&a.partial)
        .expect("partial scores are finite")
        .then(a.doc.cmp(&b.doc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tfidf;

    fn corpus() -> Corpus {
        let mut b = Corpus::builder();
        b.add_text("d0", "apple apple orchard");
        b.add_text("d1", "apple pie");
        b.add_text("d2", "orchard walk trees");
        b.add_text("d3", "completely different");
        b.build()
    }

    #[test]
    fn lists_cover_exactly_the_containing_docs() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let apple = c.term_id("apple").unwrap();
        let docs: Vec<DocId> = idx.postings(apple).iter().map(|p| p.doc).collect();
        let mut sorted = docs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn lists_are_sorted_by_partial_desc() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        for t in 0..c.num_terms() as TermId {
            let list = idx.postings(t);
            assert!(
                list.windows(2).all(|w| w[0].partial >= w[1].partial),
                "list for {t} unsorted"
            );
        }
    }

    #[test]
    fn partials_match_eq3() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        for t in 0..c.num_terms() as TermId {
            for p in idx.postings(t) {
                let want = tfidf::partial_score(&c, t, p.doc);
                assert!((p.partial - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn equal_partials_are_ordered_by_doc_id() {
        // Identical documents produce identical partial scores; the list
        // order must still be deterministic (ascending doc id), not an
        // accident of sort internals.
        let mut b = Corpus::builder();
        for i in 0..6 {
            b.add_text(&format!("d{i}"), "wheat harvest season");
        }
        b.add_text("filler", "unrelated words entirely");
        let c = b.build();
        let idx = InvertedIndex::build(&c);
        let wheat = c.term_id("wheat").unwrap();
        let docs: Vec<DocId> = idx.postings(wheat).iter().map(|p| p.doc).collect();
        assert_eq!(docs, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn build_where_lists_are_subsequences_with_identical_partials() {
        let c = crate::synth::generate(&crate::synth::SynthConfig {
            num_docs: 120,
            ..crate::synth::SynthConfig::tiny()
        });
        let full = InvertedIndex::build(&c);
        for shards in [2usize, 3, 5] {
            let parts: Vec<InvertedIndex> = (0..shards)
                .map(|s| InvertedIndex::build_where(&c, |d| d as usize % shards == s))
                .collect();
            for t in 0..c.num_terms() as TermId {
                // Partition: every posting lands in exactly one shard, and
                // each shard list preserves the full list's relative order
                // (same comparator on a subset of a total order).
                let mut cursors = vec![0usize; shards];
                for p in full.postings(t) {
                    let s = p.doc as usize % shards;
                    let got = parts[s].postings(t)[cursors[s]];
                    assert_eq!(got.doc, p.doc);
                    assert_eq!(got.partial.to_bits(), p.partial.to_bits());
                    cursors[s] += 1;
                }
                for (s, part) in parts.iter().enumerate() {
                    assert_eq!(cursors[s], part.postings(t).len());
                }
            }
        }
    }

    #[test]
    fn build_range_is_bit_identical_to_build_where_over_the_same_docs() {
        let c = crate::synth::generate(&crate::synth::SynthConfig {
            num_docs: 90,
            ..crate::synth::SynthConfig::tiny()
        });
        for (start, end) in [(0u32, 30u32), (30, 75), (75, 90), (40, 40)] {
            let ranged = InvertedIndex::build_range(&c, start..end);
            let filtered = InvertedIndex::build_where(&c, |d| (start..end).contains(&d));
            assert_eq!(ranged.num_terms(), filtered.num_terms());
            for t in 0..c.num_terms() as TermId {
                let a = ranged.postings(t);
                let b = filtered.postings(t);
                assert_eq!(a.len(), b.len(), "term {t} range {start}..{end}");
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.doc, y.doc);
                    assert_eq!(x.tf, y.tf);
                    assert_eq!(x.partial.to_bits(), y.partial.to_bits());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside corpus")]
    fn build_range_rejects_out_of_bounds() {
        let c = corpus();
        let _ = InvertedIndex::build_range(&c, 0..99);
    }

    #[test]
    fn postings_count() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        // d0: 2 distinct, d1: 2, d2: 3, d3: 2.
        assert_eq!(idx.num_postings(), 9);
        assert_eq!(idx.num_terms(), c.num_terms());
    }
}
