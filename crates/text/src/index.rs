//! The inverted index: per-term posting lists sorted by score contribution.
//!
//! Each posting stores the document and its *partial score*
//! `tf · idf / sqrt(len)` for that term, so a list scan enumerates
//! documents in non-increasing order of their single-term score (the
//! incremental source of §8's reuters setup) and the threshold algorithm's
//! sorted accesses are exactly list positions (the enwiki setup).

use crate::corpus::Corpus;
use crate::document::{DocId, TermId};

/// One inverted-list entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// Term frequency of the list's term in `doc`.
    pub tf: u32,
    /// `tf · idf / sqrt(len(doc))` — this term's contribution to Eq. 3.
    pub partial: f64,
}

/// Inverted index over a corpus.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    lists: Vec<Vec<Posting>>,
}

impl InvertedIndex {
    /// Builds the index; each list is sorted by `partial` descending
    /// (ties: ascending doc id, so ordering is deterministic).
    pub fn build(corpus: &Corpus) -> InvertedIndex {
        let mut lists: Vec<Vec<Posting>> = vec![Vec::new(); corpus.num_terms()];
        for (doc_idx, doc) in corpus.docs().iter().enumerate() {
            if doc.len == 0 {
                continue;
            }
            let inv_sqrt_len = 1.0 / (doc.len as f64).sqrt();
            for &(t, tf) in &doc.terms {
                let partial = tf as f64 * corpus.idf(t) * inv_sqrt_len;
                lists[t as usize].push(Posting {
                    doc: doc_idx as DocId,
                    tf,
                    partial,
                });
            }
        }
        for list in &mut lists {
            list.sort_by(|a, b| {
                b.partial
                    .partial_cmp(&a.partial)
                    .expect("partial scores are finite")
                    .then(a.doc.cmp(&b.doc))
            });
        }
        InvertedIndex { lists }
    }

    /// The posting list for `term` (sorted by partial score, descending).
    pub fn postings(&self, term: TermId) -> &[Posting] {
        &self.lists[term as usize]
    }

    /// Number of terms (lists).
    pub fn num_terms(&self) -> usize {
        self.lists.len()
    }

    /// Total number of postings (index size).
    pub fn num_postings(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tfidf;

    fn corpus() -> Corpus {
        let mut b = Corpus::builder();
        b.add_text("d0", "apple apple orchard");
        b.add_text("d1", "apple pie");
        b.add_text("d2", "orchard walk trees");
        b.add_text("d3", "completely different");
        b.build()
    }

    #[test]
    fn lists_cover_exactly_the_containing_docs() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let apple = c.term_id("apple").unwrap();
        let docs: Vec<DocId> = idx.postings(apple).iter().map(|p| p.doc).collect();
        let mut sorted = docs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn lists_are_sorted_by_partial_desc() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        for t in 0..c.num_terms() as TermId {
            let list = idx.postings(t);
            assert!(
                list.windows(2).all(|w| w[0].partial >= w[1].partial),
                "list for {t} unsorted"
            );
        }
    }

    #[test]
    fn partials_match_eq3() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        for t in 0..c.num_terms() as TermId {
            for p in idx.postings(t) {
                let want = tfidf::partial_score(&c, t, p.doc);
                assert!((p.partial - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn postings_count() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        // d0: 2 distinct, d1: 2, d2: 3, d3: 2.
        assert_eq!(idx.num_postings(), 9);
        assert_eq!(idx.num_terms(), c.num_terms());
    }
}
