//! Keyword queries and the paper's `kfreq` banding (§8, Fig. 12).
//!
//! The paper buckets keywords by document frequency: with `π` the maximum
//! df over all (non-stop-word) terms, a keyword "has frequency `p`"
//! (`p ∈ {1..5}`) iff its df lies in `((p−1)·π/5, p·π/5]`. Experiments then
//! vary `kfreq`, the average frequency band of the query's keywords.

use crate::corpus::Corpus;
use crate::document::TermId;

/// A multi-keyword query (term ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordQuery {
    /// Query terms (deduplicated).
    pub terms: Vec<TermId>,
}

impl KeywordQuery {
    /// Builds a query from strings, dropping unknown terms.
    pub fn parse(corpus: &Corpus, text: &str) -> KeywordQuery {
        let mut terms: Vec<TermId> = crate::tokenize::tokenize(text)
            .into_iter()
            .filter(|t| !crate::stopwords::is_stopword(t))
            .filter_map(|t| corpus.term_id(&t))
            .collect();
        terms.sort_unstable();
        terms.dedup();
        KeywordQuery { terms }
    }
}

/// The frequency band (`1..=5`) of a term with document frequency `df`,
/// given the corpus maximum `π`. Terms with `df = 0` have no band.
pub fn kfreq_band(df: u32, pi: u32) -> Option<u8> {
    if df == 0 || pi == 0 {
        return None;
    }
    // Band p covers ((p-1)·π/5, p·π/5]; equivalently ceil(5·df/π) clamped.
    let band = ((df as u64 * 5).div_ceil(pi as u64)).clamp(1, 5);
    Some(band as u8)
}

/// Selects, for each band `1..=5`, up to `per_band` representative terms:
/// the terms whose df is closest to the band's midpoint (deterministic
/// tie-break by term id). Bands with no inhabitants come back empty.
pub fn representative_terms(corpus: &Corpus, per_band: usize) -> [Vec<TermId>; 5] {
    let pi = corpus.max_doc_freq();
    let mut per: [Vec<(u64, TermId)>; 5] = Default::default();
    if pi == 0 {
        return per.map(|_| Vec::new());
    }
    for t in 0..corpus.num_terms() as TermId {
        let df = corpus.doc_freq(t);
        let Some(band) = kfreq_band(df, pi) else {
            continue;
        };
        let b = band as usize - 1;
        // Distance to the band midpoint (b + 0.5)·π/5, kept integral by
        // scaling both sides by 10: |10·df − (2b + 1)·π|.
        let dist = (df as u64 * 10).abs_diff((2 * b as u64 + 1) * pi as u64);
        per[b].push((dist, t));
    }
    per.map(|mut v| {
        v.sort_unstable();
        v.truncate(per_band);
        v.into_iter().map(|(_, t)| t).collect()
    })
}

/// Builds one query of `num_terms` terms from band `kfreq` (1..=5),
/// deterministically from `seed`. Returns `None` when the band is empty.
pub fn query_for_band(
    corpus: &Corpus,
    kfreq: u8,
    num_terms: usize,
    seed: u64,
) -> Option<KeywordQuery> {
    assert!((1..=5).contains(&kfreq));
    let reps = representative_terms(corpus, num_terms.max(8) * 4);
    let pool = &reps[kfreq as usize - 1];
    if pool.is_empty() {
        return None;
    }
    let mut rng = divtopk_core::rng::Pcg::new(seed ^ (kfreq as u64) << 32);
    let mut terms: Vec<TermId> = Vec::new();
    let mut guard = 0;
    while terms.len() < num_terms.min(pool.len()) && guard < 1000 {
        let cand = pool[rng.below(pool.len() as u32) as usize];
        if !terms.contains(&cand) {
            terms.push(cand);
        }
        guard += 1;
    }
    terms.sort_unstable();
    Some(KeywordQuery { terms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, generate};

    #[test]
    fn band_boundaries() {
        // π = 100: band 1 = (0,20], band 2 = (20,40], … band 5 = (80,100].
        assert_eq!(kfreq_band(1, 100), Some(1));
        assert_eq!(kfreq_band(20, 100), Some(1));
        assert_eq!(kfreq_band(21, 100), Some(2));
        assert_eq!(kfreq_band(80, 100), Some(4));
        assert_eq!(kfreq_band(81, 100), Some(5));
        assert_eq!(kfreq_band(100, 100), Some(5));
        assert_eq!(kfreq_band(0, 100), None);
        assert_eq!(kfreq_band(5, 0), None);
    }

    #[test]
    fn representative_terms_live_in_their_band() {
        let c = generate(&SynthConfig::tiny());
        let pi = c.max_doc_freq();
        let reps = representative_terms(&c, 3);
        for (b, terms) in reps.iter().enumerate() {
            for &t in terms {
                assert_eq!(
                    kfreq_band(c.doc_freq(t), pi),
                    Some(b as u8 + 1),
                    "term {t} df {} in wrong band",
                    c.doc_freq(t)
                );
            }
        }
        // The Zipf spectrum guarantees at least the low bands are populated.
        assert!(!reps[0].is_empty());
    }

    #[test]
    fn query_for_band_is_deterministic() {
        let c = generate(&SynthConfig::tiny());
        let q1 = query_for_band(&c, 1, 2, 42);
        let q2 = query_for_band(&c, 1, 2, 42);
        assert_eq!(q1, q2);
        assert!(q1.unwrap().terms.len() <= 2);
    }

    #[test]
    fn parse_drops_stopwords_and_unknowns() {
        let mut b = Corpus::builder();
        b.add_text("d", "solar panels power the grid");
        let c = b.build();
        let q = KeywordQuery::parse(&c, "The Solar PANELS zzz-unknown");
        assert_eq!(q.terms.len(), 2);
        assert!(q.terms.contains(&c.term_id("solar").unwrap()));
        assert!(q.terms.contains(&c.term_id("panels").unwrap()));
    }
}
