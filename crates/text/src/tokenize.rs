//! Tokenization: lowercase alphanumeric word splitting.
//!
//! The paper's evaluation indexes Wikipedia/Reuters text after stop-word
//! removal (§8). We use the simplest robust scheme: maximal runs of ASCII
//! alphanumeric characters, lowercased. Unicode letters are passed through
//! `char::is_alphanumeric` so non-ASCII corpora still tokenize sanely.

/// Splits `text` into lowercase alphanumeric tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lower in ch.to_lowercase() {
                current.push(lower);
            }
        } else if !current.is_empty() {
            out.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Iterator flavour for pipelines that do not need a `Vec`.
pub fn tokens(text: &str) -> impl Iterator<Item = String> + '_ {
    // Implemented over the eager version for simplicity; the corpus
    // builder dominates cost elsewhere (hashing), measured in benches.
    tokenize(text).into_iter()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumerics() {
        assert_eq!(
            tokenize("Hello, world! 42 times."),
            vec!["hello", "world", "42", "times"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("RuSt RUST rust"), vec!["rust", "rust", "rust"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("?!... --- ###").is_empty());
    }

    #[test]
    fn unicode_words_survive() {
        assert_eq!(tokenize("Köln café №5"), vec!["köln", "café", "5"]);
    }

    #[test]
    fn no_empty_tokens() {
        assert!(tokenize("a  b\t\nc").iter().all(|t| !t.is_empty()));
    }
}
