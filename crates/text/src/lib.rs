//! # divtopk-text — text-search substrate for diversified top-k
//!
//! Everything the evaluation of *Diversifying Top-K Results* (VLDB 2012)
//! needs around the core algorithms: a tokenizer and stop-word list, an
//! in-memory corpus with IDF statistics, an inverted index, Eq. 3's
//! length-normalized TF·IDF scoring, Eq. 4's weighted Jaccard similarity,
//! the two §8 result sources (threshold algorithm for multi-keyword
//! queries; posting-list scan for single keywords), deterministic synthetic
//! corpora standing in for enwiki/reuters (see `DESIGN.md` §3 for why the
//! substitution preserves the evaluation's shape), kfreq query banding
//! (Fig. 12), and the [`search::DiversifiedSearcher`] glue.
//!
//! ```
//! use divtopk_text::prelude::*;
//!
//! // Build a small corpus, index it, run a diversified search.
//! let mut builder = Corpus::builder();
//! builder.add_text("a1", "rust memory safety borrow checker");
//! builder.add_text("a2", "rust memory safety borrow checker ownership");
//! builder.add_text("a3", "rust web framework async");
//! builder.add_text("a4", "gardening tips tomato");
//! for i in 0..6 {
//!     // Filler documents keep idf("rust") > 0 in this tiny corpus.
//!     builder.add_text(&format!("f{i}"), "unrelated filler text");
//! }
//! let corpus = builder.build();
//! let index = InvertedIndex::build(&corpus);
//! let searcher = DiversifiedSearcher::new(&corpus, &index);
//!
//! let rust = corpus.term_id("rust").unwrap();
//! let out = searcher
//!     .search_scan(rust, &SearchOptions::new(2).with_tau(0.5))
//!     .unwrap();
//! // a1 and a2 are near-duplicates: only one of them may appear.
//! assert_eq!(out.hits.len(), 2);
//! ```

// This crate is pure safe Rust; keep it that way. The workspace's only
// unsafe lives in divtopk-core's scoped pool and the bench allocator,
// each behind a SAFETY argument checked by divtopk-lint.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod chunked;
pub mod corpus;
pub mod document;
pub mod index;
pub mod jaccard;
pub mod mmr;
pub mod mode;
pub mod persist;
pub mod quality;
pub mod query;
pub mod scan;
pub mod search;
pub mod segments;
pub mod stopwords;
pub mod synth;
pub mod ta;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

/// One-stop imports.
pub mod prelude {
    pub use crate::chunked::{CHUNK, ChunkedVec};
    pub use crate::corpus::{Corpus, CorpusBuilder};
    pub use crate::document::{DocId, Document, TermId};
    pub use crate::index::{InvertedIndex, Posting};
    pub use crate::jaccard::{
        similar_above, total_weight, weighted_jaccard, weighted_jaccard_with,
    };
    pub use crate::mmr::{MmrConfig, mmr_documents, mmr_rerank};
    pub use crate::mode::{DiversifyMode, KnnConfig, WindowConfig};
    pub use crate::persist::SnapshotError;
    pub use crate::quality::{diversified_score, redundancy};
    pub use crate::query::{KeywordQuery, kfreq_band, query_for_band, representative_terms};
    pub use crate::scan::ScanSource;
    pub use crate::search::{
        DiversifiedSearcher, Hit, SearchOptions, SearchOutput, WeightTable, doc_weights,
        search_with_source, validate_terms,
    };
    pub use crate::segments::{Segment, SegmentedIndex, Tombstones};
    pub use crate::synth::{SynthConfig, generate, generate_labeled};
    pub use crate::ta::TaSource;
    pub use crate::tfidf::{partial_score, score};
    pub use crate::tokenize::tokenize;
}

pub use prelude::*;
