//! The term dictionary.

use crate::document::TermId;
use divtopk_core::fxhash::FxHashMap;

/// Bidirectional string ↔ [`TermId`] mapping.
///
/// The lookup map uses the deterministic
/// [`FxHasher`](divtopk_core::fxhash::FxHasher): dictionary
/// construction sits on both the corpus build and the snapshot
/// cold-start path (DESIGN.md §10), and SipHash's DoS hardening is the
/// wrong trade for an internal map over the corpus's own terms.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    terms: Vec<String>,
    index: FxHashMap<String, TermId>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// A synthetic vocabulary `t000000 … t(n-1)` for generated corpora.
    pub fn synthetic(n: usize) -> Vocabulary {
        let mut v = Vocabulary::new();
        for i in 0..n {
            v.intern(&format!("t{i:06}"));
        }
        v
    }

    /// Builds a vocabulary from an ordered term list in one pass — the
    /// snapshot load path ([`crate::persist`]), where the ids are already
    /// assigned by position. Returns `None` if a term repeats (interning
    /// would silently renumber everything after the duplicate).
    pub(crate) fn from_terms(terms: Vec<String>) -> Option<Vocabulary> {
        let mut index = FxHashMap::with_capacity_and_hasher(terms.len(), Default::default());
        for (i, term) in terms.iter().enumerate() {
            if index.insert(term.clone(), i as TermId).is_some() {
                return None;
            }
        }
        Some(Vocabulary { terms, index })
    }

    /// Returns the id for `term`, interning it if new.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = self.terms.len() as TermId;
        self.terms.push(term.to_owned());
        self.index.insert(term.to_owned(), id);
        id
    }

    /// Looks a term up without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.index.get(term).copied()
    }

    /// The string for a term id.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id as usize]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("apple");
        let b = v.intern("banana");
        assert_ne!(a, b);
        assert_eq!(v.intern("apple"), a);
        assert_eq!(v.len(), 2);
        assert_eq!(v.term(a), "apple");
        assert_eq!(v.get("banana"), Some(b));
        assert_eq!(v.get("cherry"), None);
    }

    #[test]
    fn synthetic_vocab_has_stable_names() {
        let v = Vocabulary::synthetic(3);
        assert_eq!(v.len(), 3);
        assert_eq!(v.term(0), "t000000");
        assert_eq!(v.get("t000002"), Some(2));
    }
}
