//! Result-quality metrics for comparing selection strategies.
//!
//! The paper argues by construction (exactness) rather than by IR metrics,
//! but comparing the exact diversified top-k against greedy and MMR needs a
//! common yardstick. Two natural ones for Definition 1's objective:
//!
//! * [`diversified_score`] — the paper's objective itself: total score of
//!   the selection *if it satisfies the pairwise-dissimilarity constraint*,
//!   else the total score of its best feasible subset is NOT computed —
//!   constraint violations are reported separately by [`redundancy`];
//! * [`redundancy`] — how much pairwise similarity above τ a selection
//!   carries (0 for any feasible diversified answer).

use crate::corpus::Corpus;
use crate::document::DocId;
use crate::jaccard::weighted_jaccard;
use divtopk_core::{Score, Scored};

/// Total relevance score of a selection.
pub fn total_score(selection: &[Scored<DocId>]) -> Score {
    selection.iter().map(|r| r.score).sum()
}

/// Counts pairs whose similarity exceeds `tau` and returns
/// `(violating_pairs, max_pairwise_similarity)`.
pub fn redundancy(corpus: &Corpus, selection: &[Scored<DocId>], tau: f64) -> (usize, f64) {
    let mut violations = 0;
    let mut max_sim = 0.0f64;
    for i in 0..selection.len() {
        for j in (i + 1)..selection.len() {
            let s = weighted_jaccard(
                corpus,
                corpus.doc(selection[i].item),
                corpus.doc(selection[j].item),
            );
            max_sim = max_sim.max(s);
            if s > tau {
                violations += 1;
            }
        }
    }
    (violations, max_sim)
}

/// The paper's objective value of a selection at threshold `tau`:
/// its total score when feasible (no pair above τ), `None` otherwise.
pub fn diversified_score(corpus: &Corpus, selection: &[Scored<DocId>], tau: f64) -> Option<Score> {
    let (violations, _) = redundancy(corpus, selection, tau);
    (violations == 0).then(|| total_score(selection))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut b = Corpus::builder();
        b.add_text("a", "solar panels efficiency report");
        b.add_text("b", "solar panels efficiency report"); // exact dup of a
        b.add_text("c", "wind turbines offshore");
        for i in 0..5 {
            b.add_text(&format!("f{i}"), "noise filler words");
        }
        b.build()
    }

    fn sel(ids: &[(u32, f64)]) -> Vec<Scored<DocId>> {
        ids.iter()
            .map(|&(d, s)| Scored::new(d, Score::new(s)))
            .collect()
    }

    #[test]
    fn redundancy_counts_similar_pairs() {
        let c = corpus();
        let s = sel(&[(0, 5.0), (1, 4.0), (2, 3.0)]);
        let (violations, max_sim) = redundancy(&c, &s, 0.6);
        assert_eq!(violations, 1); // the (a, b) duplicate pair
        assert_eq!(max_sim, 1.0);
    }

    #[test]
    fn diversified_score_requires_feasibility() {
        let c = corpus();
        let infeasible = sel(&[(0, 5.0), (1, 4.0)]);
        assert_eq!(diversified_score(&c, &infeasible, 0.6), None);
        let feasible = sel(&[(0, 5.0), (2, 3.0)]);
        assert_eq!(diversified_score(&c, &feasible, 0.6), Some(Score::new(8.0)));
    }

    #[test]
    fn empty_selection_is_feasible_and_zero() {
        let c = corpus();
        assert_eq!(diversified_score(&c, &[], 0.6), Some(Score::ZERO));
        assert_eq!(redundancy(&c, &[], 0.6), (0, 0.0));
    }
}
