//! Deterministic synthetic corpora standing in for enwiki / reuters.
//!
//! The paper evaluates on the English Wikipedia (11.9M articles) and the
//! Reuters-21578 news collection — neither shippable here. What the
//! diversified-search algorithms actually consume, though, is the *shape*
//! of the per-query diversity graph: clusters of mutually similar documents
//! (same topic, near-duplicates) bridged by a few hub documents. The
//! generator reproduces those structures:
//!
//! * a **Zipfian global vocabulary** (realistic df spectrum → realistic
//!   IDF weights and kfreq bands),
//! * **topics**: each topic boosts a random vocabulary subset; documents
//!   draw a configurable fraction of tokens from their topic → documents
//!   sharing a topic have elevated weighted-Jaccard similarity,
//! * **near-duplicate chains**: with probability `near_dup_prob` a new
//!   document copies a random earlier one and resamples a fraction of its
//!   tokens — the dense "7 of the top-10 are the Apple logo" redundancy the
//!   paper's introduction motivates, and
//! * **two-topic blend documents** that bridge clusters (cut points in the
//!   diversity graph).
//!
//! Everything is driven by [`divtopk_core::rng::Pcg`] from a single seed:
//! corpora are bit-identical across runs and platforms.

use crate::corpus::{Corpus, CorpusBuilder};
use crate::document::TermId;
use divtopk_core::rng::Pcg;

/// Generator parameters. Start from a preset and tweak.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of documents.
    pub num_docs: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Number of topics.
    pub topics: usize,
    /// Zipf exponent for the global term distribution (≈1.0 for text).
    pub zipf_exponent: f64,
    /// Terms per topic = `vocab_size * topic_vocab_frac`.
    pub topic_vocab_frac: f64,
    /// Fraction of a document's tokens drawn from its topic distribution
    /// (the rest come from the global distribution).
    pub topic_mix: f64,
    /// Document length range (tokens, pre-deduplication), inclusive.
    pub doc_len: (usize, usize),
    /// Probability that a document is a near-duplicate of an earlier one.
    pub near_dup_prob: f64,
    /// Fraction of tokens resampled when producing a near-duplicate.
    pub near_dup_mutation: f64,
    /// Probability that a fresh document blends two topics (bridge doc).
    pub bridge_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SynthConfig {
    /// enwiki-like preset: large-ish, strongly clustered, long documents,
    /// pronounced near-duplicate chains (the paper observes that in enwiki
    /// "documents that fall into the same category can be similar to each
    /// other with high probability"). Scaled to laptop size — the paper's
    /// 11.9M articles only change constants, not algorithm ranking.
    pub fn enwiki_like() -> SynthConfig {
        SynthConfig {
            num_docs: 60_000,
            vocab_size: 120_000,
            topics: 40,
            zipf_exponent: 1.05,
            topic_vocab_frac: 0.02,
            topic_mix: 0.75,
            doc_len: (60, 240),
            near_dup_prob: 0.35,
            near_dup_mutation: 0.12,
            bridge_prob: 0.05,
            seed: 0xE911_71C1,
        }
    }

    /// reuters-like preset: exactly the paper's 21,578 documents, shorter
    /// texts, more topics and fewer duplicates → sparser diversity graphs
    /// ("the probability that two documents are similar is small").
    pub fn reuters_like() -> SynthConfig {
        SynthConfig {
            num_docs: 21_578,
            vocab_size: 40_000,
            topics: 90,
            zipf_exponent: 1.1,
            topic_vocab_frac: 0.01,
            topic_mix: 0.6,
            doc_len: (30, 120),
            near_dup_prob: 0.12,
            near_dup_mutation: 0.2,
            bridge_prob: 0.04,
            seed: 0x2E07,
        }
    }

    /// A small corpus for unit tests and doc examples (fast to build).
    pub fn tiny() -> SynthConfig {
        SynthConfig {
            num_docs: 600,
            vocab_size: 3_000,
            topics: 8,
            zipf_exponent: 1.0,
            topic_vocab_frac: 0.05,
            topic_mix: 0.7,
            doc_len: (20, 60),
            near_dup_prob: 0.3,
            near_dup_mutation: 0.15,
            bridge_prob: 0.05,
            seed: 7,
        }
    }

    /// Replaces the seed (for multi-trial benches).
    pub fn with_seed(mut self, seed: u64) -> SynthConfig {
        self.seed = seed;
        self
    }

    /// Replaces the document count.
    pub fn with_num_docs(mut self, num_docs: usize) -> SynthConfig {
        self.num_docs = num_docs;
        self
    }
}

/// A cumulative distribution over term ids for `Pcg::sample_cdf`.
struct TermCdf {
    terms: Vec<TermId>,
    cdf: Vec<f64>,
}

impl TermCdf {
    fn zipf(terms: Vec<TermId>, exponent: f64) -> TermCdf {
        let mut cdf = Vec::with_capacity(terms.len());
        let mut acc = 0.0f64;
        for rank in 0..terms.len() {
            acc += 1.0 / ((rank + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        TermCdf { terms, cdf }
    }

    #[inline]
    fn sample(&self, rng: &mut Pcg) -> TermId {
        self.terms[rng.sample_cdf(&self.cdf)]
    }
}

/// Generates a corpus from `config`. Deterministic in `config.seed`.
pub fn generate(config: &SynthConfig) -> Corpus {
    generate_labeled(config).0
}

/// Like [`generate`], but also returns each document's topic label
/// (near-duplicates inherit their source's topic; bridge documents are
/// labeled with their primary topic). The corpus is bit-identical to what
/// [`generate`] produces for the same config — the labels were always
/// computed internally, this just stops discarding them. The quality
/// harness uses them as ground-truth "sources" for unique-source@k.
pub fn generate_labeled(config: &SynthConfig) -> (Corpus, Vec<u32>) {
    assert!(config.num_docs > 0 && config.vocab_size > 0 && config.topics > 0);
    assert!(config.doc_len.0 >= 1 && config.doc_len.0 <= config.doc_len.1);
    let mut rng = Pcg::new(config.seed);

    // Global Zipf over a shuffled vocabulary (so term id ≠ frequency rank).
    let mut global_terms: Vec<TermId> = (0..config.vocab_size as TermId).collect();
    rng.shuffle(&mut global_terms);
    let global = TermCdf::zipf(global_terms.clone(), config.zipf_exponent);

    // Topic distributions: each topic Zipf-weights its own random subset.
    let topic_size = ((config.vocab_size as f64 * config.topic_vocab_frac) as usize).max(10);
    let topics: Vec<TermCdf> = (0..config.topics)
        .map(|_| {
            let mut subset: Vec<TermId> = (0..topic_size)
                .map(|_| global_terms[rng.below(config.vocab_size as u32) as usize])
                .collect();
            subset.dedup();
            TermCdf::zipf(subset, config.zipf_exponent)
        })
        .collect();

    let mut builder = CorpusBuilder::with_synthetic_vocab(config.vocab_size);
    // Token lists retained for near-duplicate cloning.
    let mut token_lists: Vec<Vec<TermId>> = Vec::with_capacity(config.num_docs);
    let mut doc_topic: Vec<usize> = Vec::with_capacity(config.num_docs);

    for i in 0..config.num_docs {
        let (tokens, topic) = if i > 0 && rng.chance(config.near_dup_prob) {
            // Near-duplicate of an earlier document.
            let src = rng.below(i as u32) as usize;
            let mut tokens = token_lists[src].clone();
            let topic = doc_topic[src];
            let dist = &topics[topic];
            for slot in tokens.iter_mut() {
                if rng.chance(config.near_dup_mutation) {
                    *slot = if rng.chance(config.topic_mix) {
                        dist.sample(&mut rng)
                    } else {
                        global.sample(&mut rng)
                    };
                }
            }
            (tokens, topic)
        } else {
            let topic = rng.below(config.topics as u32) as usize;
            let second_topic = if rng.chance(config.bridge_prob) {
                Some(rng.below(config.topics as u32) as usize)
            } else {
                None
            };
            let len = rng.range(config.doc_len.0 as u32, config.doc_len.1 as u32 + 1) as usize;
            let mut tokens = Vec::with_capacity(len);
            for _ in 0..len {
                let t = if rng.chance(config.topic_mix) {
                    match second_topic {
                        // Bridge documents split their topical tokens.
                        Some(t2) if rng.chance(0.5) => topics[t2].sample(&mut rng),
                        _ => topics[topic].sample(&mut rng),
                    }
                } else {
                    global.sample(&mut rng)
                };
                tokens.push(t);
            }
            (tokens, topic)
        };
        builder.add_tokens(format!("doc{i:07}"), tokens.clone());
        token_lists.push(tokens);
        doc_topic.push(topic);
    }
    let labels = doc_topic.iter().map(|&t| t as u32).collect();
    (builder.build(), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::weighted_jaccard;

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&SynthConfig::tiny());
        let b = generate(&SynthConfig::tiny());
        assert_eq!(a.num_docs(), b.num_docs());
        for d in 0..a.num_docs() as u32 {
            assert_eq!(a.doc(d).terms, b.doc(d).terms, "doc {d}");
        }
        let c = generate(&SynthConfig::tiny().with_seed(8));
        let same = (0..a.num_docs() as u32).all(|d| a.doc(d).terms == c.doc(d).terms);
        assert!(!same, "different seeds must differ");
    }

    #[test]
    fn sizes_match_config() {
        let config = SynthConfig::tiny();
        let c = generate(&config);
        assert_eq!(c.num_docs(), config.num_docs);
        assert_eq!(c.num_terms(), config.vocab_size);
        for d in c.docs() {
            assert!((d.len as usize) >= config.doc_len.0);
            assert!((d.len as usize) <= config.doc_len.1);
        }
    }

    #[test]
    fn near_duplicates_are_highly_similar() {
        // With dup probability 1 after the first doc, doc 1 duplicates
        // doc 0. Measured with uniform weights: corpus IDF in a 2-document
        // corpus is degenerate (every shared term clamps to idf 0), and
        // what we are testing here is the *copying*, not the weighting.
        let config = SynthConfig {
            num_docs: 2,
            near_dup_prob: 1.0,
            near_dup_mutation: 0.05,
            ..SynthConfig::tiny()
        };
        let c = generate(&config);
        let uniform = vec![1.0; c.num_terms()];
        let sim = crate::jaccard::weighted_jaccard_with(&uniform, c.doc(0), c.doc(1));
        assert!(sim > 0.6, "near-duplicate similarity {sim} too low");
    }

    #[test]
    fn corpus_has_similarity_structure_above_chance() {
        let c = generate(&SynthConfig::tiny());
        // Average similarity over a sample of pairs must be clearly nonzero
        // (topic clustering) but far from 1 (not everything is a dup).
        let mut rng = divtopk_core::rng::Pcg::new(99);
        let mut acc = 0.0;
        let mut high = 0usize;
        let trials = 400;
        for _ in 0..trials {
            let a = rng.below(c.num_docs() as u32);
            let b = rng.below(c.num_docs() as u32);
            if a == b {
                continue;
            }
            let s = weighted_jaccard(&c, c.doc(a), c.doc(b));
            acc += s;
            if s > 0.6 {
                high += 1;
            }
        }
        let mean = acc / trials as f64;
        assert!(mean > 0.001, "mean similarity {mean} — no structure");
        assert!(mean < 0.5, "mean similarity {mean} — everything similar");
        assert!(high > 0, "no near-duplicate pairs sampled");
    }

    #[test]
    fn labeled_generation_matches_unlabeled_and_is_in_range() {
        let config = SynthConfig::tiny();
        let plain = generate(&config);
        let (labeled, labels) = generate_labeled(&config);
        assert_eq!(labels.len(), config.num_docs);
        assert!(labels.iter().all(|&l| (l as usize) < config.topics));
        for d in 0..plain.num_docs() as u32 {
            assert_eq!(plain.doc(d).terms, labeled.doc(d).terms, "doc {d}");
        }
        // Near-duplicates inherit their source topic: with dup prob 1,
        // every doc after the first shares doc 0's label.
        let dup_config = SynthConfig {
            num_docs: 4,
            near_dup_prob: 1.0,
            ..SynthConfig::tiny()
        };
        let (_, dup_labels) = generate_labeled(&dup_config);
        assert!(dup_labels.iter().all(|&l| l == dup_labels[0]));
    }

    #[test]
    fn zipf_spectrum_spans_kfreq_bands() {
        let c = generate(&SynthConfig::tiny());
        let pi = c.max_doc_freq();
        assert!(pi > 10, "max df {pi} too flat");
        // At least three of the five df bands are inhabited.
        let mut bands = [false; 5];
        for t in 0..c.num_terms() as u32 {
            let df = c.doc_freq(t);
            if df == 0 {
                continue;
            }
            let band = (((df as u64 * 5).div_ceil(pi as u64)).clamp(1, 5) - 1) as usize;
            bands[band] = true;
        }
        assert!(bands.iter().filter(|&&b| b).count() >= 3, "{bands:?}");
    }
}
