//! Cold-start persistence: segment-granular incremental snapshots with
//! byte-equality load (DESIGN.md §10, §14).
//!
//! A production engine must restart in milliseconds, not re-tokenize and
//! re-sort its whole corpus — and it must *checkpoint* in O(what
//! changed), not O(corpus). This module defines a **dependency-free**
//! binary container and writers/readers for every serving-state type:
//! [`Vocabulary`], [`Corpus`] (frozen-statistics epoch included),
//! [`InvertedIndex`] (posting lists with their stored partials bit-exact
//! via [`f64::to_bits`]), and the full [`SegmentedIndex`] serving state
//! as a **snapshot directory** in the LSM-manifest shape.
//!
//! ## Container layout (every file in the snapshot)
//!
//! ```text
//! file     := header section*
//! header   := magic[8]="DIVTOPK\0"  version:u32  kind:u32  section_count:u32
//! section  := tag[4]  payload_len:u64  crc32:u32  payload[payload_len]
//! ```
//!
//! All integers are explicit little-endian; floats travel as
//! [`f64::to_bits`] words, so a load reproduces the exact bits the writer
//! held — the substrate of the byte-equality-after-load contract. Each
//! section's payload is protected by an in-repo CRC32 ([`crc32`], the
//! IEEE/zlib polynomial); the header fields are protected structurally
//! (magic, a pinned [`FORMAT_VERSION`], a per-snapshot-kind section
//! schedule, and an exact-consumption check at every level).
//!
//! ## The snapshot directory (DESIGN.md §14)
//!
//! [`save_segmented`] writes a *directory*, not one monolithic file:
//!
//! ```text
//! <dir>/MANIFEST            generation, counters, and one entry (length,
//!                           content fingerprint, whole-file CRC32) per
//!                           file below, plus the sparse tombstone list
//! <dir>/epoch.bin           vocabulary + frozen statistics (df, IDF)
//! <dir>/seg-<id:016x>.bin   one immutable segment's posting lists
//! <dir>/docs-<idx:08x>.bin  one document-store chunk + its weights
//! ```
//!
//! Segments and sealed document chunks are immutable, so a checkpoint
//! writes **only the files that did not exist at the previous
//! checkpoint** (new segments, the partial tail chunk) plus the small
//! manifest — O(delta) bytes, independent of corpus size. Every file is
//! written atomically (temp + fsync + rename + **parent-directory
//! fsync**) and the manifest is written last, so a crash at any point
//! leaves the *previous* manifest pointing at a complete, untouched file
//! set; files the new manifest no longer references are garbage-collected
//! only after the new manifest is durable. A snapshot directory belongs
//! to one engine lineage; per-file content fingerprints let the writer
//! (and loader) detect a stale file from a diverged lineage instead of
//! silently reusing it.
//!
//! ## Failure model
//!
//! Corrupt input — truncation at any byte, bit-flips anywhere, bad
//! magic/version, oversized section lengths, cross-file inconsistencies
//! (a manifest naming a missing or stale segment file, duplicate segment
//! ids, overlapping per-segment doc-id sets) — returns a typed
//! [`SnapshotError`], never a panic and never an attacker-sized
//! allocation: section lengths are bounds-checked against the bytes
//! actually present before any slice is taken, and element counts are
//! checked against the owning payload's size before any `Vec` is
//! reserved. `tests/persistence.rs` drives a truncate-every-offset +
//! flip-every-byte suite over every file of a valid snapshot directory
//! to pin this down.
//!
//! ## Versioning policy
//!
//! [`FORMAT_VERSION`] identifies the container revision. Readers accept
//! exactly the versions they know how to decode (currently only
//! version 1) and reject everything else with
//! [`SnapshotError::UnsupportedVersion`] — snapshots are cheap to
//! regenerate from the corpus, so there is no silent best-effort decoding
//! of future or past revisions. Any layout change bumps the version.

use crate::chunked::{CHUNK, ChunkedVec, Fnv1a};
use crate::corpus::Corpus;
use crate::document::{DocId, Document, TermId};
use crate::index::{InvertedIndex, Posting};
use crate::segments::{Segment, SegmentedIndex, Tombstones};
use crate::vocab::Vocabulary;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// The 8-byte file magic every snapshot starts with.
pub const MAGIC: [u8; 8] = *b"DIVTOPK\0";

/// The container format revision this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Snapshot kind: a standalone [`Corpus`].
pub const KIND_CORPUS: u32 = 1;
/// Snapshot kind: a standalone [`InvertedIndex`].
pub const KIND_INDEX: u32 = 2;
/// Snapshot kind: the `MANIFEST` of a [`SegmentedIndex`] snapshot
/// directory (what `Engine::save_snapshot` writes). Kind 3 was the
/// retired PR-5 monolithic segmented snapshot; the manifest deliberately
/// takes a fresh kind so a monolithic file can never half-decode as a
/// manifest.
pub const KIND_MANIFEST: u32 = 4;
/// Snapshot kind: the `epoch.bin` file (vocabulary + frozen statistics).
pub const KIND_EPOCH: u32 = 5;
/// Snapshot kind: one `seg-*.bin` immutable segment file.
pub const KIND_SEGMENT: u32 = 6;
/// Snapshot kind: one `docs-*.bin` document-store chunk file.
pub const KIND_CHUNK: u32 = 7;

/// File name of the manifest inside a snapshot directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
/// File name of the epoch (vocabulary + statistics) file.
pub const EPOCH_NAME: &str = "epoch.bin";

/// File name of the segment file for segment `id`.
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:016x}.bin")
}

/// File name of the document-store chunk file for chunk `index`.
pub fn chunk_file_name(index: usize) -> String {
    format!("docs-{index:08x}.bin")
}

/// Upper bound accepted for any stored score-feeding value (IDF,
/// posting partial, document weight). Legitimate values are tiny —
/// `idf ≤ ln(N)` and `partial ≤ tf·idf ≲ 10¹³` — while queries sum up
/// to `u32::MAX` of them, so admitting anything close to `f64::MAX`
/// would let a CRC-valid-but-forged snapshot overflow a query-time sum
/// to `+inf` and panic `Score::new` inside the serving process. With
/// this cap, `1e100 × 2³² ≪ f64::MAX` keeps every reachable sum finite.
const MAX_STORED_VALUE: f64 = 1e100;

const TAG_META: [u8; 4] = *b"META";
const TAG_VOCAB: [u8; 4] = *b"VOCB";
const TAG_STATS: [u8; 4] = *b"STAT";
const TAG_DOCS: [u8; 4] = *b"DOCS";
const TAG_WEIGHTS: [u8; 4] = *b"WGTS";
const TAG_TOMB: [u8; 4] = *b"TOMB";
const TAG_SEGS: [u8; 4] = *b"SEGS";
const TAG_CHUNKS: [u8; 4] = *b"CHNK";
const TAG_INDEX: [u8; 4] = *b"INDX";
/// Pseudo-tag reported in [`SnapshotError::ChecksumMismatch`] when a
/// whole referenced *file*'s bytes disagree with the CRC the manifest
/// recorded for it (as opposed to a section inside a file).
const TAG_FILE: [u8; 4] = *b"FILE";

/// Why a snapshot could not be written or decoded.
///
/// Every decode failure is typed — corrupt bytes must surface as an
/// error value, never as a panic inside a serving process restoring its
/// state (see the module-level failure model).
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a divtopk snapshot.
    BadMagic {
        /// The first 8 bytes actually found.
        found: [u8; 8],
    },
    /// The container declares a format revision this build cannot decode.
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
    },
    /// The container holds a different snapshot kind than the caller
    /// asked for (e.g. loading a corpus file as an engine snapshot).
    WrongKind {
        /// The kind the file declares.
        found: u32,
        /// The kind the load entry point expected.
        expected: u32,
    },
    /// A section appeared out of schedule for this snapshot kind.
    UnexpectedSection {
        /// The tag actually found.
        found: [u8; 4],
        /// The tag the fixed section schedule expected next.
        expected: [u8; 4],
    },
    /// A section payload does not match its stored CRC32 — bit rot,
    /// torn write, or tampering.
    ChecksumMismatch {
        /// Tag of the damaged section.
        tag: [u8; 4],
        /// The checksum stored in the section header.
        stored: u32,
        /// The checksum computed over the payload bytes present.
        computed: u32,
    },
    /// The input ended (or a declared length pointed) past the bytes
    /// actually present.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
        /// Bytes the decoder needed.
        needed: u64,
        /// Bytes that were available.
        available: u64,
    },
    /// The bytes decoded but violate a structural invariant (impossible
    /// counts, non-finite floats, unsorted posting lists, out-of-range
    /// ids, non-UTF-8 strings, …).
    Malformed {
        /// Which invariant failed.
        context: &'static str,
    },
    /// Well-formed sections were followed by unconsumed bytes.
    TrailingBytes {
        /// How many bytes were left over.
        extra: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(
                    f,
                    "bad snapshot magic {found:02x?} (not a divtopk snapshot)"
                )
            }
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot format version {found} (this build reads {FORMAT_VERSION})"
                )
            }
            SnapshotError::WrongKind { found, expected } => {
                write!(f, "wrong snapshot kind {found} (expected {expected})")
            }
            SnapshotError::UnexpectedSection { found, expected } => {
                write!(
                    f,
                    "unexpected section {:?} (expected {:?})",
                    String::from_utf8_lossy(found),
                    String::from_utf8_lossy(expected)
                )
            }
            SnapshotError::ChecksumMismatch {
                tag,
                stored,
                computed,
            } => {
                write!(
                    f,
                    "checksum mismatch in section {:?}: stored {stored:#010x}, computed {computed:#010x}",
                    String::from_utf8_lossy(tag)
                )
            }
            SnapshotError::Truncated {
                context,
                needed,
                available,
            } => {
                write!(
                    f,
                    "truncated snapshot while reading {context}: needed {needed} bytes, {available} available"
                )
            }
            SnapshotError::Malformed { context } => {
                write!(f, "malformed snapshot: {context}")
            }
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "trailing garbage after the last section: {extra} bytes")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 / zlib polynomial), implemented in-repo — the
// workspace takes no external dependencies.
// ---------------------------------------------------------------------------

/// Slice-by-16 lookup tables: `CRC_TABLES[0]` is the classic byte
/// table; `CRC_TABLES[i]` advances a byte `i` further positions in one
/// lookup, so the hot loop folds 16 input bytes per iteration (snapshot
/// checksums sit on the cold-start path — restart latency is the whole
/// point).
const CRC_TABLES: [[u32; 256]; 16] = {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// Folds one 32-bit word `w` whose bytes sit `pos * 4` bytes before the
/// end of the 16-byte block.
#[inline]
fn crc_fold(w: u32, pos: usize) -> u32 {
    let base = pos * 4;
    CRC_TABLES[base + 3][(w & 0xFF) as usize]
        ^ CRC_TABLES[base + 2][((w >> 8) & 0xFF) as usize]
        ^ CRC_TABLES[base + 1][((w >> 16) & 0xFF) as usize]
        ^ CRC_TABLES[base][(w >> 24) as usize]
}

/// CRC32 (reflected, polynomial `0xEDB88320`, init/final-xor
/// `0xFFFFFFFF`) — bit-compatible with zlib's `crc32`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let word = |b: &[u8]| u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(16);
    for chunk in &mut chunks {
        crc = crc_fold(word(&chunk[0..4]) ^ crc, 3)
            ^ crc_fold(word(&chunk[4..8]), 2)
            ^ crc_fold(word(&chunk[8..12]), 1)
            ^ crc_fold(word(&chunk[12..16]), 0);
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Little-endian payload encoding helpers.
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian cursor over one payload (or the file
/// header). Every read returns [`SnapshotError::Truncated`] instead of
/// slicing out of range.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8], context: &'static str) -> ByteReader<'a> {
        ByteReader {
            bytes,
            pos: 0,
            context,
        }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if n > self.remaining() {
            return Err(SnapshotError::Truncated {
                context: self.context,
                needed: n as u64,
                available: self.remaining() as u64,
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| SnapshotError::Malformed {
            context: "non-UTF-8 string",
        })
    }

    /// Reads a `u64` element count and validates it against the bytes
    /// still present (`elem_min_bytes` ≥ 1 per element), so a forged
    /// count can never drive an oversized allocation.
    fn counted(&mut self, elem_min_bytes: usize) -> Result<usize, SnapshotError> {
        let count = self.u64()?;
        self.check_count(count, elem_min_bytes)
    }

    /// Like [`ByteReader::counted`] with a `u32` count on the wire.
    fn counted_u32(&mut self, elem_min_bytes: usize) -> Result<usize, SnapshotError> {
        let count = self.u32()? as u64;
        self.check_count(count, elem_min_bytes)
    }

    fn check_count(&self, count: u64, elem_min_bytes: usize) -> Result<usize, SnapshotError> {
        let fits = count
            .checked_mul(elem_min_bytes as u64)
            .is_some_and(|total| total <= self.remaining() as u64);
        if !fits {
            return Err(SnapshotError::Malformed {
                context: "element count larger than the section holding it",
            });
        }
        Ok(count as usize)
    }

    /// Asserts the payload was consumed exactly.
    fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes {
                extra: self.remaining() as u64,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Container: sections with tags, lengths, and CRCs.
// ---------------------------------------------------------------------------

/// Assembles a complete snapshot from `(tag, payload)` sections.
fn assemble(kind: u32, sections: Vec<([u8; 4], Vec<u8>)>) -> Vec<u8> {
    let total: usize = sections.iter().map(|(_, p)| p.len() + 16).sum();
    let mut out = Vec::with_capacity(20 + total);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, kind);
    put_u32(&mut out, sections.len() as u32);
    for (tag, payload) in sections {
        out.extend_from_slice(&tag);
        put_u64(&mut out, payload.len() as u64);
        put_u32(&mut out, crc32(&payload));
        out.extend_from_slice(&payload);
    }
    out
}

/// Sequential section reader: parses the header, then hands out
/// CRC-verified payloads in the fixed per-kind schedule.
struct Container<'a> {
    reader: ByteReader<'a>,
    sections_left: u32,
    /// When true, per-section CRCs are not re-verified: the caller has
    /// already checked the *whole file* against the manifest's length +
    /// CRC, which covers every section (payloads and stored CRC fields
    /// alike), so a second pass over the same bytes proves nothing.
    /// Single-file entry points (`load_corpus`, `load_index`) have no
    /// outer checksum and always verify per section.
    trusted: bool,
}

impl<'a> Container<'a> {
    /// Opens a container whose bytes were already authenticated by an
    /// enclosing whole-file checksum (see [`read_checked_file`]).
    fn open_trusted(bytes: &'a [u8], expected_kind: u32) -> Result<Container<'a>, SnapshotError> {
        let mut c = Container::open(bytes, expected_kind)?;
        c.trusted = true;
        Ok(c)
    }

    fn open(bytes: &'a [u8], expected_kind: u32) -> Result<Container<'a>, SnapshotError> {
        let mut reader = ByteReader::new(bytes, "snapshot header");
        let magic = reader.take(8)?;
        if magic != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(magic);
            return Err(SnapshotError::BadMagic { found });
        }
        let version = reader.u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let kind = reader.u32()?;
        if kind != expected_kind {
            return Err(SnapshotError::WrongKind {
                found: kind,
                expected: expected_kind,
            });
        }
        let sections_left = reader.u32()?;
        Ok(Container {
            reader,
            sections_left,
            trusted: false,
        })
    }

    /// Reads the next section, which must carry `tag`; verifies its CRC
    /// and returns a cursor over the payload.
    fn section(
        &mut self,
        tag: [u8; 4],
        context: &'static str,
    ) -> Result<ByteReader<'a>, SnapshotError> {
        if self.sections_left == 0 {
            return Err(SnapshotError::Truncated {
                context,
                needed: 1,
                available: 0,
            });
        }
        self.sections_left -= 1;
        let found_tag = self.reader.take(4)?;
        if found_tag != tag {
            let mut found = [0u8; 4];
            found.copy_from_slice(found_tag);
            return Err(SnapshotError::UnexpectedSection {
                found,
                expected: tag,
            });
        }
        let len = self.reader.u64()?;
        let stored = self.reader.u32()?;
        if len > self.reader.remaining() as u64 {
            // An oversized declared length must fail *here*, before any
            // slice or allocation happens.
            return Err(SnapshotError::Truncated {
                context,
                needed: len,
                available: self.reader.remaining() as u64,
            });
        }
        let payload = self.reader.take(len as usize)?;
        if !self.trusted {
            let computed = crc32(payload);
            if stored != computed {
                return Err(SnapshotError::ChecksumMismatch {
                    tag,
                    stored,
                    computed,
                });
            }
        }
        Ok(ByteReader::new(payload, context))
    }

    /// Asserts every declared section was consumed and nothing trails.
    fn finish(self) -> Result<(), SnapshotError> {
        if self.sections_left != 0 {
            return Err(SnapshotError::Malformed {
                context: "section count larger than the sections present",
            });
        }
        self.reader.finish()
    }
}

// ---------------------------------------------------------------------------
// Vocabulary
// ---------------------------------------------------------------------------

fn vocab_payload(v: &Vocabulary) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, v.len() as u64);
    for id in 0..v.len() as TermId {
        put_str(&mut buf, v.term(id));
    }
    buf
}

fn read_vocab(mut r: ByteReader<'_>) -> Result<Vocabulary, SnapshotError> {
    let n = r.counted(4)?;
    let mut terms = Vec::with_capacity(n);
    for _ in 0..n {
        terms.push(r.str()?.to_owned());
    }
    let vocab = Vocabulary::from_terms(terms).ok_or(SnapshotError::Malformed {
        // A duplicate term would silently renumber every id after it.
        context: "duplicate term in vocabulary",
    })?;
    r.finish()?;
    Ok(vocab)
}

// ---------------------------------------------------------------------------
// Corpus (vocabulary + frozen statistics + documents)
// ---------------------------------------------------------------------------

fn stats_payload(c: &Corpus) -> Vec<u8> {
    let mut buf = Vec::new();
    let n = c.num_terms();
    put_u64(&mut buf, n as u64);
    for t in 0..n as TermId {
        put_u32(&mut buf, c.doc_freq(t));
    }
    for &idf in c.idf_table() {
        put_f64(&mut buf, idf);
    }
    buf
}

fn read_stats(
    mut r: ByteReader<'_>,
    num_terms: usize,
) -> Result<(Vec<u32>, Vec<f64>), SnapshotError> {
    let n = r.counted(12)?;
    if n != num_terms {
        return Err(SnapshotError::Malformed {
            context: "statistics table size disagrees with the vocabulary",
        });
    }
    // One bounds check per table, then chunked decodes (`counted`
    // proved the bytes are present).
    let mut doc_freq = Vec::with_capacity(n);
    let raw_df = r.take(n * 4)?;
    for b in raw_df.chunks_exact(4) {
        doc_freq.push(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
    }
    let mut idf = Vec::with_capacity(n);
    let raw_idf = r.take(n * 8)?;
    for b in raw_idf.chunks_exact(8) {
        let v = f64::from_bits(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]));
        if !v.is_finite() || !(0.0..=MAX_STORED_VALUE).contains(&v) {
            // Scores built on a negative IDF panic `Score::new` at query
            // time, and an implausibly huge one overflows the query-time
            // sum to +inf (same panic) — reject both at the door, like
            // every other CRC-valid-but-inconsistent payload.
            return Err(SnapshotError::Malformed {
                context: "IDF weight outside the plausible range",
            });
        }
        idf.push(v);
    }
    r.finish()?;
    Ok((doc_freq, idf))
}

fn docs_payload<'a>(docs: impl Iterator<Item = &'a Document>, count: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, count as u64);
    for doc in docs {
        put_str(&mut buf, &doc.title);
        put_u32(&mut buf, doc.len);
        put_u32(&mut buf, doc.terms.len() as u32);
        for &(t, tf) in &doc.terms {
            put_u32(&mut buf, t);
            put_u32(&mut buf, tf);
        }
    }
    buf
}

/// Decodes one documents payload. `expected` tightens validation when
/// the surrounding structure (a chunk file's own header) already
/// declares how many documents must be present.
fn read_docs(
    mut r: ByteReader<'_>,
    num_terms: usize,
    expected: Option<usize>,
) -> Result<Vec<Document>, SnapshotError> {
    let n = r.counted(12)?;
    if expected.is_some_and(|want| want != n) {
        return Err(SnapshotError::Malformed {
            context: "document count disagrees with the declared chunk length",
        });
    }
    let mut docs = Vec::with_capacity(n);
    for _ in 0..n {
        let title = r.str()?.to_owned();
        let len = r.u32()?;
        let n_terms = r.counted_u32(8)?;
        let mut terms: Vec<(TermId, u32)> = Vec::with_capacity(n_terms);
        // One bounds check for the doc's whole signature, then a chunked
        // decode (`counted_u32` proved the bytes are present).
        let pairs = r.take(n_terms * 8)?;
        for pair in pairs.chunks_exact(8) {
            let t = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]);
            let tf = u32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]);
            if (t as usize) >= num_terms {
                return Err(SnapshotError::Malformed {
                    context: "document references a term outside the vocabulary",
                });
            }
            if tf == 0 {
                return Err(SnapshotError::Malformed {
                    context: "zero term frequency in a document signature",
                });
            }
            if terms.last().is_some_and(|&(prev, _)| prev >= t) {
                // `Document::tf` binary-searches; an unsorted signature
                // would silently mis-score instead of failing loudly.
                return Err(SnapshotError::Malformed {
                    context: "document term signature not strictly sorted",
                });
            }
            terms.push((t, tf));
        }
        docs.push(Document { title, terms, len });
    }
    r.finish()?;
    Ok(docs)
}

fn corpus_sections(c: &Corpus, out: &mut Vec<([u8; 4], Vec<u8>)>) {
    out.push((TAG_VOCAB, vocab_payload(c.vocab())));
    out.push((TAG_STATS, stats_payload(c)));
    out.push((TAG_DOCS, docs_payload(c.docs(), c.num_docs())));
}

fn read_corpus_sections(container: &mut Container<'_>) -> Result<Corpus, SnapshotError> {
    let vocab = read_vocab(container.section(TAG_VOCAB, "vocabulary section")?)?;
    let (doc_freq, idf) = read_stats(
        container.section(TAG_STATS, "statistics section")?,
        vocab.len(),
    )?;
    let docs = read_docs(
        container.section(TAG_DOCS, "documents section")?,
        vocab.len(),
        None,
    )?;
    Ok(Corpus::from_parts(
        vocab,
        docs.into_iter().collect(),
        doc_freq,
        idf,
    ))
}

/// Serializes a [`Corpus`] (vocabulary, frozen statistics, documents) to
/// snapshot bytes.
pub fn corpus_to_bytes(c: &Corpus) -> Vec<u8> {
    let mut sections = Vec::new();
    corpus_sections(c, &mut sections);
    assemble(KIND_CORPUS, sections)
}

/// Decodes a [`Corpus`] snapshot produced by [`corpus_to_bytes`]. The
/// result is bit-identical to the corpus that was saved: document
/// signatures, document frequencies, and every IDF weight's exact bits.
pub fn corpus_from_bytes(bytes: &[u8]) -> Result<Corpus, SnapshotError> {
    let mut container = Container::open(bytes, KIND_CORPUS)?;
    let corpus = read_corpus_sections(&mut container)?;
    container.finish()?;
    Ok(corpus)
}

/// Save-path audit counters: process-wide monotone counts of the fsyncs
/// the atomic-write path has issued, split by target (data file vs
/// parent directory).
///
/// These exist so a test can assert the *crash-safety protocol itself* —
/// specifically that every atomic write fsyncs the parent
/// directory after the rename (without the directory sync, a crash can
/// lose the rename even though the temp file's data was durable) —
/// without strace or a filesystem fault injector. They are diagnostics,
/// not serving state.
pub mod audit {
    use std::sync::atomic::{AtomicU64, Ordering};

    static FILE_SYNCS: AtomicU64 = AtomicU64::new(0);
    static DIR_SYNCS: AtomicU64 = AtomicU64::new(0);

    // RELAXED: pure monotone diagnostic counters — no other memory is
    // published through them, and tests only compare before/after deltas
    // on the same thread, so no ordering beyond the RMW's own atomicity
    // is needed.
    pub(super) fn count_file_sync() {
        FILE_SYNCS.fetch_add(1, Ordering::Relaxed);
    }

    // RELAXED: same monotone-diagnostic-counter argument as above.
    pub(super) fn count_dir_sync() {
        DIR_SYNCS.fetch_add(1, Ordering::Relaxed);
    }

    /// Data-file fsyncs issued by the save path so far (process-wide).
    pub fn file_syncs() -> u64 {
        // RELAXED: monotone counter read for diagnostics/tests only.
        FILE_SYNCS.load(Ordering::Relaxed)
    }

    /// Parent-directory fsyncs issued by the save path so far
    /// (process-wide).
    pub fn dir_syncs() -> u64 {
        // RELAXED: monotone counter read for diagnostics/tests only.
        DIR_SYNCS.load(Ordering::Relaxed)
    }
}

/// Writes `bytes` to `path` atomically: a sibling temp file is written
/// and fsynced first, then renamed over the target, then the **parent
/// directory is fsynced** — so a crash mid-save can truncate only the
/// temp file, never the previous good snapshot, and a crash right after
/// the save cannot roll the rename itself back (the rename lives in the
/// directory's entries, which have their own durability; syncing only
/// the file would leave the old name durable and the new one not).
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    use std::io::Write;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        audit::count_file_sync();
        std::fs::rename(&tmp, path)?;
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
        audit::count_dir_sync();
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(SnapshotError::Io)
}

/// Writes a [`Corpus`] snapshot to `path` (atomically — sibling temp
/// file + fsync + rename). Returns the bytes written.
pub fn save_corpus(path: impl AsRef<Path>, c: &Corpus) -> Result<u64, SnapshotError> {
    let bytes = corpus_to_bytes(c);
    write_atomic(path.as_ref(), &bytes)?;
    Ok(bytes.len() as u64)
}

/// Loads a [`Corpus`] snapshot from `path`.
pub fn load_corpus(path: impl AsRef<Path>) -> Result<Corpus, SnapshotError> {
    corpus_from_bytes(&std::fs::read(path)?)
}

// ---------------------------------------------------------------------------
// InvertedIndex
// ---------------------------------------------------------------------------

fn index_payload(index: &InvertedIndex) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, index.num_terms() as u64);
    for t in 0..index.num_terms() as TermId {
        let list = index.postings(t);
        put_u64(&mut buf, list.len() as u64);
        for p in list {
            put_u32(&mut buf, p.doc);
            put_u32(&mut buf, p.tf);
            put_f64(&mut buf, p.partial);
        }
    }
    buf
}

/// Decodes one inverted-index payload. `expected_terms` / `num_docs`
/// tighten validation when the surrounding snapshot knows the corpus
/// shape (a standalone index snapshot does not).
fn read_index_payload(
    mut r: ByteReader<'_>,
    expected_terms: Option<usize>,
    num_docs: Option<usize>,
) -> Result<InvertedIndex, SnapshotError> {
    let n_terms = r.counted(8)?;
    if expected_terms.is_some_and(|want| want != n_terms) {
        return Err(SnapshotError::Malformed {
            context: "segment term count disagrees with the corpus vocabulary",
        });
    }
    let mut lists: Vec<Vec<Posting>> = Vec::with_capacity(n_terms);
    for _ in 0..n_terms {
        let n = r.counted(16)?;
        let mut list: Vec<Posting> = Vec::with_capacity(n);
        // One bounds check per list, then a chunked decode (`counted`
        // proved the bytes are present).
        let raw = r.take(n * 16)?;
        for entry in raw.chunks_exact(16) {
            let doc = u32::from_le_bytes([entry[0], entry[1], entry[2], entry[3]]);
            let tf = u32::from_le_bytes([entry[4], entry[5], entry[6], entry[7]]);
            let partial = f64::from_bits(u64::from_le_bytes([
                entry[8], entry[9], entry[10], entry[11], entry[12], entry[13], entry[14],
                entry[15],
            ]));
            if !partial.is_finite() || !(0.0..=MAX_STORED_VALUE).contains(&partial) {
                // `posting_order` (and every downstream sort) requires
                // total-ordering partials, and `ScanSource` feeds the
                // value straight into `Score::new`, which panics on
                // negatives (and on the +inf an implausibly huge value
                // produces when summed) — a forged value here must be a
                // typed error, not a query-time panic.
                return Err(SnapshotError::Malformed {
                    context: "posting partial score outside the plausible range",
                });
            }
            if num_docs.is_some_and(|n| doc as usize >= n) {
                return Err(SnapshotError::Malformed {
                    context: "posting references a document outside the corpus",
                });
            }
            let posting = Posting { doc, tf, partial };
            if list
                .last()
                .is_some_and(|prev| InvertedIndex::posting_order(prev, &posting).is_gt())
            {
                return Err(SnapshotError::Malformed {
                    context: "posting list not in (partial desc, doc asc) order",
                });
            }
            list.push(posting);
        }
        lists.push(list);
    }
    r.finish()?;
    Ok(InvertedIndex::from_sorted_lists(lists))
}

/// Segment-file posting payload (DESIGN.md §14): per term, the list
/// length then `(doc, tf)` pairs in the stored serving order. Unlike
/// the standalone [`index_payload`], the per-posting `partial` is *not*
/// stored: it is a deterministic IEEE-754 function of data the snapshot
/// already carries (`tf as f64 * idf(t) * (1 / sqrt(len))`, the exact
/// expression `InvertedIndex::build_from_ids` evaluates), so the load
/// recomputes the identical bits — halving segment bytes, which
/// dominate cold-start I/O. A standalone index snapshot has no corpus
/// to recompute from, so `KIND_INDEX` keeps the fat encoding.
fn segment_index_payload(index: &InvertedIndex) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, index.num_terms() as u64);
    for t in 0..index.num_terms() as TermId {
        let list = index.postings(t);
        put_u64(&mut buf, list.len() as u64);
        for p in list {
            put_u32(&mut buf, p.doc);
            put_u32(&mut buf, p.tf);
        }
    }
    buf
}

/// Decodes one segment posting payload, recomputing each partial score
/// bit-exactly from the epoch IDF table and the per-document
/// `1/sqrt(len)` factors (`inv_len`, indexed by doc id, 0.0 for
/// zero-length docs — which never have postings, so the value is never
/// used). Validation mirrors [`read_index_payload`]: doc ids in range,
/// non-zero term frequencies, and the one true `(partial desc, doc
/// asc)` order — forged CRC-valid bytes still fail typed.
fn read_segment_index(
    mut r: ByteReader<'_>,
    idf: &[f64],
    inv_len: &[f64],
) -> Result<InvertedIndex, SnapshotError> {
    let n_terms = r.counted(8)?;
    if n_terms != idf.len() {
        return Err(SnapshotError::Malformed {
            context: "segment term count disagrees with the corpus vocabulary",
        });
    }
    let num_docs = inv_len.len();
    let mut lists: Vec<Vec<Posting>> = Vec::with_capacity(n_terms);
    for &term_idf in idf {
        let n = r.counted(8)?;
        let mut list: Vec<Posting> = Vec::with_capacity(n);
        let raw = r.take(n * 8)?;
        for entry in raw.chunks_exact(8) {
            let doc = u32::from_le_bytes([entry[0], entry[1], entry[2], entry[3]]);
            let tf = u32::from_le_bytes([entry[4], entry[5], entry[6], entry[7]]);
            if doc as usize >= num_docs {
                return Err(SnapshotError::Malformed {
                    context: "posting references a document outside the corpus",
                });
            }
            if tf == 0 {
                // The build never emits tf = 0 (a document signature
                // with a zero count is itself rejected), and a zero here
                // would fingerprint differently from every honest build.
                return Err(SnapshotError::Malformed {
                    context: "zero term frequency in a posting",
                });
            }
            // The §7 build expression, association order and all — the
            // recomputed bits equal the bits the saver held. Both
            // factors were range-checked on load (IDF by `read_stats`,
            // doc lengths by `read_docs`), so the product is finite.
            let partial = tf as f64 * term_idf * inv_len[doc as usize];
            if !(0.0..=MAX_STORED_VALUE).contains(&partial) {
                // Same plausibility cap the fat encoding enforces on
                // stored partials: an absurd tf × a near-cap IDF can
                // still multiply out to a query-time +inf.
                return Err(SnapshotError::Malformed {
                    context: "posting partial score outside the plausible range",
                });
            }
            let posting = Posting { doc, tf, partial };
            if list
                .last()
                .is_some_and(|prev| InvertedIndex::posting_order(prev, &posting).is_gt())
            {
                return Err(SnapshotError::Malformed {
                    context: "posting list not in (partial desc, doc asc) order",
                });
            }
            list.push(posting);
        }
        lists.push(list);
    }
    r.finish()?;
    Ok(InvertedIndex::from_sorted_lists(lists))
}

/// Serializes an [`InvertedIndex`] to snapshot bytes. Stored partial
/// scores travel as [`f64::to_bits`] words — the load is bit-exact.
pub fn index_to_bytes(index: &InvertedIndex) -> Vec<u8> {
    assemble(KIND_INDEX, vec![(TAG_INDEX, index_payload(index))])
}

/// Decodes an [`InvertedIndex`] snapshot produced by [`index_to_bytes`].
pub fn index_from_bytes(bytes: &[u8]) -> Result<InvertedIndex, SnapshotError> {
    let mut container = Container::open(bytes, KIND_INDEX)?;
    let index = read_index_payload(
        container.section(TAG_INDEX, "inverted index section")?,
        None,
        None,
    )?;
    container.finish()?;
    Ok(index)
}

/// Writes an [`InvertedIndex`] snapshot to `path`. Returns the bytes
/// written.
pub fn save_index(path: impl AsRef<Path>, index: &InvertedIndex) -> Result<u64, SnapshotError> {
    let bytes = index_to_bytes(index);
    write_atomic(path.as_ref(), &bytes)?;
    Ok(bytes.len() as u64)
}

/// Loads an [`InvertedIndex`] snapshot from `path`.
pub fn load_index(path: impl AsRef<Path>) -> Result<InvertedIndex, SnapshotError> {
    index_from_bytes(&std::fs::read(path)?)
}

// ---------------------------------------------------------------------------
// SegmentedIndex (the full serving state)
// ---------------------------------------------------------------------------

fn weights_payload(weights: &[f64]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, weights.len() as u64);
    for &w in weights {
        put_f64(&mut buf, w);
    }
    buf
}

fn read_weights(mut r: ByteReader<'_>, num_docs: usize) -> Result<Vec<f64>, SnapshotError> {
    let n = r.counted(8)?;
    if n != num_docs {
        return Err(SnapshotError::Malformed {
            context: "weight table size disagrees with the document count",
        });
    }
    let mut weights = Vec::with_capacity(n);
    let raw = r.take(n * 8)?;
    for b in raw.chunks_exact(8) {
        let w = f64::from_bits(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]));
        if !w.is_finite() || !(0.0..=MAX_STORED_VALUE).contains(&w) {
            // `W(d)` is a sum of non-negative IDF terms; a negative or
            // implausibly huge value is forged and would skew (or
            // overflow) the similarity prefilter.
            return Err(SnapshotError::Malformed {
                context: "document weight outside the plausible range",
            });
        }
        weights.push(w);
    }
    r.finish()?;
    Ok(weights)
}

// ---------------------------------------------------------------------------
// The snapshot directory: MANIFEST + epoch + segment files + chunk files.
// ---------------------------------------------------------------------------

/// One segment file's manifest entry.
#[derive(Debug, Clone, Copy)]
struct SegmentEntry {
    id: u64,
    fingerprint: u64,
    doc_count: u64,
    file_len: u64,
    file_crc: u32,
}

/// One document-store chunk file's manifest entry.
#[derive(Debug, Clone, Copy)]
struct ChunkEntry {
    len: u64,
    fingerprint: u64,
    file_len: u64,
    file_crc: u32,
}

/// The decoded `MANIFEST`: everything needed to name, order, and verify
/// the other files of the snapshot directory, plus the small mutable
/// state (generation, counters, tombstones) that changes every
/// checkpoint.
#[derive(Debug, Clone)]
struct Manifest {
    generation: u64,
    compactions: u64,
    next_segment_id: u64,
    num_docs: u64,
    num_terms: u64,
    epoch_len: u64,
    epoch_crc: u32,
    segments: Vec<SegmentEntry>,
    chunks: Vec<ChunkEntry>,
    /// Tombstoned doc ids, strictly increasing — sparse on purpose:
    /// O(#deleted) manifest bytes, part of keeping checkpoints O(delta).
    deleted: Vec<DocId>,
}

fn manifest_to_bytes(m: &Manifest) -> Vec<u8> {
    let mut meta = Vec::new();
    put_u64(&mut meta, m.generation);
    put_u64(&mut meta, m.compactions);
    put_u64(&mut meta, m.next_segment_id);
    put_u64(&mut meta, m.num_docs);
    put_u64(&mut meta, m.num_terms);
    put_u64(&mut meta, CHUNK as u64);
    put_u64(&mut meta, m.epoch_len);
    put_u32(&mut meta, m.epoch_crc);
    let mut segs = Vec::new();
    put_u64(&mut segs, m.segments.len() as u64);
    for e in &m.segments {
        put_u64(&mut segs, e.id);
        put_u64(&mut segs, e.fingerprint);
        put_u64(&mut segs, e.doc_count);
        put_u64(&mut segs, e.file_len);
        put_u32(&mut segs, e.file_crc);
    }
    let mut chunks = Vec::new();
    put_u64(&mut chunks, m.chunks.len() as u64);
    for e in &m.chunks {
        put_u64(&mut chunks, e.len);
        put_u64(&mut chunks, e.fingerprint);
        put_u64(&mut chunks, e.file_len);
        put_u32(&mut chunks, e.file_crc);
    }
    let mut tomb = Vec::new();
    put_u64(&mut tomb, m.deleted.len() as u64);
    for &d in &m.deleted {
        put_u32(&mut tomb, d);
    }
    assemble(
        KIND_MANIFEST,
        vec![
            (TAG_META, meta),
            (TAG_SEGS, segs),
            (TAG_CHUNKS, chunks),
            (TAG_TOMB, tomb),
        ],
    )
}

fn manifest_from_bytes(bytes: &[u8]) -> Result<Manifest, SnapshotError> {
    let mut container = Container::open(bytes, KIND_MANIFEST)?;
    let mut meta = container.section(TAG_META, "manifest meta section")?;
    let generation = meta.u64()?;
    let compactions = meta.u64()?;
    let next_segment_id = meta.u64()?;
    let num_docs = meta.u64()?;
    let num_terms = meta.u64()?;
    let chunk_size = meta.u64()?;
    let epoch_len = meta.u64()?;
    let epoch_crc = meta.u32()?;
    meta.finish()?;
    if chunk_size != CHUNK as u64 {
        return Err(SnapshotError::Malformed {
            context: "manifest declares an unsupported chunk size",
        });
    }
    let mut segs = container.section(TAG_SEGS, "manifest segment table")?;
    let n = segs.counted(36)?;
    let mut segments = Vec::with_capacity(n);
    for _ in 0..n {
        segments.push(SegmentEntry {
            id: segs.u64()?,
            fingerprint: segs.u64()?,
            doc_count: segs.u64()?,
            file_len: segs.u64()?,
            file_crc: segs.u32()?,
        });
    }
    segs.finish()?;
    let mut chnk = container.section(TAG_CHUNKS, "manifest chunk table")?;
    let n = chnk.counted(28)?;
    let mut chunks = Vec::with_capacity(n);
    for _ in 0..n {
        chunks.push(ChunkEntry {
            len: chnk.u64()?,
            fingerprint: chnk.u64()?,
            file_len: chnk.u64()?,
            file_crc: chnk.u32()?,
        });
    }
    chnk.finish()?;
    let mut tomb = container.section(TAG_TOMB, "manifest tombstone list")?;
    let n = tomb.counted(4)?;
    let mut deleted: Vec<DocId> = Vec::with_capacity(n);
    for _ in 0..n {
        let d = tomb.u32()?;
        if d as u64 >= num_docs {
            // A mark past the last allocated id would make the
            // live-document accounting (`num_docs - deleted`) underflow.
            return Err(SnapshotError::Malformed {
                context: "tombstone for an unallocated document id",
            });
        }
        if deleted.last().is_some_and(|&prev| prev >= d) {
            return Err(SnapshotError::Malformed {
                context: "tombstone list not strictly sorted",
            });
        }
        deleted.push(d);
    }
    tomb.finish()?;
    container.finish()?;
    if segments.is_empty() {
        return Err(SnapshotError::Malformed {
            context: "snapshot declares zero segments",
        });
    }
    let mut ids: Vec<u64> = segments.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    if ids.windows(2).any(|w| w[0] == w[1]) {
        return Err(SnapshotError::Malformed {
            context: "duplicate segment id in the manifest",
        });
    }
    if segments.iter().any(|e| e.id >= next_segment_id) {
        return Err(SnapshotError::Malformed {
            context: "segment id at or above the manifest's next segment id",
        });
    }
    let mut claimed_total: u64 = 0;
    for e in &segments {
        claimed_total = claimed_total
            .checked_add(e.doc_count)
            .filter(|&total| total <= num_docs)
            .ok_or(SnapshotError::Malformed {
                // Segments cover disjoint doc sets, so their counts can
                // never sum past the corpus.
                context: "segments claim more documents than the corpus holds",
            })?;
    }
    let mut chunk_total: u64 = 0;
    for (i, e) in chunks.iter().enumerate() {
        let sealed_required = i + 1 < chunks.len();
        if e.len == 0 || e.len > CHUNK as u64 || (sealed_required && e.len != CHUNK as u64) {
            return Err(SnapshotError::Malformed {
                context: "chunk lengths violate the sealed-chunk invariant",
            });
        }
        chunk_total += e.len;
    }
    if chunk_total != num_docs {
        return Err(SnapshotError::Malformed {
            context: "chunk lengths do not sum to the document count",
        });
    }
    Ok(Manifest {
        generation,
        compactions,
        next_segment_id,
        num_docs,
        num_terms,
        epoch_len,
        epoch_crc,
        segments,
        chunks,
        deleted,
    })
}

fn epoch_to_bytes(c: &Corpus) -> Vec<u8> {
    assemble(
        KIND_EPOCH,
        vec![
            (TAG_VOCAB, vocab_payload(c.vocab())),
            (TAG_STATS, stats_payload(c)),
        ],
    )
}

fn segment_to_bytes(segment: &Segment) -> Vec<u8> {
    let mut meta = Vec::new();
    put_u64(&mut meta, segment.id());
    put_u64(&mut meta, segment.fingerprint());
    put_u64(&mut meta, segment.doc_count() as u64);
    assemble(
        KIND_SEGMENT,
        vec![
            (TAG_META, meta),
            (TAG_INDEX, segment_index_payload(segment.index())),
        ],
    )
}

fn chunk_to_bytes(index: usize, docs: &[Document], weights: &[f64], fingerprint: u64) -> Vec<u8> {
    let mut meta = Vec::new();
    put_u64(&mut meta, index as u64);
    put_u64(&mut meta, docs.len() as u64);
    put_u64(&mut meta, fingerprint);
    assemble(
        KIND_CHUNK,
        vec![
            (TAG_META, meta),
            (TAG_DOCS, docs_payload(docs.iter(), docs.len())),
            (TAG_WEIGHTS, weights_payload(weights)),
        ],
    )
}

/// Combined content fingerprint of document-store chunk `i` and its
/// weight chunk — the identity incremental saves use to reuse the
/// on-disk chunk file. Memoized per chunk via [`ChunkedVec`], so across
/// a checkpoint sequence each sealed chunk is hashed once.
fn chunk_fp(docs: &ChunkedVec<Document>, weights: &ChunkedVec<f64>, i: usize) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(docs.chunk_fingerprint(i));
    h.write_u64(weights.chunk_fingerprint(i));
    h.finish()
}

/// Size of `dir/name` if it exists as a regular file.
fn file_len(dir: &Path, name: &str) -> Option<u64> {
    std::fs::metadata(dir.join(name))
        .ok()
        .filter(|m| m.is_file())
        .map(|m| m.len())
}

/// Reads `dir/name` and verifies it against the length and whole-file
/// CRC the manifest recorded — the cross-file integrity layer that
/// catches a stale or swapped file *before* its sections are parsed.
fn read_checked_file(dir: &Path, name: &str, len: u64, crc: u32) -> Result<Vec<u8>, SnapshotError> {
    let bytes = std::fs::read(dir.join(name))?;
    if (bytes.len() as u64) < len {
        return Err(SnapshotError::Truncated {
            context: "snapshot file shorter than the manifest recorded",
            needed: len,
            available: bytes.len() as u64,
        });
    }
    if bytes.len() as u64 > len {
        return Err(SnapshotError::TrailingBytes {
            extra: bytes.len() as u64 - len,
        });
    }
    let computed = crc32(&bytes);
    if computed != crc {
        return Err(SnapshotError::ChecksumMismatch {
            tag: TAG_FILE,
            stored: crc,
            computed,
        });
    }
    Ok(bytes)
}

/// Removes files our naming scheme owns that the just-written manifest
/// no longer references (segments dropped by compaction, chunks from a
/// diverged lineage, leftover temp files). Best-effort: a file that
/// cannot be removed is simply left behind — it is unreferenced, so
/// correctness never depends on its absence.
fn gc_unreferenced(dir: &Path, keep: &std::collections::HashSet<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        if name == MANIFEST_NAME || keep.contains(name) {
            continue;
        }
        let ours = name == EPOCH_NAME
            || (name.starts_with("seg-") && name.ends_with(".bin"))
            || (name.starts_with("docs-") && name.ends_with(".bin"))
            || name.contains(".tmp.");
        if ours {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// What one [`save_segmented`] checkpoint actually did — the evidence
/// that incremental saves are O(delta): on an unchanged-prefix corpus,
/// `files_written` is the new segments + the partial tail chunk + the
/// manifest, regardless of how large the reused remainder is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveReport {
    /// Files written this checkpoint (including the manifest).
    pub files_written: usize,
    /// Files whose bytes were reused from the previous checkpoint.
    pub files_reused: usize,
    /// Bytes physically written this checkpoint.
    pub bytes_written: u64,
    /// Total bytes of the complete snapshot (written + reused files).
    pub total_bytes: u64,
}

/// Writes a [`SegmentedIndex`] snapshot directory (plus the caller's
/// generation) to `dir`, creating it if needed — **incrementally**: a
/// file whose identity (segment id + content fingerprint, or chunk
/// index + length + content fingerprint, or the epoch's exact bytes)
/// already appears in the directory's previous manifest is reused
/// without rewriting, so a checkpoint writes O(what changed) bytes, not
/// O(corpus). The manifest is written last (atomically, with parent-
/// directory fsync), then unreferenced files are garbage-collected.
///
/// A snapshot directory belongs to **one engine lineage**: saving
/// states from diverged lineages into the same directory is detected
/// via the content fingerprints (stale files are rewritten, never
/// silently reused), but interleaving lineages forfeits the incremental
/// savings. Returns a [`SaveReport`] describing the work done.
pub fn save_segmented(
    dir: impl AsRef<Path>,
    index: &SegmentedIndex,
    generation: u64,
) -> Result<SaveReport, SnapshotError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    // A damaged or missing prior manifest simply disables reuse — the
    // save falls back to writing everything, never to failing.
    let prior = match std::fs::read(dir.join(MANIFEST_NAME)) {
        Ok(bytes) => manifest_from_bytes(&bytes).ok(),
        Err(_) => None,
    };
    let corpus = index.corpus();
    let mut report = SaveReport {
        files_written: 0,
        files_reused: 0,
        bytes_written: 0,
        total_bytes: 0,
    };
    fn write_counted(
        dir: &Path,
        name: &str,
        bytes: &[u8],
        report: &mut SaveReport,
    ) -> Result<(), SnapshotError> {
        write_atomic(&dir.join(name), bytes)?;
        report.files_written += 1;
        report.bytes_written += bytes.len() as u64;
        report.total_bytes += bytes.len() as u64;
        Ok(())
    }

    // The epoch (vocabulary + frozen statistics) never changes within a
    // lineage; its bytes are re-derived (O(vocabulary) CPU) but only
    // written when the directory does not already hold them.
    let epoch_bytes = epoch_to_bytes(corpus);
    let epoch_len = epoch_bytes.len() as u64;
    let epoch_crc = crc32(&epoch_bytes);
    let epoch_reused = prior
        .as_ref()
        .is_some_and(|p| p.epoch_len == epoch_len && p.epoch_crc == epoch_crc)
        && file_len(dir, EPOCH_NAME) == Some(epoch_len);
    if epoch_reused {
        report.files_reused += 1;
        report.total_bytes += epoch_len;
    } else {
        write_counted(dir, EPOCH_NAME, &epoch_bytes, &mut report)?;
    }

    // Document-store chunks: sealed chunks are immutable, so any chunk
    // whose (index, length, fingerprint) matches the prior manifest is
    // reused byte-for-byte; only the partial tail chunk (and genuinely
    // new chunks) are written.
    let docs = corpus.doc_store();
    let weights = index.weights();
    let mut chunk_entries: Vec<ChunkEntry> = Vec::with_capacity(docs.num_chunks());
    for i in 0..docs.num_chunks() {
        let len = docs.chunk_items(i).len() as u64;
        let fingerprint = chunk_fp(docs, weights, i);
        let reusable = prior
            .as_ref()
            .and_then(|p| p.chunks.get(i))
            .filter(|e| e.len == len && e.fingerprint == fingerprint)
            .filter(|e| file_len(dir, &chunk_file_name(i)) == Some(e.file_len))
            .copied();
        match reusable {
            Some(entry) => {
                chunk_entries.push(entry);
                report.files_reused += 1;
                report.total_bytes += entry.file_len;
            }
            None => {
                let bytes =
                    chunk_to_bytes(i, docs.chunk_items(i), weights.chunk_items(i), fingerprint);
                write_counted(dir, &chunk_file_name(i), &bytes, &mut report)?;
                chunk_entries.push(ChunkEntry {
                    len,
                    fingerprint,
                    file_len: bytes.len() as u64,
                    file_crc: crc32(&bytes),
                });
            }
        }
    }

    // Segments are immutable and id-keyed; a segment the prior manifest
    // already recorded (same id, same content fingerprint) keeps its
    // file untouched. This is the O(delta) heart of the checkpoint: the
    // big old segments are never re-serialized, let alone rewritten.
    let mut segment_entries: Vec<SegmentEntry> = Vec::with_capacity(index.num_segments());
    for segment in index.segments() {
        let name = segment_file_name(segment.id());
        let reusable = prior
            .as_ref()
            .and_then(|p| p.segments.iter().find(|e| e.id == segment.id()))
            .filter(|e| {
                e.fingerprint == segment.fingerprint() && e.doc_count == segment.doc_count() as u64
            })
            .filter(|e| file_len(dir, &name) == Some(e.file_len))
            .copied();
        match reusable {
            Some(entry) => {
                segment_entries.push(entry);
                report.files_reused += 1;
                report.total_bytes += entry.file_len;
            }
            None => {
                let bytes = segment_to_bytes(segment);
                write_counted(dir, &name, &bytes, &mut report)?;
                segment_entries.push(SegmentEntry {
                    id: segment.id(),
                    fingerprint: segment.fingerprint(),
                    doc_count: segment.doc_count() as u64,
                    file_len: bytes.len() as u64,
                    file_crc: crc32(&bytes),
                });
            }
        }
    }

    let manifest = Manifest {
        generation,
        compactions: index.compactions(),
        next_segment_id: index.next_segment_id(),
        num_docs: corpus.num_docs() as u64,
        num_terms: corpus.num_terms() as u64,
        epoch_len,
        epoch_crc,
        segments: segment_entries,
        chunks: chunk_entries,
        deleted: index.tombstone_set().iter_ids().collect(),
    };
    let manifest_bytes = manifest_to_bytes(&manifest);
    // Written last: every file it references is already durable, so a
    // crash on either side of this write leaves a loadable directory
    // (the old state before, the new state after).
    write_counted(dir, MANIFEST_NAME, &manifest_bytes, &mut report)?;

    let mut keep: std::collections::HashSet<String> = std::collections::HashSet::with_capacity(
        2 + manifest.segments.len() + manifest.chunks.len(),
    );
    keep.insert(EPOCH_NAME.to_string());
    for e in &manifest.segments {
        keep.insert(segment_file_name(e.id));
    }
    for i in 0..manifest.chunks.len() {
        keep.insert(chunk_file_name(i));
    }
    gc_unreferenced(dir, &keep);
    Ok(report)
}

/// Loads a [`SegmentedIndex`] snapshot directory (and its saved
/// generation) from `dir`: the manifest is read eagerly, then each
/// referenced file is CRC-verified against the manifest and decoded —
/// no monolithic re-parse, and any cross-file inconsistency (missing or
/// stale file, duplicate segment id, overlapping per-segment doc sets)
/// is a typed [`SnapshotError`].
///
/// The loaded index is **byte-identical** to the saved one: every scan
/// and threshold-algorithm read (hits, metrics, early-stop point)
/// reproduces the in-memory engine's bits, and
/// [`SegmentedIndex::verify_rebuild_equivalence`] holds on the loaded
/// state exactly as it did on the saved one (`tests/persistence.rs`).
pub fn load_segmented(dir: impl AsRef<Path>) -> Result<(SegmentedIndex, u64), SnapshotError> {
    let dir = dir.as_ref();
    let manifest = manifest_from_bytes(&std::fs::read(dir.join(MANIFEST_NAME))?)?;

    let epoch_bytes = read_checked_file(dir, EPOCH_NAME, manifest.epoch_len, manifest.epoch_crc)?;
    let mut container = Container::open_trusted(&epoch_bytes, KIND_EPOCH)?;
    let vocab = read_vocab(container.section(TAG_VOCAB, "vocabulary section")?)?;
    let (doc_freq, idf) = read_stats(
        container.section(TAG_STATS, "statistics section")?,
        vocab.len(),
    )?;
    container.finish()?;
    if vocab.len() as u64 != manifest.num_terms {
        return Err(SnapshotError::Malformed {
            context: "epoch vocabulary size disagrees with the manifest",
        });
    }
    let mut doc_parts: Vec<Vec<Document>> = Vec::with_capacity(manifest.chunks.len());
    let mut weight_parts: Vec<Vec<f64>> = Vec::with_capacity(manifest.chunks.len());
    for (i, entry) in manifest.chunks.iter().enumerate() {
        let bytes = read_checked_file(dir, &chunk_file_name(i), entry.file_len, entry.file_crc)?;
        let mut c = Container::open_trusted(&bytes, KIND_CHUNK)?;
        let mut meta = c.section(TAG_META, "chunk meta section")?;
        let idx = meta.u64()?;
        let len = meta.u64()?;
        let fp = meta.u64()?;
        meta.finish()?;
        if idx != i as u64 || len != entry.len || fp != entry.fingerprint {
            return Err(SnapshotError::Malformed {
                context: "chunk file header disagrees with the manifest",
            });
        }
        let chunk_docs = read_docs(
            c.section(TAG_DOCS, "chunk documents section")?,
            vocab.len(),
            Some(entry.len as usize),
        )?;
        let chunk_weights = read_weights(
            c.section(TAG_WEIGHTS, "chunk weight section")?,
            entry.len as usize,
        )?;
        c.finish()?;
        doc_parts.push(chunk_docs);
        weight_parts.push(chunk_weights);
    }
    // The manifest validation already pinned the per-chunk lengths, so
    // these cannot fail on manifest-consistent data.
    let invariant = || SnapshotError::Malformed {
        context: "chunk lengths violate the sealed-chunk invariant",
    };
    let docs = ChunkedVec::from_chunks(doc_parts).ok_or_else(invariant)?;
    let weights = ChunkedVec::from_chunks(weight_parts).ok_or_else(invariant)?;
    let corpus = Corpus::from_parts(vocab, docs, doc_freq, idf);
    let num_docs = corpus.num_docs();
    // Per-doc `1/sqrt(len)` factors, precomputed once so every segment's
    // partial-score recompute is a multiply — bit-identical to
    // `InvertedIndex::build_from_ids`, which uses the same
    // multiply-by-reciprocal expression.
    let inv_len: Vec<f64> = corpus
        .docs()
        .map(|d| {
            if d.len == 0 {
                0.0
            } else {
                1.0 / (d.len as f64).sqrt()
            }
        })
        .collect();

    // Segments must cover pairwise-disjoint doc-id sets — the invariant
    // the merged-bound soundness proof (DESIGN.md §8) rests on; an
    // overlap would serve duplicate hits, so it is rejected like every
    // other CRC-valid-but-inconsistent payload.
    let words = num_docs.div_ceil(64);
    let mut claimed = vec![0u64; words];
    let mut segments = Vec::with_capacity(manifest.segments.len());
    for entry in &manifest.segments {
        let bytes = read_checked_file(
            dir,
            &segment_file_name(entry.id),
            entry.file_len,
            entry.file_crc,
        )?;
        let mut c = Container::open_trusted(&bytes, KIND_SEGMENT)?;
        let mut meta = c.section(TAG_META, "segment meta section")?;
        let id = meta.u64()?;
        let fp = meta.u64()?;
        let doc_count = meta.u64()?;
        meta.finish()?;
        // The embedded fingerprint pins the posting data to what the
        // manifest promised — a stale file from a diverged lineage (or a
        // hand-edited manifest) fails here even when the file is
        // internally self-consistent: the whole-file CRC binds the
        // embedded value to the posting bytes it was computed over, so
        // it cannot drift from the content without tripping the
        // checksum first.
        if id != entry.id || fp != entry.fingerprint || doc_count != entry.doc_count {
            return Err(SnapshotError::Malformed {
                context: "segment file content disagrees with the manifest",
            });
        }
        let index = read_segment_index(
            c.section(TAG_INDEX, "segment index section")?,
            corpus.idf_table(),
            &inv_len,
        )?;
        c.finish()?;
        let mut mine = vec![0u64; words];
        for t in 0..index.num_terms() as TermId {
            for p in index.postings(t) {
                mine[p.doc as usize / 64] |= 1u64 << (p.doc as usize % 64);
            }
        }
        let mut covered: u64 = 0;
        for (seen, m) in claimed.iter_mut().zip(&mine) {
            if *seen & *m != 0 {
                return Err(SnapshotError::Malformed {
                    context: "two segments claim the same document",
                });
            }
            *seen |= *m;
            covered += u64::from(m.count_ones());
        }
        if covered != doc_count {
            return Err(SnapshotError::Malformed {
                context: "segment file content disagrees with the manifest",
            });
        }
        segments.push(Arc::new(Segment::from_trusted_parts(
            id,
            fp,
            doc_count as usize,
            index,
        )));
    }

    let deleted = Tombstones::from_ids(&manifest.deleted);
    Ok((
        SegmentedIndex::from_parts(
            Arc::new(corpus),
            weights,
            segments,
            deleted,
            manifest.compactions,
            manifest.next_segment_id,
        ),
        manifest.generation,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, generate};

    #[test]
    fn crc32_matches_the_reference_vectors() {
        // The canonical IEEE check value, plus zlib-verified spot checks.
        // "123456789" (9 bytes) covers only the byte-at-a-time remainder
        // loop; the 43-byte fox sentence drives the slice-by-16 fold
        // path (2 full blocks + 11 remainder bytes) against a pinned
        // external value, so a table-indexing bug in `crc_fold` cannot
        // hide behind writer/reader sharing one implementation.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"divtopk"), crc32(b"divtopk"));
        assert_ne!(crc32(b"divtopk"), crc32(b"divtopj"));
        // Fold path ≡ remainder path on the same input.
        let long: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut byte_at_a_time = 0xFFFF_FFFFu32;
        for &b in &long {
            byte_at_a_time = (byte_at_a_time >> 8)
                ^ CRC_TABLES[0][((byte_at_a_time ^ b as u32) & 0xFF) as usize];
        }
        assert_eq!(crc32(&long), byte_at_a_time ^ 0xFFFF_FFFF);
    }

    #[test]
    fn corpus_round_trips_bit_for_bit() {
        let corpus = generate(&SynthConfig::tiny());
        let loaded = corpus_from_bytes(&corpus_to_bytes(&corpus)).unwrap();
        assert_eq!(loaded.num_docs(), corpus.num_docs());
        assert_eq!(loaded.num_terms(), corpus.num_terms());
        assert!(loaded.docs().eq(corpus.docs()));
        for t in 0..corpus.num_terms() as TermId {
            assert_eq!(loaded.doc_freq(t), corpus.doc_freq(t));
            assert_eq!(loaded.idf(t).to_bits(), corpus.idf(t).to_bits());
            assert_eq!(
                loaded.vocab().term(t),
                corpus.vocab().term(t),
                "term {t} renamed"
            );
        }
    }

    #[test]
    fn index_round_trips_bit_for_bit() {
        let corpus = generate(&SynthConfig::tiny());
        let index = InvertedIndex::build(&corpus);
        let loaded = index_from_bytes(&index_to_bytes(&index)).unwrap();
        assert_eq!(loaded.num_terms(), index.num_terms());
        assert_eq!(loaded.num_postings(), index.num_postings());
        for t in 0..index.num_terms() as TermId {
            let (a, b) = (index.postings(t), loaded.postings(t));
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!((x.doc, x.tf), (y.doc, y.tf));
                assert_eq!(x.partial.to_bits(), y.partial.to_bits());
            }
        }
    }

    #[test]
    fn implausibly_large_idf_is_rejected_even_with_a_valid_crc() {
        // Each value individually finite is not enough: 1e200 + 1e200
        // at query time is +inf → `Score::new` panic. The plausibility
        // cap stops the forged table at decode.
        let mut b = crate::corpus::CorpusBuilder::with_synthetic_vocab(2);
        b.add_tokens("d".into(), vec![0, 1]);
        let good = b.build();
        let forged = Corpus::from_parts(
            good.vocab().clone(),
            good.doc_store().clone(),
            vec![1, 1],
            vec![1e200, 1e200],
        );
        match corpus_from_bytes(&corpus_to_bytes(&forged)) {
            Err(SnapshotError::Malformed { context }) => {
                assert!(context.contains("IDF"), "{context}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn saves_are_atomic_and_leave_no_temp_files() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("divtopk-atomic-{}.snapshot", std::process::id()));
        let small = generate(&SynthConfig {
            num_docs: 20,
            ..SynthConfig::tiny()
        });
        let large = generate(&SynthConfig {
            num_docs: 40,
            ..SynthConfig::tiny()
        });
        // Overwriting a longer snapshot with a shorter one must leave
        // exactly the new bytes (rename semantics, not in-place write).
        save_corpus(&path, &large).unwrap();
        save_corpus(&path, &small).unwrap();
        let loaded = load_corpus(&path).unwrap();
        assert_eq!(loaded.num_docs(), 20);
        let tmp_left = std::fs::read_dir(&dir).unwrap().any(|e| {
            e.unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with(&format!(
                    "divtopk-atomic-{}.snapshot.tmp",
                    std::process::id()
                ))
        });
        assert!(!tmp_left, "temp file leaked");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn negative_partials_are_rejected_even_with_a_valid_crc() {
        // `ScanSource` feeds stored partials straight into `Score::new`,
        // which panics on negatives — so a forged-but-CRC-valid snapshot
        // must be stopped at decode, not at query time.
        let index = InvertedIndex::from_sorted_lists(vec![vec![Posting {
            doc: 0,
            tf: 1,
            partial: -1.0,
        }]]);
        match index_from_bytes(&index_to_bytes(&index)) {
            Err(SnapshotError::Malformed { context }) => {
                assert!(context.contains("partial"), "{context}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    /// A process-unique scratch directory for one test; removed and
    /// recreated empty on each call.
    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("divtopk-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A two-segment state with a live-update tail (one appended batch,
    /// two deletes) — the smallest shape exercising every manifest
    /// feature: multiple segments, a partial chunk, and tombstones.
    fn small_segmented() -> SegmentedIndex {
        let corpus = generate(&SynthConfig::tiny());
        let n_terms = corpus.num_terms() as TermId;
        let mut index = SegmentedIndex::build_partitioned(corpus, 2);
        let docs: Vec<Document> = (0..5)
            .map(|i| Document::from_tokens(format!("new{i}"), vec![i % n_terms, (i + 1) % n_terms]))
            .collect();
        index.add_docs(docs);
        index.delete_docs(&[1, 3]);
        index
    }

    #[test]
    fn overlapping_segments_are_rejected() {
        // Disjoint segment doc sets are the invariant the merged-bound
        // soundness proof rests on; a snapshot whose segments share a
        // document must not load.
        let corpus = generate(&SynthConfig::tiny());
        let seg_a = Segment::new(0, InvertedIndex::build_range(&corpus, 0..40));
        let seg_b = Segment::new(1, InvertedIndex::build_range(&corpus, 30..80));
        let weights = crate::search::doc_weights(&corpus).into_iter().collect();
        let overlapping = SegmentedIndex::from_parts(
            Arc::new(corpus),
            weights,
            vec![Arc::new(seg_a), Arc::new(seg_b)],
            Tombstones::default(),
            0,
            2,
        );
        let dir = temp_dir("overlap");
        save_segmented(&dir, &overlapping, 0).unwrap();
        match load_segmented(&dir) {
            Err(SnapshotError::Malformed { context }) => {
                assert!(context.contains("same document"), "{context}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kind_confusion_is_a_typed_error() {
        let corpus = generate(&SynthConfig::tiny());
        let bytes = corpus_to_bytes(&corpus);
        // A corpus container dropped in as a MANIFEST must fail by kind,
        // not by misparsing sections.
        let dir = temp_dir("kind");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(MANIFEST_NAME), &bytes).unwrap();
        assert!(matches!(
            load_segmented(&dir),
            Err(SnapshotError::WrongKind {
                found: KIND_CORPUS,
                expected: KIND_MANIFEST
            })
        ));
        assert!(matches!(
            index_from_bytes(&bytes),
            Err(SnapshotError::WrongKind { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segmented_round_trips_through_a_directory() {
        let index = small_segmented();
        let dir = temp_dir("roundtrip");
        let report = save_segmented(&dir, &index, 7).unwrap();
        assert_eq!(report.files_reused, 0);
        assert_eq!(report.bytes_written, report.total_bytes);
        let (loaded, generation) = load_segmented(&dir).unwrap();
        assert_eq!(generation, 7);
        assert_eq!(loaded.num_segments(), index.num_segments());
        assert_eq!(loaded.next_segment_id(), index.next_segment_id());
        assert_eq!(loaded.tombstone_set().len(), index.tombstone_set().len());
        assert!(loaded.corpus().docs().eq(index.corpus().docs()));
        assert!(
            loaded
                .weights()
                .iter()
                .map(|w| w.to_bits())
                .eq(index.weights().iter().map(|w| w.to_bits()))
        );
        loaded.verify_rebuild_equivalence().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_save_without_changes_writes_only_the_manifest() {
        let index = small_segmented();
        let dir = temp_dir("nochange");
        let first = save_segmented(&dir, &index, 1).unwrap();
        let second = save_segmented(&dir, &index, 2).unwrap();
        assert_eq!(second.files_written, 1, "{second:?}");
        assert_eq!(second.files_reused, first.files_written - 1);
        assert_eq!(second.total_bytes, first.total_bytes);
        let (loaded, generation) = load_segmented(&dir).unwrap();
        assert_eq!(generation, 2);
        loaded.verify_rebuild_equivalence().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incremental_save_writes_only_the_delta() {
        let mut index = small_segmented();
        let dir = temp_dir("delta");
        save_segmented(&dir, &index, 1).unwrap();
        let n_terms = index.corpus().num_terms() as TermId;
        index.add_docs(vec![Document::from_tokens(
            "tail".into(),
            vec![0, 1 % n_terms],
        )]);
        index.delete_docs(&[0]);
        let report = save_segmented(&dir, &index, 2).unwrap();
        // The batch touched: one new segment file, the (partial) tail
        // chunk, and the manifest. Epoch and the prior segments reused.
        assert_eq!(report.files_written, 3, "{report:?}");
        assert!(
            report.files_reused >= index.num_segments() - 1,
            "{report:?}"
        );
        assert!(report.bytes_written < report.total_bytes);
        let (loaded, _) = load_segmented(&dir).unwrap();
        assert!(loaded.corpus().docs().eq(index.corpus().docs()));
        loaded.verify_rebuild_equivalence().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_fsyncs_the_snapshot_directory() {
        // Satellite of the crash model: rename alone does not make the
        // directory entry durable — every atomic write must be followed
        // by a parent-directory fsync. The audit counters are global and
        // other tests save concurrently, so assert monotonic growth by
        // at least this save's file count.
        let index = small_segmented();
        let dir = temp_dir("fsync");
        let dirs_before = audit::dir_syncs();
        let files_before = audit::file_syncs();
        let report = save_segmented(&dir, &index, 1).unwrap();
        assert!(report.files_written > 0);
        assert!(audit::dir_syncs() - dirs_before >= report.files_written as u64);
        assert!(audit::file_syncs() - files_before >= report.files_written as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_segment_ids_in_the_manifest_are_rejected() {
        let index = small_segmented();
        let dir = temp_dir("dupid");
        save_segmented(&dir, &index, 1).unwrap();
        let mut manifest =
            manifest_from_bytes(&std::fs::read(dir.join(MANIFEST_NAME)).unwrap()).unwrap();
        assert!(manifest.segments.len() >= 2);
        manifest.segments[1] = manifest.segments[0];
        std::fs::write(dir.join(MANIFEST_NAME), manifest_to_bytes(&manifest)).unwrap();
        match load_segmented(&dir) {
            Err(SnapshotError::Malformed { context }) => {
                assert!(context.contains("duplicate segment id"), "{context}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_naming_a_missing_segment_file_is_a_typed_error() {
        let index = small_segmented();
        let dir = temp_dir("missingseg");
        save_segmented(&dir, &index, 1).unwrap();
        let victim = segment_file_name(index.segments()[0].id());
        std::fs::remove_file(dir.join(&victim)).unwrap();
        assert!(matches!(load_segmented(&dir), Err(SnapshotError::Io(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_segment_file_from_another_checkpoint_is_rejected() {
        // A file swap that keeps a *valid* segment container on disk —
        // but not the bytes the manifest recorded — must fail the
        // whole-file CRC, not load a wrong segment.
        let index = small_segmented();
        let dir = temp_dir("staleseg");
        save_segmented(&dir, &index, 1).unwrap();
        let a = segment_file_name(index.segments()[0].id());
        let b = segment_file_name(index.segments()[1].id());
        // Different-length stale file: caught by the manifest's recorded
        // length before any parsing.
        let original = std::fs::read(dir.join(&a)).unwrap();
        std::fs::copy(dir.join(&b), dir.join(&a)).unwrap();
        assert!(matches!(
            load_segmented(&dir),
            Err(SnapshotError::Truncated { .. } | SnapshotError::TrailingBytes { .. })
        ));
        // Same-length, different-bytes stale file: caught by the
        // whole-file CRC. Swapping two unequal adjacent payload bytes
        // keeps the length while changing the content.
        let mut swapped = original.clone();
        let i = (0..swapped.len() - 1)
            .rev()
            .find(|&i| swapped[i] != swapped[i + 1])
            .unwrap();
        swapped.swap(i, i + 1);
        std::fs::write(dir.join(&a), &swapped).unwrap();
        match load_segmented(&dir) {
            Err(SnapshotError::ChecksumMismatch { tag, .. }) => assert_eq!(tag, TAG_FILE),
            other => panic!("expected whole-file ChecksumMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overclaiming_manifest_doc_counts_are_rejected() {
        let index = small_segmented();
        let dir = temp_dir("overclaim");
        save_segmented(&dir, &index, 1).unwrap();
        let mut manifest =
            manifest_from_bytes(&std::fs::read(dir.join(MANIFEST_NAME)).unwrap()).unwrap();
        manifest.segments[0].doc_count = manifest.num_docs + 1;
        std::fs::write(dir.join(MANIFEST_NAME), manifest_to_bytes(&manifest)).unwrap();
        match load_segmented(&dir) {
            Err(SnapshotError::Malformed { context }) => {
                assert!(context.contains("claim more documents"), "{context}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let corpus = generate(&SynthConfig::tiny());
        let mut bytes = corpus_to_bytes(&corpus);
        bytes[0] ^= 0xFF;
        assert!(matches!(
            corpus_from_bytes(&bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
        bytes[0] ^= 0xFF;
        bytes[8] = 99; // version field
        assert!(matches!(
            corpus_from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn empty_input_is_truncated_not_a_panic() {
        assert!(matches!(
            corpus_from_bytes(&[]),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_section_length_is_rejected_before_any_slice() {
        let corpus = generate(&SynthConfig::tiny());
        let mut bytes = corpus_to_bytes(&corpus);
        // First section header starts at offset 20; its u64 length at 24.
        bytes[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            corpus_from_bytes(&bytes),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn payload_corruption_is_a_checksum_mismatch() {
        let corpus = generate(&SynthConfig::tiny());
        let mut bytes = corpus_to_bytes(&corpus);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            corpus_from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let corpus = generate(&SynthConfig::tiny());
        let mut bytes = corpus_to_bytes(&corpus);
        bytes.push(0);
        assert!(matches!(
            corpus_from_bytes(&bytes),
            Err(SnapshotError::TrailingBytes { extra: 1 })
        ));
    }
}
